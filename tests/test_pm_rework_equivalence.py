"""The reworked PM hot loop must be bit-for-bit the pre-rework algorithm.

``_ReferencePM`` reimplements Algorithm 1 exactly as it existed before
the perf rework — per-pick recounting in ``_select_switch``, the
``total_iterations`` property read in the loop condition, per-call
controller sorting in ``_map_switch``, and the straight-line
``_recover_at`` / ``_phase2`` bodies.  Any divergence in ``mapping``,
``sdn_pairs`` or per-flow programmability across the seeded scenario
matrix is a regression in the rework, not a tie-break judgement call.
"""

from __future__ import annotations

import pytest

from repro.control.failures import (
    enumerate_failure_scenarios,
    sample_failure_scenarios,
)
from repro.experiments.scenarios import custom_context
from repro.fmssm.evaluation import evaluate_solution
from repro.pm.algorithm import ProgrammabilityMedic
from repro.topology.generators import waxman_topology

#: (phase2_order, enforce_delay) variants the satellite matrix covers.
VARIANTS = (("paper", False), ("greedy", False), ("paper", True), ("greedy", True))


class _ReferencePM(ProgrammabilityMedic):
    """Pre-rework Algorithm 1, kept verbatim as the equivalence oracle."""

    def _phase1(self):
        instance = self._instance
        recoverable = set(instance.recoverable_flows)
        untested = list(instance.switches)
        sigma = 0
        test_count = 0
        while test_count < instance.total_iterations:
            switch = self._select_switch(untested, sigma)
            if switch is None:
                untested = []
            else:
                controller = self._map_switch(switch)
                untested.remove(switch)
                self._recover_at(switch, controller, sigma)
            if not untested:
                untested = list(instance.switches)
                test_count += 1
                if recoverable:
                    sigma = min(self._h[f] for f in recoverable)

    def _select_switch(self, untested, sigma):
        best_switch = None
        best_count = 0
        for switch in sorted(untested):
            count = sum(
                1
                for flow_id in self._instance.pairs_at[switch]
                if self._h[flow_id] == sigma
            )
            if count > best_count:
                best_count = count
                best_switch = switch
        return best_switch

    def _map_switch(self, switch):
        if switch in self._mapping:
            return self._mapping[switch]
        instance = self._instance
        gamma = instance.gamma[switch]
        ordered = sorted(
            instance.controllers,
            key=lambda c: (instance.delay[(switch, c)], c),
        )
        chosen = None
        for controller in ordered:
            if self._available[controller] >= gamma:
                chosen = controller
                break
        if chosen is None:
            chosen = max(instance.controllers, key=lambda c: (self._available[c], -c))
        self._mapping[switch] = chosen
        return chosen

    def _charge_delay(self, switch, controller):
        delay = self._instance.delay[(switch, controller)]
        if (
            self._enforce_delay
            and self._total_delay_ms + delay > self._instance.ideal_delay_ms + 1e-9
        ):
            return False
        self._total_delay_ms += delay
        return True

    def _recover_at(self, switch, controller, sigma):
        instance = self._instance
        for flow_id in instance.pairs_at[switch]:
            if self._h[flow_id] > sigma:
                continue
            if (switch, flow_id) in self._sdn_pairs:
                continue
            if self._available[controller] <= 0:
                break
            if not self._charge_delay(switch, controller):
                continue
            self._available[controller] -= 1
            self._h[flow_id] += instance.pbar[(switch, flow_id)]
            self._sdn_pairs.add((switch, flow_id))

    def _phase2(self):
        instance = self._instance
        pairs = list(instance.pairs)
        if self._phase2_order == "greedy":
            pairs.sort(key=lambda p: (-instance.pbar[p], p))
        for switch, flow_id in pairs:
            if (switch, flow_id) in self._sdn_pairs:
                continue
            controller = self._mapping.get(switch)
            if controller is None:
                continue
            if self._available[controller] <= 0:
                continue
            if not self._charge_delay(switch, controller):
                continue
            self._available[controller] -= 1
            self._h[flow_id] += instance.pbar[(switch, flow_id)]
            self._sdn_pairs.add((switch, flow_id))


def assert_bit_for_bit(instance, phase2_order, enforce_delay):
    new = ProgrammabilityMedic(
        instance, phase2_order=phase2_order, enforce_delay=enforce_delay
    ).run()
    ref = _ReferencePM(
        instance, phase2_order=phase2_order, enforce_delay=enforce_delay
    ).run()
    assert new.mapping == ref.mapping
    assert new.sdn_pairs == ref.sdn_pairs
    # Per-flow h: the evaluator recomputes programmability from Y, which
    # must coincide with the internal levels of both implementations.
    new_eval = evaluate_solution(instance, new, verify=False)
    ref_eval = evaluate_solution(instance, ref, verify=False)
    assert new_eval.programmability == ref_eval.programmability
    assert new_eval.total_delay_ms == ref_eval.total_delay_ms


class TestAttMatrix:
    @pytest.mark.parametrize("phase2_order,enforce_delay", VARIANTS)
    def test_all_one_failure_cases(self, att_context, phase2_order, enforce_delay):
        for scenario in enumerate_failure_scenarios(att_context.plane, 1):
            instance = att_context.instance(scenario)
            assert_bit_for_bit(instance, phase2_order, enforce_delay)

    @pytest.mark.parametrize("phase2_order,enforce_delay", VARIANTS)
    def test_seeded_two_failure_cases(self, att_context, phase2_order, enforce_delay):
        for scenario in sample_failure_scenarios(att_context.plane, 2, 6, seed=11):
            instance = att_context.instance(scenario)
            assert_bit_for_bit(instance, phase2_order, enforce_delay)

    @pytest.mark.parametrize("phase2_order,enforce_delay", VARIANTS)
    def test_seeded_three_failure_cases(self, att_context, phase2_order, enforce_delay):
        for scenario in sample_failure_scenarios(att_context.plane, 3, 4, seed=23):
            instance = att_context.instance(scenario)
            assert_bit_for_bit(instance, phase2_order, enforce_delay)


class TestSyntheticMatrix:
    @pytest.fixture(scope="class")
    def waxman_context(self):
        topology = waxman_topology(24, alpha=0.6, beta=0.35, seed=5)
        return custom_context(topology, controller_sites=(0, 5, 11, 17), capacity=900)

    @pytest.mark.parametrize("phase2_order,enforce_delay", VARIANTS)
    def test_seeded_waxman_cases(self, waxman_context, phase2_order, enforce_delay):
        for n_failures in (1, 2):
            for scenario in sample_failure_scenarios(
                waxman_context.plane, n_failures, 3, seed=7
            ):
                instance = waxman_context.instance(scenario)
                assert_bit_for_bit(instance, phase2_order, enforce_delay)

    def test_tiny_instance_equivalence(self, tiny_instance):
        for phase2_order, enforce_delay in VARIANTS:
            assert_bit_for_bit(tiny_instance, phase2_order, enforce_delay)
