"""Tests for fairness metrics and the successive-failure runner."""

from __future__ import annotations

import pytest

from repro.experiments.successive import run_successive
from repro.metrics.fairness import balance_report, jain_fairness_index


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_fairness_index([3, 3, 3, 3]) == pytest.approx(1.0)

    def test_single_holder(self):
        # One of n holds everything: index = 1/n.
        assert jain_fairness_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_is_fair(self):
        assert jain_fairness_index([]) == 1.0

    def test_all_zero_is_fair(self):
        assert jain_fairness_index([0, 0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([1, -1])

    def test_scale_invariant(self):
        a = jain_fairness_index([1, 2, 3])
        b = jain_fairness_index([10, 20, 30])
        assert a == pytest.approx(b)

    def test_bounds(self):
        values = [1, 5, 2, 9, 4]
        index = jain_fairness_index(values)
        assert 1 / len(values) <= index <= 1.0


class TestBalanceReport:
    def test_min_max_ratio(self):
        report = balance_report([2, 4])
        assert report["min_max_ratio"] == pytest.approx(0.5)

    def test_unrecovered_flow_zeroes_ratio(self):
        report = balance_report([0, 4])
        assert report["min_max_ratio"] == 0.0

    def test_empty(self):
        report = balance_report([])
        assert report == {"jain": 1.0, "min_max_ratio": 1.0}


class TestSuccessiveRunner:
    def test_stages_accumulate(self, att_context):
        stages = run_successive(att_context, (13, 20), algorithm="pm")
        assert [s.failed for s in stages] == [(13,), (13, 20)]

    def test_spare_shrinks_with_failures(self, att_context):
        stages = run_successive(att_context, (13, 20, 5), algorithm="pm")
        spares = [s.total_spare for s in stages]
        assert spares == sorted(spares, reverse=True)

    def test_pm_fairness_beats_retroflow(self, att_context):
        """Balanced programmability quantified: PM's Jain index dominates
        RetroFlow's at every stage (RetroFlow leaves flows at zero)."""
        pm_stages = run_successive(att_context, (13, 20), algorithm="pm")
        retro_stages = run_successive(att_context, (13, 20), algorithm="retroflow")
        for pm, retro in zip(pm_stages, retro_stages):
            assert pm.fairness >= retro.fairness
        # Under one failure both recover everything identically; the gap
        # opens once RetroFlow starts dropping flows.
        assert pm_stages[-1].fairness > retro_stages[-1].fairness

    def test_recovery_fraction_non_increasing(self, att_context):
        stages = run_successive(att_context, (13, 20, 5), algorithm="pm")
        fractions = [s.evaluation.recovery_fraction for s in stages]
        assert fractions[0] >= fractions[-1]
