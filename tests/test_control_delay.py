"""Tests for delay models and the ideal recovery delay G."""

from __future__ import annotations

import pytest

from repro.control.delay import DelayModel, ideal_recovery_delay
from repro.exceptions import ControlPlaneError


class TestDelayModel:
    def test_geodesic_matches_topology(self, att):
        model = DelayModel(att, mode="geodesic")
        assert model.delay_ms(0, 13) == pytest.approx(att.geo_delay_ms(0, 13))

    def test_self_delay_zero(self, att):
        for mode in ("geodesic", "routed"):
            assert DelayModel(att, mode=mode).delay_ms(5, 5) == 0.0

    def test_routed_never_shorter_than_geodesic(self, att):
        geo = DelayModel(att, mode="geodesic")
        routed = DelayModel(att, mode="routed")
        for switch in (0, 7, 13, 24):
            for site in (2, 22):
                assert routed.delay_ms(switch, site) >= geo.delay_ms(switch, site) - 1e-9

    def test_unknown_mode_rejected(self, att):
        with pytest.raises(ControlPlaneError, match="mode"):
            DelayModel(att, mode="warp")

    def test_unknown_node_rejected(self, att):
        with pytest.raises(ControlPlaneError):
            DelayModel(att).delay_ms(0, 99)

    def test_matrix_covers_all_pairs(self, att):
        model = DelayModel(att)
        matrix = model.matrix((0, 1), {2: 2, 22: 22})
        assert set(matrix) == {(0, 2), (0, 22), (1, 2), (1, 22)}

    def test_nearest_controller(self, att):
        model = DelayModel(att)
        # Seattle (0) is nearest to San Francisco's controller (6).
        assert model.nearest_controller(0, {2: 2, 6: 6, 22: 22}) == 6
        # Boston (24) is nearest to New York (22).
        assert model.nearest_controller(24, {2: 2, 6: 6, 22: 22}) == 22

    def test_nearest_requires_sites(self, att):
        with pytest.raises(ControlPlaneError):
            DelayModel(att).nearest_controller(0, {})


class TestIdealRecoveryDelay:
    def test_weighted_by_gamma(self, att):
        model = DelayModel(att)
        sites = {2: 2, 22: 22}
        gamma = {0: 10, 24: 5}
        expected = 10 * model.delay_ms(0, 2) + 5 * model.delay_ms(24, 22)
        assert ideal_recovery_delay(model, (0, 24), sites, gamma) == pytest.approx(expected)

    def test_zero_gamma_contributes_nothing(self, att):
        model = DelayModel(att)
        assert ideal_recovery_delay(model, (0,), {22: 22}, {0: 0}) == 0.0

    def test_missing_gamma_treated_as_zero(self, att):
        model = DelayModel(att)
        assert ideal_recovery_delay(model, (0,), {22: 22}, {}) == 0.0

    def test_negative_gamma_rejected(self, att):
        model = DelayModel(att)
        with pytest.raises(ControlPlaneError):
            ideal_recovery_delay(model, (0,), {22: 22}, {0: -1})

    def test_nearest_site_minimizes(self, att):
        """G uses each switch's nearest site, so it lower-bounds any
        single-site alternative."""
        model = DelayModel(att)
        sites = {2: 2, 6: 6, 22: 22}
        gamma = {n: 1 for n in att.nodes}
        g = ideal_recovery_delay(model, att.nodes, sites, gamma)
        for only in sites.values():
            single = sum(model.delay_ms(n, only) for n in att.nodes)
            assert g <= single + 1e-9
