"""Extra branch-and-bound coverage: caps, general integers, pruning."""

from __future__ import annotations

import pytest

from repro.lp import LinExpr, Model, SolveStatus, solve_with_bnb


class TestGeneralIntegers:
    def test_non_binary_integer_variable(self):
        m = Model()
        x = m.add_var("x", integer=True, lb=0, ub=100)
        y = m.add_var("y", integer=True, lb=0, ub=100)
        m.add_constraint(3 * x + 5 * y <= 37)
        m.set_objective(2 * x + 3 * y, sense="max")
        result = solve_with_bnb(m)
        assert result.status is SolveStatus.OPTIMAL
        # Check integrality and feasibility of the incumbent.
        x_val, y_val = result.value("x"), result.value("y")
        assert x_val == int(x_val) and y_val == int(y_val)
        assert 3 * x_val + 5 * y_val <= 37 + 1e-9
        # Exhaustive check of the small lattice.
        best = max(
            2 * a + 3 * b
            for a in range(13)
            for b in range(8)
            if 3 * a + 5 * b <= 37
        )
        assert result.objective == pytest.approx(best)

    def test_negative_lower_bounds(self):
        m = Model()
        x = m.add_var("x", integer=True, lb=-5, ub=5)
        m.add_constraint(2 * x >= -7)
        m.set_objective(x, sense="min")
        result = solve_with_bnb(m)
        assert result.objective == pytest.approx(-3.0)

    def test_mixed_integer_continuous(self):
        m = Model()
        x = m.add_var("x", integer=True, ub=10)
        y = m.add_var("y", ub=10)  # continuous
        m.add_constraint(x + y <= 7.5)
        m.set_objective(3 * x + 2 * y, sense="max")
        result = solve_with_bnb(m)
        assert result.value("x") == pytest.approx(7.0)
        assert result.value("y") == pytest.approx(0.5)
        assert result.objective == pytest.approx(22.0)


class TestLimits:
    def test_max_nodes_cap_returns_incumbent_or_timeout(self):
        m = Model()
        xs = [m.add_var(f"x{i}", binary=True) for i in range(12)]
        m.add_constraint(LinExpr.total((3.0, x) for x in xs) <= 17)
        m.set_objective(LinExpr.total((float(i + 1), x) for i, x in enumerate(xs)), "max")
        result = solve_with_bnb(m, max_nodes=2)
        assert result.status in (
            SolveStatus.TIMEOUT,
            SolveStatus.FEASIBLE,
            SolveStatus.OPTIMAL,
        )

    def test_pure_lp_short_circuit(self):
        """With no integer variables bnb solves in one relaxation."""
        m = Model()
        x = m.add_var("x", ub=4)
        m.set_objective(x, sense="max")
        result = solve_with_bnb(m)
        assert result.status is SolveStatus.OPTIMAL
        assert result.nodes <= 1

    def test_unbounded_detected(self):
        m = Model()
        x = m.add_var("x", integer=True)  # ub = inf
        m.set_objective(x, sense="max")
        result = solve_with_bnb(m)
        assert result.status is SolveStatus.UNBOUNDED

    def test_objective_tie_consistency_with_highs(self):
        from repro.lp import solve

        m = Model()
        x = m.add_var("x", binary=True)
        y = m.add_var("y", binary=True)
        m.add_constraint(x + y <= 1)
        m.set_objective(x + y, sense="max")  # two optima, same value
        a = solve(m, solver="highs")
        b = solve_with_bnb(m)
        assert a.objective == pytest.approx(b.objective) == pytest.approx(1.0)
