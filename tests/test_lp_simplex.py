"""Tests for the library-owned two-phase simplex solver."""

from __future__ import annotations

import random

import pytest

from repro.lp import LinExpr, Model, SolveStatus, solve
from repro.lp.simplex import solve_with_simplex


class TestBasics:
    def test_simple_maximization(self):
        m = Model()
        x = m.add_var("x", ub=4)
        y = m.add_var("y", ub=4)
        m.add_constraint(x + y <= 6)
        m.set_objective(x + 2 * y, sense="max")
        result = solve_with_simplex(m)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(10.0)
        assert result.value("y") == pytest.approx(4.0)

    def test_minimization_with_lower_bounds(self):
        m = Model()
        x = m.add_var("x", lb=2, ub=9)
        m.set_objective(3 * x, sense="min")
        result = solve_with_simplex(m)
        assert result.objective == pytest.approx(6.0)

    def test_equality_constraints(self):
        m = Model()
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constraint(x + y == 7)
        m.set_objective(x - y, sense="max")
        result = solve_with_simplex(m)
        assert result.objective == pytest.approx(7.0)

    def test_infeasible(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constraint(1 * x >= 2)
        m.set_objective(x)
        assert solve_with_simplex(m).status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.add_var("x")  # no upper bound
        m.set_objective(x, sense="max")
        assert solve_with_simplex(m).status is SolveStatus.UNBOUNDED

    def test_free_variable_split(self):
        m = Model()
        x = m.add_var("x", lb=-float("inf"), ub=float("inf"))
        m.add_constraint(1 * x >= -5)
        m.set_objective(x, sense="min")
        result = solve_with_simplex(m)
        assert result.objective == pytest.approx(-5.0)
        assert result.value("x") == pytest.approx(-5.0)

    def test_integer_markers_ignored(self):
        """Simplex solves the relaxation: fractional optimum allowed."""
        m = Model()
        x = m.add_var("x", integer=True, ub=10)
        m.add_constraint(2 * x <= 7)
        m.set_objective(x, sense="max")
        result = solve_with_simplex(m)
        assert result.objective == pytest.approx(3.5)

    def test_registered_in_solve(self):
        m = Model()
        x = m.add_var("x", ub=3)
        m.set_objective(x, sense="max")
        result = solve(m, solver="simplex")
        assert result.solver == "simplex"
        assert result.objective == pytest.approx(3.0)

    def test_objective_constant(self):
        m = Model()
        x = m.add_var("x", ub=5)
        m.set_objective(x + 100, sense="max")
        assert solve_with_simplex(m).objective == pytest.approx(105.0)


class TestCrossValidation:
    def test_random_lps_match_highs(self):
        rng = random.Random(7)
        for trial in range(20):
            m = Model(f"lp{trial}")
            n = rng.randint(2, 6)
            xs = [
                m.add_var(f"x{i}", lb=0, ub=rng.choice([4.0, 12.0, float("inf")]))
                for i in range(n)
            ]
            for _ in range(rng.randint(1, 4)):
                coefficients = [(float(rng.randint(-3, 5)), x) for x in xs]
                if rng.random() < 0.3:
                    m.add_constraint(LinExpr.total(coefficients) == rng.randint(0, 8))
                else:
                    m.add_constraint(LinExpr.total(coefficients) <= rng.randint(1, 20))
            m.set_objective(
                LinExpr.total((float(rng.randint(-4, 6)), x) for x in xs),
                sense=rng.choice(["min", "max"]),
            )
            reference = solve(m, solver="highs")
            ours = solve_with_simplex(m)
            assert ours.status.value == reference.status.value, trial
            if reference.status is SolveStatus.OPTIMAL:
                assert ours.objective == pytest.approx(
                    reference.objective, abs=1e-6, rel=1e-6
                ), trial

    def test_fmssm_relaxation_matches(self, tiny_instance):
        """The LP relaxation of P' solved by our simplex equals HiGHS's."""
        from repro.fmssm.formulation import build_fmssm_model
        from repro.lp.model import Model as LpModel

        milp, _ = build_fmssm_model(tiny_instance)
        # Rebuild as a pure LP (drop integrality).
        relaxed = LpModel("relaxed")
        mapping = {}
        for var in milp.variables:
            mapping[var.index] = relaxed.add_var(var.name, lb=var.lb, ub=var.ub)
        for constraint in milp.constraints:
            expr = LinExpr.total(
                (coefficient, mapping[index])
                for index, coefficient in constraint.expr.coefficients.items()
            )
            expr = expr + constraint.expr.constant
            if constraint.sense == "<=":
                relaxed.add_constraint(expr <= 0)
            elif constraint.sense == ">=":
                relaxed.add_constraint(expr >= 0)
            else:
                relaxed.add_constraint(expr == 0)
        objective = LinExpr.total(
            (coefficient, mapping[index])
            for index, coefficient in milp.objective.coefficients.items()
        )
        relaxed.set_objective(objective, sense=milp.sense)

        ours = solve_with_simplex(relaxed)
        reference = solve(relaxed, solver="highs")
        assert ours.status is SolveStatus.OPTIMAL
        assert ours.objective == pytest.approx(reference.objective, rel=1e-6)
