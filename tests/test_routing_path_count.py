"""Tests for the path-programmability counters."""

from __future__ import annotations

import pytest

from repro.exceptions import RoutingError
from repro.routing.path_count import (
    BoundedSimplePathCounter,
    LoopFreeAlternateCounter,
    ShortestDagCounter,
    make_counter,
    shared_hop_distances,
)
from repro.topology.generators import grid_topology, ring_topology, star_topology


@pytest.fixture(scope="module")
def grid():
    return grid_topology(3, 3)


@pytest.fixture(scope="module")
def ring():
    return ring_topology(6)


class TestBoundedCounter:
    def test_grid_corner_to_corner_slack0(self, grid):
        counter = BoundedSimplePathCounter(grid, slack=0)
        # Shortest 0->8 paths on a 3x3 grid: C(4,2) = 6 monotone paths.
        assert counter.count(0, 8) == 6

    def test_slack_increases_count(self, grid):
        c0 = BoundedSimplePathCounter(grid, slack=0).count(0, 8)
        c2 = BoundedSimplePathCounter(grid, slack=2).count(0, 8)
        assert c2 > c0

    def test_ring_has_two_paths(self, ring):
        counter = BoundedSimplePathCounter(ring, slack=10)
        # Opposite side of a 6-ring: both directions, both length 3.
        assert counter.count(0, 3) == 2

    def test_self_count_zero(self, grid):
        assert BoundedSimplePathCounter(grid).count(4, 4) == 0

    def test_max_count_saturates(self, grid):
        counter = BoundedSimplePathCounter(grid, slack=4, max_count=3)
        assert counter.count(0, 8) == 3

    def test_cache_consistency(self, grid):
        counter = BoundedSimplePathCounter(grid, slack=1)
        assert counter.count(0, 8) == counter.count(0, 8)

    def test_invalid_parameters(self, grid):
        with pytest.raises(ValueError):
            BoundedSimplePathCounter(grid, slack=-1)
        with pytest.raises(ValueError):
            BoundedSimplePathCounter(grid, max_count=0)

    def test_unknown_nodes(self, grid):
        with pytest.raises(RoutingError):
            BoundedSimplePathCounter(grid).count(0, 99)


class TestDagCounter:
    def test_grid_counts_binomial(self, grid):
        counter = ShortestDagCounter(grid, weight="hops")
        assert counter.count(0, 8) == 6
        assert counter.count(0, 4) == 2
        assert counter.count(0, 1) == 1

    def test_star_single_paths(self):
        star = star_topology(4)
        counter = ShortestDagCounter(star, weight="hops")
        assert counter.count(1, 2) == 1

    def test_weight_property(self, grid):
        assert ShortestDagCounter(grid, weight="hops").weight == "hops"


class TestLfaCounter:
    def test_grid_corner_has_two_alternates(self, grid):
        counter = LoopFreeAlternateCounter(grid, slack=1)
        # Corner 0 toward 8: both neighbors (1 and 3) work.
        assert counter.count(0, 8) == 2

    def test_neighbor_counts_direct_link(self, grid):
        counter = LoopFreeAlternateCounter(grid, slack=0)
        assert counter.count(0, 1) >= 1

    def test_count_bounded_by_degree(self, att):
        counter = LoopFreeAlternateCounter(att, slack=1)
        for src in att.nodes:
            for dst in att.nodes:
                if src != dst:
                    assert counter.count(src, dst) <= att.degree(src)

    def test_ring_opposite_has_both_directions(self, ring):
        counter = LoopFreeAlternateCounter(ring, slack=0)
        assert counter.count(0, 3) == 2

    def test_ring_near_node_one_way_without_slack(self, ring):
        # 0 -> 1: direct is 1 hop; the other way round is 5 hops.
        assert LoopFreeAlternateCounter(ring, slack=0).count(0, 1) == 1
        assert LoopFreeAlternateCounter(ring, slack=4).count(0, 1) == 2

    def test_star_leaf_single_choice(self):
        star = star_topology(5)
        counter = LoopFreeAlternateCounter(star, slack=5)
        assert counter.count(1, 2) == 1  # only via the hub

    def test_negative_slack_rejected(self, grid):
        with pytest.raises(ValueError):
            LoopFreeAlternateCounter(grid, slack=-1)


class TestMakeCounter:
    def test_default_is_lfa(self, grid):
        assert isinstance(make_counter(grid), LoopFreeAlternateCounter)

    def test_named_strategies(self, grid):
        assert isinstance(make_counter(grid, "bounded"), BoundedSimplePathCounter)
        assert isinstance(make_counter(grid, "dag"), ShortestDagCounter)
        assert isinstance(make_counter(grid, "lfa", slack=2), LoopFreeAlternateCounter)

    def test_kwargs_forwarded(self, grid):
        counter = make_counter(grid, "bounded", slack=3)
        assert counter.slack == 3

    def test_unknown_strategy(self, grid):
        with pytest.raises(RoutingError, match="unknown counting strategy"):
            make_counter(grid, "magic")


class TestSharedHopDistances:
    def test_counters_share_one_bfs_per_destination(self, grid):
        """Different counter instances/strategies reuse the same map."""
        lfa = LoopFreeAlternateCounter(grid)
        bounded = BoundedSimplePathCounter(grid)
        assert lfa._distances(8) is bounded._distances(8)
        assert lfa._distances(8) is shared_hop_distances(grid, 8)

    def test_cache_is_per_topology(self):
        a, b = ring_topology(6), ring_topology(6)
        assert shared_hop_distances(a, 0) is not shared_hop_distances(b, 0)
        # Same distances, distinct cache entries.
        assert shared_hop_distances(a, 0) == shared_hop_distances(b, 0)

    def test_distances_are_correct(self, ring):
        distances = shared_hop_distances(ring, 0)
        assert distances[0] == 0
        assert distances[3] == 3  # opposite side of the 6-ring
