"""Tests for standard-form compilation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.lp.model import Model
from repro.lp.standard_form import to_standard_form


def build_sample() -> tuple[Model, object, object]:
    m = Model()
    x = m.add_var("x", lb=0, ub=10)
    y = m.add_var("y", binary=True)
    m.add_constraint(x + 2 * y <= 8)
    m.add_constraint(x - y >= 1)
    m.add_constraint(1 * x == 4)
    m.set_objective(3 * x + y + 7, sense="max")
    return m, x, y


class TestStandardForm:
    def test_shapes(self):
        m, _, _ = build_sample()
        form = to_standard_form(m)
        assert form.n_vars == 2
        assert form.a_ub.shape == (2, 2)  # <= row and negated >= row
        assert form.a_eq.shape == (1, 2)

    def test_ge_rows_negated(self):
        m, x, y = build_sample()
        form = to_standard_form(m)
        # Second ub row is -(x - y) <= -1.
        row = form.a_ub.toarray()[1]
        assert row[x.index] == -1
        assert row[y.index] == 1
        assert form.b_ub[1] == -1

    def test_max_negates_objective(self):
        m, x, y = build_sample()
        form = to_standard_form(m)
        assert form.maximize
        assert form.c[x.index] == -3

    def test_objective_value_roundtrip(self):
        m, _, _ = build_sample()
        form = to_standard_form(m)
        # The solver reports c @ x only: at x=4, y=1 that is -(3*4 + 1) =
        # -13; the stored constant (-7, negated for max) restores 20.
        assert form.objective_value(-13.0) == pytest.approx(13.0 + 7.0)

    def test_min_objective_constant(self):
        m = Model()
        x = m.add_var("x")
        m.set_objective(x + 5, sense="min")
        form = to_standard_form(m)
        # minimized value at x=2 is 2 (without the constant); +5 restores it.
        assert form.objective_value(2.0) == pytest.approx(7.0)

    def test_integrality_vector(self):
        m, x, y = build_sample()
        form = to_standard_form(m)
        assert form.integrality[x.index] == 0.0
        assert form.integrality[y.index] == 1.0

    def test_bounds_vectors(self):
        m, x, y = build_sample()
        form = to_standard_form(m)
        assert form.ub[x.index] == 10
        assert form.ub[y.index] == 1

    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            to_standard_form(Model())

    def test_var_names_preserved(self):
        m, _, _ = build_sample()
        form = to_standard_form(m)
        assert form.var_names == ("x", "y")

    def test_sparse_matrix_zero_entries_dropped(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x + 0 * y <= 1)
        form = to_standard_form(m)
        assert form.a_ub.nnz == 1
        assert np.all(form.b_ub == [1])
