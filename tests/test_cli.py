"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_requires_failures(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig"])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--capacity", "400", "--counter", "dag", "info"]
        )
        assert args.capacity == 400
        assert args.counter == "dag"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ATT" in out
        assert "600" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Dallas" in out
        assert "Table III" in out

    def test_run_scenario(self, capsys):
        assert main(["run", "--failed", "13", "--algorithms", "pm,retroflow"]) == 0
        out = capsys.readouterr().out
        assert "scenario (13)" in out
        assert "pm" in out and "retroflow" in out

    def test_run_multi_failure(self, capsys):
        assert main(["run", "--failed", "13,20", "--algorithms", "pm,pg"]) == 0
        out = capsys.readouterr().out
        assert "(13, 20)" in out

    def test_fig_single_failure_fast_algorithms(self, capsys):
        assert main(["fig", "--failures", "1", "--algorithms", "pm,retroflow"]) == 0
        out = capsys.readouterr().out
        assert "1 controller failure(s)" in out
        assert "RetroFlow" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "--failed", "13,20", "--algorithms", "pm"]) == 0
        out = capsys.readouterr().out
        assert "recovery timeline" in out
        assert "compute done" in out

    def test_successive(self, capsys):
        assert main(["successive", "--order", "13,20", "--algorithm", "pm"]) == 0
        out = capsys.readouterr().out
        assert "(13, 20)" in out
        assert "fairness" in out
