"""Tests for solution verification and metric evaluation."""

from __future__ import annotations

import pytest

from repro.exceptions import SolutionError
from repro.fmssm.evaluation import evaluate_solution, verify_solution
from repro.fmssm.solution import RecoverySolution
from conftest import make_tiny_instance


def full_solution() -> RecoverySolution:
    """All four tiny-instance pairs active: switch 1 -> 100, 2 -> 200."""
    return RecoverySolution(
        algorithm="test",
        mapping={1: 100, 2: 200},
        sdn_pairs={
            (1, (10, 11)),
            (1, (10, 12)),
            (2, (10, 12)),
            (2, (11, 12)),
        },
    )


class TestVerify:
    def test_valid_solution_passes(self, tiny_instance):
        verify_solution(tiny_instance, full_solution())

    def test_non_offline_switch_rejected(self, tiny_instance):
        bad = full_solution()
        bad.mapping[9] = 100
        with pytest.raises(SolutionError, match="not offline"):
            verify_solution(tiny_instance, bad)

    def test_inactive_controller_rejected(self, tiny_instance):
        bad = full_solution()
        bad.mapping[1] = 999
        with pytest.raises(SolutionError, match="non-active"):
            verify_solution(tiny_instance, bad)

    def test_non_programmable_pair_rejected(self, tiny_instance):
        bad = full_solution()
        bad.sdn_pairs.add((2, (10, 11)))  # flow a does not transit switch 2
        with pytest.raises(SolutionError, match="programmable"):
            verify_solution(tiny_instance, bad)

    def test_capacity_violation_rejected(self):
        instance = make_tiny_instance(spare={100: 1, 200: 4})
        bad = full_solution()  # switch 1 -> 100 hosts two pairs > spare 1
        with pytest.raises(SolutionError, match="exceeds spare"):
            verify_solution(instance, bad)

    def test_delay_violation_rejected(self):
        instance = make_tiny_instance(ideal_delay_ms=0.5)
        with pytest.raises(SolutionError, match="delay"):
            verify_solution(instance, full_solution(), enforce_delay=True)

    def test_delay_ignored_when_not_enforced(self):
        instance = make_tiny_instance(ideal_delay_ms=0.5)
        verify_solution(instance, full_solution(), enforce_delay=False)

    def test_infeasible_solution_must_be_empty(self, tiny_instance):
        bad = RecoverySolution(algorithm="t", feasible=False, mapping={1: 100})
        with pytest.raises(SolutionError, match="empty"):
            verify_solution(tiny_instance, bad)

    def test_pair_controller_override_checked(self, tiny_instance):
        solution = RecoverySolution(
            algorithm="t",
            sdn_pairs={(1, (10, 11))},
            pair_controller={(1, (10, 11)): 999},
        )
        with pytest.raises(SolutionError, match="non-active"):
            verify_solution(tiny_instance, solution)

    def test_load_override_used_for_capacity(self):
        instance = make_tiny_instance(spare={100: 1, 200: 4})
        solution = RecoverySolution(
            algorithm="t",
            mapping={1: 100},
            sdn_pairs={(1, (10, 11))},
            load_override={100: 2},  # claims gamma-based cost 2 > spare 1
        )
        with pytest.raises(SolutionError, match="exceeds spare"):
            verify_solution(instance, solution)


class TestEvaluate:
    def test_full_solution_metrics(self, tiny_instance):
        evaluation = evaluate_solution(tiny_instance, full_solution())
        assert evaluation.programmability == {
            (10, 11): 2,
            (10, 12): 5,
            (11, 12): 4,
        }
        assert evaluation.least_programmability == 2
        assert evaluation.total_programmability == 11
        assert evaluation.recovered_flows == 3
        assert evaluation.recovery_fraction == 1.0
        assert evaluation.recovered_switches == 2
        assert evaluation.objective == pytest.approx(2 + tiny_instance.lam * 11)

    def test_partial_solution(self, tiny_instance):
        solution = RecoverySolution(
            algorithm="t", mapping={1: 100}, sdn_pairs={(1, (10, 12))}
        )
        evaluation = evaluate_solution(tiny_instance, solution)
        assert evaluation.least_programmability == 0  # flows a and c at 0
        assert evaluation.recovered_flows == 1
        assert evaluation.total_programmability == 3

    def test_unmapped_pairs_inactive(self, tiny_instance):
        solution = RecoverySolution(
            algorithm="t", mapping={}, sdn_pairs={(1, (10, 12))}
        )
        evaluation = evaluate_solution(tiny_instance, solution)
        assert evaluation.total_programmability == 0
        assert evaluation.recovered_switches == 0

    def test_per_flow_overhead(self, tiny_instance):
        solution = full_solution()
        evaluation = evaluate_solution(tiny_instance, solution)
        # Delays: s1->100 twice (1.0 each) + s2->200 twice (2.0 each) = 6.
        assert evaluation.total_delay_ms == pytest.approx(6.0)
        assert evaluation.per_flow_overhead_ms == pytest.approx(6.0 / 3)

    def test_extra_overhead_added(self, tiny_instance):
        solution = full_solution()
        solution.extra_overhead_ms = 0.48
        evaluation = evaluate_solution(tiny_instance, solution)
        assert evaluation.per_flow_overhead_ms == pytest.approx(6.0 / 3 + 0.48)

    def test_infeasible_evaluation_zeroed(self, tiny_instance):
        solution = RecoverySolution(algorithm="t", feasible=False)
        evaluation = evaluate_solution(tiny_instance, solution)
        assert not evaluation.feasible
        assert evaluation.total_programmability == 0
        assert evaluation.recovered_flows == 0

    def test_controller_load_reported(self, tiny_instance):
        evaluation = evaluate_solution(tiny_instance, full_solution())
        assert evaluation.controller_load == {100: 2, 200: 2}

    def test_programmability_values_excludes_unrecoverable(self, att_instance_5_13_20):
        from repro.pm import solve_pm

        evaluation = evaluate_solution(
            att_instance_5_13_20, solve_pm(att_instance_5_13_20)
        )
        values = evaluation.programmability_values()
        assert len(values) == len(att_instance_5_13_20.recoverable_flows)
