"""Tests for repro.topology.graph.Topology."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.geo import GeoPoint
from repro.topology.graph import NodeInfo, Topology

A = GeoPoint(40.0, -74.0)
B = GeoPoint(41.0, -75.0)
C = GeoPoint(42.0, -76.0)


def triangle() -> Topology:
    nodes = {0: ("a", A), 1: ("b", B), 2: ("c", C)}
    return Topology("tri", nodes, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_basic_properties(self):
        topo = triangle()
        assert topo.name == "tri"
        assert topo.n_nodes == 3
        assert topo.n_links == 3
        assert topo.n_directed_links == 6
        assert topo.nodes == (0, 1, 2)

    def test_nodeinfo_objects_accepted(self):
        nodes = {
            0: NodeInfo(0, "a", A),
            1: NodeInfo(1, "b", B),
        }
        topo = Topology("t", nodes, [(0, 1)])
        assert topo.label(0) == "a"

    def test_nodeinfo_id_mismatch_rejected(self):
        with pytest.raises(TopologyError, match="disagrees"):
            Topology("t", {0: NodeInfo(1, "a", A), 1: NodeInfo(1, "b", B)}, [(0, 1)])

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError, match="self-loop"):
            Topology("t", {0: ("a", A), 1: ("b", B)}, [(0, 0), (0, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(TopologyError, match="duplicate"):
            Topology("t", {0: ("a", A), 1: ("b", B)}, [(0, 1), (1, 0)])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(TopologyError, match="unknown node"):
            Topology("t", {0: ("a", A), 1: ("b", B)}, [(0, 2)])

    def test_disconnected_rejected(self):
        nodes = {0: ("a", A), 1: ("b", B), 2: ("c", C)}
        with pytest.raises(TopologyError, match="not connected"):
            Topology("t", nodes, [(0, 1)])

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Topology("t", {}, [])

    def test_bad_speed_rejected(self):
        with pytest.raises(TopologyError, match="speed"):
            Topology("t", {0: ("a", A), 1: ("b", B)}, [(0, 1)], propagation_speed_m_per_s=0)


class TestAccessors:
    def test_label_and_geo(self):
        topo = triangle()
        assert topo.label(1) == "b"
        assert topo.geo(1) == B

    def test_unknown_node_raises(self):
        topo = triangle()
        with pytest.raises(TopologyError):
            topo.info(99)
        with pytest.raises(TopologyError):
            topo.neighbors(99)
        with pytest.raises(TopologyError):
            topo.degree(99)

    def test_neighbors_sorted(self):
        topo = triangle()
        assert topo.neighbors(1) == (0, 2)

    def test_degree(self):
        topo = triangle()
        assert topo.degree(0) == 2

    def test_edges_canonical_order(self):
        topo = triangle()
        assert topo.edges() == ((0, 1), (0, 2), (1, 2))

    def test_contains_and_len(self):
        topo = triangle()
        assert 0 in topo
        assert 99 not in topo
        assert len(topo) == 3

    def test_has_edge_symmetric(self):
        topo = triangle()
        assert topo.has_edge(0, 1)
        assert topo.has_edge(1, 0)


class TestDistances:
    def test_link_delay_consistent_with_distance(self):
        topo = triangle()
        dist = topo.link_distance_m(0, 1)
        assert topo.link_delay_ms(0, 1) == pytest.approx(dist / 2e8 * 1000)

    def test_missing_link_raises(self):
        nodes = {0: ("a", A), 1: ("b", B), 2: ("c", C)}
        topo = Topology("path", nodes, [(0, 1), (1, 2)])
        with pytest.raises(TopologyError, match="no link"):
            topo.link_delay_ms(0, 2)

    def test_geo_delay_between_non_neighbors(self):
        nodes = {0: ("a", A), 1: ("b", B), 2: ("c", C)}
        topo = Topology("path", nodes, [(0, 1), (1, 2)])
        assert topo.geo_delay_ms(0, 2) > 0

    def test_geo_delay_matrix_matches_scalar(self):
        topo = triangle()
        matrix = topo.geo_delay_matrix_ms()
        nodes = topo.nodes
        for i, u in enumerate(nodes):
            for j, v in enumerate(nodes):
                assert matrix[i, j] == pytest.approx(topo.geo_delay_ms(u, v), abs=1e-9)

    def test_link_distance_positive(self):
        topo = triangle()
        for u, v in topo.edges():
            assert topo.link_distance_m(u, v) > 0

    def test_repr_mentions_size(self):
        assert "nodes=3" in repr(triangle())
