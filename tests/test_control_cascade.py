"""Tests for cascading-failure simulation."""

from __future__ import annotations

import pytest

from repro.control.cascade import simulate_cascade
from repro.control.failures import FailureScenario
from repro.control.plane import ControlPlane
from repro.exceptions import ControlPlaneError
from repro.pm.algorithm import solve_pm
from repro.topology.generators import grid_topology


@pytest.fixture(scope="module")
def plane():
    grid = grid_topology(2, 3)
    return ControlPlane(grid, {0: (0, 1, 2), 5: (3, 4, 5)}, capacity=100)


class TestSimulateCascade:
    def test_safe_assignment_no_cascade(self, plane):
        result = simulate_cascade(
            plane, baseline_load={0: 50, 5: 50}, extra_load={0: 20, 5: 20}
        )
        assert not result.cascaded
        assert result.survivors == (0, 5)
        assert result.shed_load == 0

    def test_overload_fails_controller(self, plane):
        result = simulate_cascade(
            plane, baseline_load={0: 50, 5: 50}, extra_load={0: 60, 5: 0}
        )
        assert result.cascaded
        assert result.rounds[0] == (0,)
        # Controller 5 absorbs re-shed units only up to its capacity
        # (50 of the 60); the remaining 10 are shed unserved.
        assert result.survivors == (5,)
        assert result.shed_load == 10
        assert result.total_failed == 1

    def test_partial_reshed_survives(self, plane):
        result = simulate_cascade(
            plane, baseline_load={0: 90, 5: 10}, extra_load={0: 30, 5: 0}
        )
        assert result.rounds[0] == (0,)
        # 30 units move to controller 5: 10 + 30 = 40 <= 100 -> stable.
        assert result.survivors == (5,)
        assert result.shed_load == 0

    def test_shed_load_counted_when_nobody_has_room(self, plane):
        result = simulate_cascade(
            plane, baseline_load={0: 101, 5: 100}, extra_load={0: 5, 5: 0}
        )
        assert result.survivors == (5,)
        assert result.shed_load == 5  # controller 5 is exactly full

    def test_initially_failed_excluded(self, plane):
        result = simulate_cascade(
            plane,
            baseline_load={0: 50, 5: 50},
            extra_load={0: 200, 5: 0},
            initially_failed=frozenset({0}),
        )
        # Controller 0 is already down; only 5 participates and is fine.
        assert result.survivors == (5,)
        assert not result.cascaded

    def test_unknown_controller_rejected(self, plane):
        with pytest.raises(ControlPlaneError):
            simulate_cascade(plane, baseline_load={9: 1}, extra_load={})


class TestPmNeverCascades:
    def test_pm_assignment_is_cascade_safe(self, att_context):
        """PM respects A_j^rest, so re-homing its recovery load can never
        overload an active controller — the cascade is always empty."""
        from repro.fmssm.evaluation import evaluate_solution

        scenario = FailureScenario(frozenset({13, 20}))
        instance = att_context.instance(scenario)
        evaluation = evaluate_solution(instance, solve_pm(instance))
        baseline = att_context.plane.domain_loads(att_context.flows)
        result = simulate_cascade(
            att_context.plane,
            baseline_load=baseline,
            extra_load=evaluation.controller_load,
            initially_failed=scenario.failed,
        )
        assert not result.cascaded
        assert set(result.survivors) == set(instance.controllers)

    def test_naive_overassignment_cascades(self, att_context):
        """Dumping an entire failed domain onto one controller cascades."""
        scenario = FailureScenario(frozenset({13, 20}))
        instance = att_context.instance(scenario)
        baseline = att_context.plane.domain_loads(att_context.flows)
        victim = instance.controllers[0]
        offline_total = sum(instance.gamma.values())
        result = simulate_cascade(
            att_context.plane,
            baseline_load=baseline,
            extra_load={victim: offline_total},
            initially_failed=scenario.failed,
        )
        assert result.cascaded
        assert victim not in result.survivors
