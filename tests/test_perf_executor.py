"""Warm-executor tests: persistent pools must change nothing but speed.

Every sweep through a :class:`~repro.perf.executor.SweepExecutor` —
first (cold workers), repeated (warm workers, cached plan), resumed from
a checkpoint, or degraded by chaos — must produce results bit-identical
to the serial sweep.  The executor additionally owns every shared-memory
lease it creates: tests assert the segment registry is empty after
``close()``, whatever happened in between.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_perf_parallel_sweep import assert_sweeps_identical

from repro.control.failures import FailureScenario
from repro.exceptions import ChaosError, DegradedResultWarning
from repro.experiments.runner import run_failure_sweep, run_failure_sweep_parallel
from repro.experiments.scenarios import custom_context
from repro.perf import shm
from repro.perf.executor import (
    SweepExecutor,
    close_default_executor,
    get_default_executor,
    run_campaign,
)
from repro.perf.sweep import parallel_sweep
from repro.resilience import chaos
from repro.topology.generators import ring_topology

#: Heuristics only — exact solves appear in the dedicated routes below.
FAST_ALGORITHMS = ("pm", "retroflow", "pg", "nearest")

CONTROLLERS = (0, 3, 7)


@pytest.fixture(scope="module")
def ring_context():
    return custom_context(
        ring_topology(10, chords=5, seed=7),
        controller_sites=CONTROLLERS,
        capacity=160,
    )


@pytest.fixture(scope="module")
def ring_scenarios():
    return tuple(FailureScenario(frozenset({c})) for c in CONTROLLERS)


@pytest.fixture(scope="module")
def ring_serial(ring_context, ring_scenarios):
    return parallel_sweep(ring_context, ring_scenarios, FAST_ALGORITHMS)


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must leave the segment registry empty."""
    yield
    close_default_executor()
    leaked = shm.active_segments()
    shm.release_all()
    assert leaked == (), f"leaked shared-memory segments: {leaked}"


class TestWarmEquivalence:
    def test_repeated_warm_sweeps_bit_identical(
        self, ring_context, ring_scenarios, ring_serial
    ):
        """Three sweeps on one executor: cold, warm, warm — all identical."""
        with SweepExecutor(max_workers=2) as executor:
            for _ in range(3):
                warm = parallel_sweep(
                    ring_context, ring_scenarios, FAST_ALGORITHMS,
                    max_workers=2, min_parallel_tasks=0, executor=executor,
                )
                assert_sweeps_identical(ring_serial, warm)
            assert executor.stats["sweeps"] == 3
            assert executor.stats["encode_misses"] == 1
            assert executor.stats["encode_hits"] == 2
            assert executor.stats["respawns"] == 0

    def test_att_warm_equals_serial(self, att_context):
        serial = run_failure_sweep(att_context, 1, FAST_ALGORITHMS)
        with SweepExecutor(max_workers=4) as executor:
            warm = run_failure_sweep_parallel(
                att_context, 1, FAST_ALGORITHMS, max_workers=4, executor=executor,
            )
        assert_sweeps_identical(serial, warm)

    def test_warm_incremental_route(self, ring_context, ring_scenarios, ring_serial):
        with SweepExecutor(max_workers=2) as executor:
            warm = parallel_sweep(
                ring_context, ring_scenarios, FAST_ALGORITHMS,
                max_workers=2, min_parallel_tasks=0, incremental=True,
                executor=executor,
            )
        assert_sweeps_identical(ring_serial, warm)

    def test_warm_heavy_route(self, ring_context, ring_scenarios):
        """Exact solves go through the per-task warm route unchanged."""
        algorithms = ("optimal", "pm")
        serial = parallel_sweep(
            ring_context, ring_scenarios, algorithms, optimal_time_limit_s=60.0,
        )
        with SweepExecutor(max_workers=2) as executor:
            warm = parallel_sweep(
                ring_context, ring_scenarios, algorithms,
                optimal_time_limit_s=60.0, max_workers=2,
                min_parallel_tasks=0, executor=executor,
            )
        assert_sweeps_identical(serial, warm)

    def test_closed_executor_is_rejected(self, ring_context, ring_scenarios):
        executor = SweepExecutor(max_workers=2)
        executor.close()
        with pytest.raises(ValueError, match="closed"):
            parallel_sweep(
                ring_context, ring_scenarios, FAST_ALGORITHMS, executor=executor,
            )

    def test_pickle_transport_warm(self, ring_context, ring_scenarios, ring_serial):
        """``transport="pickle"`` disables shm but not the warm caches."""
        with SweepExecutor(max_workers=2) as executor:
            for _ in range(2):
                warm = parallel_sweep(
                    ring_context, ring_scenarios, FAST_ALGORITHMS,
                    max_workers=2, min_parallel_tasks=0, transport="pickle",
                    executor=executor,
                )
                assert_sweeps_identical(ring_serial, warm)
            assert shm.active_segments() == ()
            assert executor.stats["encode_hits"] == 1


@pytest.fixture
def property_executor():
    # Function-scoped on purpose: hypothesis instantiates it once and
    # reuses it across every drawn example, so consecutive examples
    # exercise cross-sweep cache reuse — and it closes before the
    # autouse leak check runs.
    with SweepExecutor(max_workers=2) as executor:
        yield executor


class TestWarmProperty:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        failed=st.lists(
            st.sampled_from(CONTROLLERS), min_size=1, max_size=2, unique=True
        ),
        algorithms=st.permutations(FAST_ALGORITHMS),
    )
    def test_any_sweep_warm_equals_serial(
        self, ring_context, property_executor, failed, algorithms
    ):
        """Arbitrary scenario subsets and algorithm orders, one shared
        executor across all examples — warm results always match serial."""
        scenarios = tuple(FailureScenario(frozenset({c})) for c in sorted(failed))
        algorithms = tuple(algorithms)
        serial = parallel_sweep(ring_context, scenarios, algorithms)
        warm = parallel_sweep(
            ring_context, scenarios, algorithms,
            max_workers=2, min_parallel_tasks=0, executor=property_executor,
        )
        assert_sweeps_identical(serial, warm)


class TestInvalidation:
    def test_new_context_gets_new_generation(self, ring_context, ring_scenarios):
        """A different context never reuses another's worker cache."""
        other_context = custom_context(
            ring_topology(10, chords=5, seed=11),
            controller_sites=CONTROLLERS,
            capacity=240,
        )
        serial_a = parallel_sweep(ring_context, ring_scenarios, FAST_ALGORITHMS)
        serial_b = parallel_sweep(other_context, ring_scenarios, FAST_ALGORITHMS)
        with SweepExecutor(max_workers=2) as executor:
            for context, serial in (
                (ring_context, serial_a),
                (other_context, serial_b),
                (ring_context, serial_a),
            ):
                warm = parallel_sweep(
                    context, ring_scenarios, FAST_ALGORITHMS,
                    max_workers=2, min_parallel_tasks=0, executor=executor,
                )
                assert_sweeps_identical(serial, warm)
            # Both contexts cached; the third sweep hit the first entry.
            assert executor.stats["encode_misses"] == 2
            assert executor.stats["encode_hits"] == 1

    def test_table_swap_invalidates_encoded_context(self):
        """Swapping a context's table object forces a fresh generation.

        The staleness guard is table *identity*: re-materializing returns
        the model's cached table (a hit), but any new table object — as a
        re-grounded or mutated context would carry — must re-encode.
        """
        import copy

        context = custom_context(
            ring_topology(8, chords=3, seed=3),
            controller_sites=(0, 4),
            capacity=120,
        )
        with SweepExecutor(max_workers=1) as executor:
            first = executor.encode_context(context)
            again = executor.encode_context(context)
            assert again is first
            context._table = copy.copy(context.materialize_table())
            fresh = executor.encode_context(context)
            assert fresh is not first
            assert fresh.generation > first.generation
            assert first.lease is None  # released on invalidation
            assert executor.stats["encode_misses"] == 2
            assert executor.stats["encode_hits"] == 1


class TestCheckpointResume:
    def test_resume_through_warm_executor(
        self, ring_context, ring_scenarios, ring_serial, tmp_path
    ):
        """An interrupted warm sweep resumes on the same executor."""
        path = tmp_path / "warm-checkpoint.json"
        with SweepExecutor(max_workers=1) as executor:
            with chaos.inject(
                chaos.Fault("sweep.checkpoint", "raise-error", at_call=2)
            ):
                with pytest.raises(ChaosError):
                    parallel_sweep(
                        ring_context, ring_scenarios, FAST_ALGORITHMS,
                        max_workers=1, min_parallel_tasks=0, executor=executor,
                        checkpoint_path=path, checkpoint_every=1,
                    )
            assert path.exists()
            resumed = parallel_sweep(
                ring_context, ring_scenarios, FAST_ALGORITHMS,
                max_workers=1, min_parallel_tasks=0, executor=executor,
                checkpoint_path=path, checkpoint_every=1,
            )
        assert_sweeps_identical(ring_serial, resumed)
        restored = [
            r for r in resumed
            if any(e.action == "restore" for e in r.degradation.events)
        ]
        assert restored, "resume must restore the checkpointed scenarios"
        assert not path.exists()


class TestLeaseLifecycle:
    def test_repeated_sweeps_hold_one_lease_until_close(
        self, ring_context, ring_scenarios, ring_serial
    ):
        """The executor pins exactly one segment per cached context and
        releases it on close — never mid-sweep, never late."""
        if not shm.shm_available():
            pytest.skip("platform without POSIX shared memory")
        executor = SweepExecutor(max_workers=2)
        try:
            for _ in range(3):
                warm = parallel_sweep(
                    ring_context, ring_scenarios, FAST_ALGORITHMS,
                    max_workers=2, min_parallel_tasks=0, executor=executor,
                )
                assert_sweeps_identical(ring_serial, warm)
                assert len(shm.active_segments()) == 1
        finally:
            executor.close()
        assert shm.active_segments() == ()
        executor.close()  # idempotent

    def test_eviction_releases_lease(self, ring_context):
        if not shm.shm_available():
            pytest.skip("platform without POSIX shared memory")
        other = custom_context(
            ring_topology(8, chords=3, seed=5),
            controller_sites=(0, 4),
            capacity=120,
        )
        with SweepExecutor(max_workers=1, max_cached_contexts=1) as executor:
            executor.encode_context(ring_context)
            assert len(shm.active_segments()) == 1
            executor.encode_context(other)  # evicts (and releases) the first
            assert len(shm.active_segments()) == 1
        assert shm.active_segments() == ()

    def test_kill_worker_degrades_then_respawns_without_leaks(
        self, ring_context, ring_scenarios, ring_serial
    ):
        """A killed worker breaks the pool: the sweep keeps its completed
        results and finishes serially; the *next* sweep respawns the pool
        transparently; no segment outlives the executor."""
        executor = SweepExecutor(max_workers=2)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with chaos.inject(
                    chaos.Fault("sweep.task", "kill-worker", at_call=1)
                ):
                    degraded = parallel_sweep(
                        ring_context, ring_scenarios, FAST_ALGORITHMS,
                        max_workers=2, min_parallel_tasks=0, executor=executor,
                    )
            assert_sweeps_identical(ring_serial, degraded)
            assert any(
                issubclass(w.category, DegradedResultWarning) for w in caught
            ), "serial fallback must warn, not be silent"
            healthy = parallel_sweep(
                ring_context, ring_scenarios, FAST_ALGORITHMS,
                max_workers=2, min_parallel_tasks=0, executor=executor,
            )
            assert_sweeps_identical(ring_serial, healthy)
            assert executor.stats["respawns"] == 1
        finally:
            executor.close()
        assert shm.active_segments() == ()


class TestDefaultExecutor:
    def test_singleton_lifecycle(self):
        first = get_default_executor(max_workers=2)
        assert get_default_executor() is first
        close_default_executor()
        assert first.closed
        fresh = get_default_executor(max_workers=2)
        assert fresh is not first
        close_default_executor()
        assert fresh.closed


class TestCampaign:
    def test_campaign_streams_every_sweep_bit_identically(
        self, ring_context, ring_scenarios
    ):
        sweeps = [
            ring_scenarios[:2],
            ring_scenarios[1:],
            (ring_scenarios[0],),
        ]
        references = [
            parallel_sweep(ring_context, sweep, FAST_ALGORITHMS)
            for sweep in sweeps
        ]
        with SweepExecutor(max_workers=2) as executor:
            collected = dict(
                run_campaign(
                    ring_context, sweeps, FAST_ALGORITHMS,
                    executor=executor, max_workers=2, min_parallel_tasks=0,
                )
            )
            assert sorted(collected) == [0, 1, 2]
            for index, reference in enumerate(references):
                assert_sweeps_identical(reference, collected[index])
            assert executor.stats["sweeps"] == 3
            assert executor.stats["encode_hits"] == 2

    def test_campaign_default_executor_and_caller_order(
        self, ring_context, ring_scenarios
    ):
        sweeps = [(ring_scenarios[0],), (ring_scenarios[2],)]
        indices = []
        for index, results in run_campaign(
            ring_context, sweeps, ("pm",), reorder=False,
        ):
            indices.append(index)
            assert [r.name for r in results] == [s.name for s in sweeps[index]]
        assert indices == [0, 1]
        close_default_executor()


class TestArrayKernelPorts:
    """The satellite kernel ports: array routes equal their dict references."""

    @pytest.fixture(autouse=True)
    def _dict_route_is_the_reference_here(self):
        from repro.perf.kernels import dict_kernel_reference

        with dict_kernel_reference():
            yield

    def test_retroflow_ip_kernels_agree(self, small_instance):
        from repro.baselines.retroflow import solve_retroflow_ip

        array = solve_retroflow_ip(small_instance, time_limit_s=30.0)
        dict_ = solve_retroflow_ip(small_instance, time_limit_s=30.0, kernel="dict")
        assert array.mapping == dict_.mapping
        assert array.sdn_pairs == dict_.sdn_pairs
        assert array.load_override == dict_.load_override
        assert array.feasible and dict_.feasible

    def test_pm_phase1_only_kernels_agree(self, att_instance_13_20):
        from repro.pm.algorithm import solve_pm

        array = solve_pm(att_instance_13_20, phase2=False)
        dict_ = solve_pm(att_instance_13_20, phase2=False, kernel="dict")
        assert array.mapping == dict_.mapping
        assert array.sdn_pairs == dict_.sdn_pairs
        assert array.pair_controller == dict_.pair_controller
        assert array.meta.get("phase2") is False
        assert dict_.meta.get("phase2") is False
        full = solve_pm(att_instance_13_20)
        assert "phase2" not in full.meta
        assert array.sdn_pairs <= full.sdn_pairs
