"""Property-based tests of recovery-algorithm invariants (hypothesis).

Random small SD-WANs are generated end to end (topology → flows →
control plane → failure → instance) and every algorithm's output is
checked against the FMSSM constraints and cross-algorithm dominance
relations.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.nearest import solve_nearest
from repro.baselines.pg import solve_pg
from repro.baselines.retroflow import solve_retroflow
from repro.control.failures import FailureScenario
from repro.experiments.scenarios import custom_context
from repro.fmssm.evaluation import evaluate_solution, verify_solution
from repro.pm.algorithm import solve_pm
from repro.topology.generators import waxman_topology

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def recovery_instances(draw):
    n = draw(st.integers(min_value=6, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=30))
    topology = waxman_topology(n, alpha=0.7, beta=0.4, seed=seed)
    nodes = topology.nodes
    n_sites = draw(st.integers(min_value=2, max_value=min(4, n - 1)))
    sites = nodes[:n_sites]
    capacity = draw(st.integers(min_value=40, max_value=400))
    try:
        context = custom_context(topology, controller_sites=sites, capacity=capacity)
        context.plane.spare_capacity(context.flows)
    except Exception:
        # Mis-provisioned draw (capacity below baseline load): skip.
        from hypothesis import assume

        assume(False)
    failed = draw(st.sampled_from(sites))
    instance = context.instance(FailureScenario(frozenset({failed})))
    return instance


ALGORITHMS = [
    ("pm", solve_pm),
    ("retroflow", solve_retroflow),
    ("pg", solve_pg),
    ("nearest", solve_nearest),
]


class TestInvariants:
    @SETTINGS
    @given(recovery_instances())
    def test_all_algorithms_produce_verifiable_solutions(self, instance):
        for name, algorithm in ALGORITHMS:
            solution = algorithm(instance)
            verify_solution(instance, solution, enforce_delay=False)

    @SETTINGS
    @given(recovery_instances())
    def test_capacity_never_exceeded(self, instance):
        for name, algorithm in ALGORITHMS:
            evaluation = evaluate_solution(instance, algorithm(instance))
            for controller, load in evaluation.controller_load.items():
                assert load <= instance.spare[controller], name

    @SETTINGS
    @given(recovery_instances())
    def test_programmability_bounded_by_max(self, instance):
        for name, algorithm in ALGORITHMS:
            evaluation = evaluate_solution(instance, algorithm(instance))
            for flow_id, pro in evaluation.programmability.items():
                assert 0 <= pro <= instance.max_programmability(flow_id), name

    @SETTINGS
    @given(recovery_instances())
    def test_pg_upper_bounds_recovered_flows(self, instance):
        """PG's flow-level granularity recovers at least as many flows as
        any switch-level algorithm."""
        pg = evaluate_solution(instance, solve_pg(instance))
        for name, algorithm in ALGORITHMS:
            other = evaluate_solution(instance, algorithm(instance))
            assert pg.recovered_flows >= other.recovered_flows, name

    @SETTINGS
    @given(recovery_instances())
    def test_pm_dominates_switch_level_recovery(self, instance):
        """PM recovers at least as many flows as whole-switch baselines."""
        pm = evaluate_solution(instance, solve_pm(instance))
        retro = evaluate_solution(instance, solve_retroflow(instance))
        nearest = evaluate_solution(instance, solve_nearest(instance))
        assert pm.recovered_flows >= retro.recovered_flows
        assert pm.recovered_flows >= nearest.recovered_flows

    @SETTINGS
    @given(recovery_instances())
    def test_least_programmability_consistent(self, instance):
        """The reported r equals the min over recoverable flows."""
        for name, algorithm in ALGORITHMS:
            evaluation = evaluate_solution(instance, algorithm(instance))
            recoverable = instance.recoverable_flows
            if recoverable:
                expected = min(evaluation.programmability[f] for f in recoverable)
                assert evaluation.least_programmability == expected, name

    @SETTINGS
    @given(recovery_instances())
    def test_overhead_zero_iff_nothing_recovered(self, instance):
        for name, algorithm in ALGORITHMS:
            evaluation = evaluate_solution(instance, algorithm(instance))
            if evaluation.recovered_flows == 0:
                assert evaluation.per_flow_overhead_ms == 0.0, name
