"""Tests for the baseline algorithms and the registry."""

from __future__ import annotations

import pytest

from repro.baselines import get_algorithm, list_algorithms, register_algorithm
from repro.baselines.nearest import solve_nearest
from repro.baselines.pg import solve_pg
from repro.baselines.retroflow import solve_retroflow, solve_retroflow_ip
from repro.fmssm.evaluation import evaluate_solution, verify_solution
from repro.types import FLOWVISOR_PROCESSING_MS
from conftest import make_tiny_instance


class TestRegistry:
    def test_paper_algorithms_registered(self):
        names = list_algorithms()
        for name in ("pm", "optimal", "retroflow", "pg", "nearest"):
            assert name in names

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("does-not-exist")

    def test_register_custom(self, tiny_instance):
        from repro.fmssm.solution import RecoverySolution

        register_algorithm("noop", lambda inst: RecoverySolution(algorithm="noop"))
        solution = get_algorithm("noop")(tiny_instance)
        assert solution.algorithm == "noop"


class TestRetroFlow:
    def test_whole_switch_cost(self, tiny_instance):
        solution = solve_retroflow(tiny_instance)
        verify_solution(tiny_instance, solution, enforce_delay=False)
        # Each mapped switch consumes its whole gamma (2 here).
        for switch, controller in solution.mapping.items():
            assert solution.load_override[controller] >= tiny_instance.gamma[switch]

    def test_all_pairs_at_recovered_switches_sdn(self, tiny_instance):
        solution = solve_retroflow(tiny_instance)
        for switch in solution.mapping:
            for flow_id in tiny_instance.pairs_at[switch]:
                assert (switch, flow_id) in solution.sdn_pairs

    def test_unaffordable_switch_stays_legacy(self):
        instance = make_tiny_instance(spare={100: 1, 200: 1})
        solution = solve_retroflow(instance)
        # gamma is 2 per switch, spare 1 per controller: nothing fits.
        assert solution.mapping == {}
        assert solution.sdn_pairs == set()

    def test_hub_switch_unrecoverable_att(self, att_instance_13_20):
        """The paper's case (13, 20): switch 13 cannot be mapped whole."""
        solution = solve_retroflow(att_instance_13_20)
        assert 13 not in solution.mapping
        evaluation = evaluate_solution(att_instance_13_20, solution)
        assert evaluation.least_programmability == 0
        assert evaluation.recovery_fraction < 1.0

    def test_ip_variant_at_least_as_good(self, att_instance_13_20):
        greedy = evaluate_solution(att_instance_13_20, solve_retroflow(att_instance_13_20))
        exact = evaluate_solution(att_instance_13_20, solve_retroflow_ip(att_instance_13_20))
        assert exact.total_programmability >= greedy.total_programmability

    def test_ip_capacity_respected(self, att_instance_13_20):
        solution = solve_retroflow_ip(att_instance_13_20)
        verify_solution(att_instance_13_20, solution, enforce_delay=False)


class TestPG:
    def test_flow_level_granularity(self, tiny_instance):
        solution = solve_pg(tiny_instance)
        verify_solution(tiny_instance, solution, enforce_delay=False)
        # PG records per-pair controllers and no switch mapping.
        assert solution.mapping == {}
        assert set(solution.pair_controller) == solution.sdn_pairs

    def test_middle_layer_overhead_charged(self, tiny_instance):
        solution = solve_pg(tiny_instance)
        assert solution.extra_overhead_ms == FLOWVISOR_PROCESSING_MS
        evaluation = evaluate_solution(tiny_instance, solution)
        assert evaluation.per_flow_overhead_ms >= FLOWVISOR_PROCESSING_MS

    def test_full_budget_full_recovery(self, tiny_instance):
        evaluation = evaluate_solution(tiny_instance, solve_pg(tiny_instance))
        assert evaluation.recovery_fraction == 1.0
        assert evaluation.least_programmability == 2
        assert evaluation.total_programmability == 11

    def test_scarce_budget_maximizes_recovered_flows(self):
        instance = make_tiny_instance(spare={100: 1, 200: 1})
        evaluation = evaluate_solution(instance, solve_pg(instance))
        assert evaluation.recovered_flows == 2  # one pair per unit

    def test_zero_budget(self):
        instance = make_tiny_instance(spare={100: 0, 200: 0})
        evaluation = evaluate_solution(instance, solve_pg(instance))
        assert evaluation.recovered_flows == 0

    def test_recovers_everything_att(self, att_instance_13_20):
        evaluation = evaluate_solution(att_instance_13_20, solve_pg(att_instance_13_20))
        assert evaluation.recovery_fraction == 1.0
        assert evaluation.switch_recovery_fraction == 1.0

    def test_capacity_respected_att(self, att_instance_5_13_20):
        instance = att_instance_5_13_20
        evaluation = evaluate_solution(instance, solve_pg(instance))
        for controller, load in evaluation.controller_load.items():
            assert load <= instance.spare[controller]


class TestNearest:
    def test_only_nearest_controller_considered(self, att_instance_13_20):
        solution = solve_nearest(att_instance_13_20)
        for switch, controller in solution.mapping.items():
            assert controller == att_instance_13_20.nearest[switch]

    def test_weaker_than_retroflow(self, att_instance_13_20):
        nearest = evaluate_solution(att_instance_13_20, solve_nearest(att_instance_13_20))
        retro = evaluate_solution(att_instance_13_20, solve_retroflow(att_instance_13_20))
        assert nearest.total_programmability <= retro.total_programmability

    def test_verifies(self, att_instance_13_20):
        verify_solution(att_instance_13_20, solve_nearest(att_instance_13_20), enforce_delay=False)
