"""Batched block-diagonal LP solving must match the scenario-at-a-time route.

:func:`repro.perf.batch.solve_optimal_batch` stacks the LP-relaxation
certificates of many compiled scenarios into one HiGHS call.  Its whole
contract is *bit-identity*: whatever mix of routes a batch's members take
(pre-certificate, stacked certificate accept, individual fallback), every
member's solution must equal what :func:`repro.fmssm.optimal.solve_optimal`
returns for that instance alone.  These tests pin the contract on
deterministic families covering every route, on injected ``batch.solve``
faults (which may degrade *only* the batch's members), and — via
hypothesis — on randomly generated Waxman batches salted with one
infeasible block and one block that needs the full B&B fallback.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from conftest import make_tiny_instance
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.control.failures import FailureScenario, enumerate_failure_scenarios
from repro.experiments.scenarios import custom_context, hub_capacity_context
from repro.fmssm.optimal import solve_optimal
from repro.perf.batch import (
    BATCH_LP_OPTIONS,
    _BATCH_LP_METHOD,
    _Member,
    _spare_positive_subset,
    _stack_forms,
    _stack_lp_settings,
    solve_optimal_batch,
)
from repro.perf.compile import compile_fmssm
from repro.perf.sweep import parallel_sweep
from repro.resilience import chaos
from repro.resilience.degradation import RUNG_SOLVERS, LadderPolicy, Rung
from repro.topology.generators import ring_topology, waxman_topology

TIME_LIMIT_S = 60.0

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def assert_same_solution(individual, batched, ignore=("batch",)):
    """The batched solution equals the scenario-at-a-time one bit for bit
    (``solve_time_s`` is wall clock; ``meta["batch"]`` — and, for
    laddered solves, ``meta["ladder_rung"]`` — is execution provenance)."""
    assert batched.algorithm == individual.algorithm
    assert batched.mapping == individual.mapping
    assert batched.sdn_pairs == individual.sdn_pairs
    assert batched.pair_controller == individual.pair_controller
    assert batched.load_override == individual.load_override
    assert batched.feasible == individual.feasible
    batched_meta = {k: v for k, v in batched.meta.items() if k not in ignore}
    assert batched_meta == individual.meta


@pytest.fixture(scope="module")
def hub():
    """Six same-shape scenarios that all stack and certificate-accept."""
    context, scenarios = hub_capacity_context(n_leaves=4, n_fail=2)
    return context, scenarios, [context.instance(s) for s in scenarios]


@pytest.fixture(scope="module")
def ring135():
    """A capacity-135 ring whose six scenarios cover every batch route:
    the singles pre-certify, ``(0, 3)`` stacks but misses the certificate
    (B&B fallback), and the other pairs are infeasible (no-seed
    fallback)."""
    topology = ring_topology(10, chords=5, seed=7)
    context = custom_context(topology, controller_sites=(0, 3, 7), capacity=135)
    scenarios = list(enumerate_failure_scenarios(context.plane, 1))
    scenarios += list(enumerate_failure_scenarios(context.plane, 2))
    return context, [context.instance(s) for s in scenarios]


class TestSpareZeroReduction:
    def test_mixed_spare_keeps_positive_controllers(self):
        instance = make_tiny_instance(spare={100: 1, 200: 0})
        assert _spare_positive_subset(instance) == (100,)

    def test_all_positive_is_vacuous(self):
        instance = make_tiny_instance(spare={100: 2, 200: 2})
        assert _spare_positive_subset(instance) is None

    def test_all_zero_is_vacuous(self):
        """No controller worth keeping: the full form is compiled and the
        (infeasible) outcome is decided by the solver, not the reducer."""
        instance = make_tiny_instance(spare={100: 0, 200: 0})
        assert _spare_positive_subset(instance) is None


class TestStacking:
    def _members(self, instances):
        members = []
        for index, instance in enumerate(instances):
            member = _Member(index=index, instance=instance)
            member.compiled = compile_fmssm(
                instance, controller_subset=_spare_positive_subset(instance)
            )
            members.append(member)
        return members

    def test_stack_forms_block_layout(self, hub):
        _, _, instances = hub
        members = self._members(instances[:3])
        stacked = _stack_forms(members)
        n_vars = sum(m.compiled.form.n_vars for m in members)
        n_rows = sum(m.compiled.form.a_ub.shape[0] for m in members)
        assert stacked.n_vars == n_vars
        assert stacked.a_ub.shape == (n_rows, n_vars)
        assert stacked.a_ub.nnz == sum(m.compiled.form.a_ub.nnz for m in members)
        offsets = [m.offset for m in members]
        assert offsets == sorted(offsets) and offsets[0] == 0

    def test_stack_forms_scales_each_block_objective(self, hub):
        import numpy as np

        _, _, instances = hub
        members = self._members(instances[:2])
        stacked = _stack_forms(members)
        for member in members:
            sl = slice(member.offset, member.offset + member.compiled.form.n_vars)
            # Scaling by 1/max|c_k| normalizes every block to unit max.
            assert np.max(np.abs(stacked.c[sl])) == pytest.approx(1.0)
            assert member.scale > 0

    def test_tuned_settings_only_for_small_blocks(self, hub):
        _, _, instances = hub
        (member,) = self._members(instances[:1])
        assert _stack_lp_settings(member.compiled.form, 1) == (
            _BATCH_LP_METHOD,
            BATCH_LP_OPTIONS,
        )
        fat = SimpleNamespace(a_ub=SimpleNamespace(nnz=10**6))
        assert _stack_lp_settings(fat, 1) == ("highs", None)


class TestBatchedEqualsIndividual:
    def test_hub_family_all_certificate_accept(self, hub):
        _, _, instances = hub
        individual = [solve_optimal(i, time_limit_s=TIME_LIMIT_S) for i in instances]
        batched = solve_optimal_batch(instances, time_limit_s=TIME_LIMIT_S)
        for ind, bat in zip(individual, batched):
            assert_same_solution(ind, bat)
            provenance = bat.meta["batch"]
            assert provenance["route"] == "stack"
            assert provenance["certificate"] is True
            assert provenance["size"] == len(instances)
            assert provenance["reduced"]  # zero-spare leaves shrink blocks

    def test_hub_provenance_indexes_slices_in_order(self, hub):
        _, _, instances = hub
        batched = solve_optimal_batch(instances, time_limit_s=TIME_LIMIT_S)
        assert [b.meta["batch"]["index"] for b in batched] == list(
            range(len(instances))
        )

    def test_mixed_routes_match_individual(self, ring135):
        """Pre-certificate, certificate-miss (B&B) and infeasible members
        coexist in one batch without contaminating each other."""
        _, instances = ring135
        individual = [solve_optimal(i, time_limit_s=TIME_LIMIT_S) for i in instances]
        batched = solve_optimal_batch(instances, time_limit_s=TIME_LIMIT_S)
        routes = [b.meta["batch"]["route"] for b in batched]
        reasons = [b.meta["batch"].get("reason") for b in batched]
        assert routes == ["precert"] * 3 + ["fallback"] * 3
        assert reasons[3] == "certificate-miss"  # feasible, needs B&B
        assert reasons[4] == reasons[5] == "no-seed"  # infeasible pairs
        assert not batched[4].feasible and not batched[5].feasible
        for ind, bat in zip(individual, batched):
            assert_same_solution(ind, bat)

    def test_empty_batch(self):
        assert solve_optimal_batch([]) == []

    def test_solve_optimal_lp_batch_delegates(self, hub):
        """``solve_optimal(..., lp_batch=1)`` routes through the batch
        module: same answer, plus ``meta["batch"]`` provenance."""
        _, _, instances = hub
        plain = solve_optimal(instances[0], time_limit_s=TIME_LIMIT_S)
        batched = solve_optimal(instances[0], time_limit_s=TIME_LIMIT_S, lp_batch=1)
        assert_same_solution(plain, batched)
        assert batched.meta["batch"]["size"] == 1


class TestChaosFallback:
    """``batch.solve`` faults degrade only the batch's member scenarios."""

    def test_raise_error_falls_back_per_member(self, ring135):
        _, instances = ring135
        individual = [solve_optimal(i, time_limit_s=TIME_LIMIT_S) for i in instances]
        with chaos.inject(chaos.Fault("batch.solve", "raise-error")):
            batched = solve_optimal_batch(instances, time_limit_s=TIME_LIMIT_S)
        # The stacked member records the batch-level fault; pre-certified
        # members never reached the LP and are untouched.
        assert batched[3].meta["batch"]["reason"] == "batch-error:ChaosError"
        assert [b.meta["batch"]["route"] for b in batched[:3]] == ["precert"] * 3
        for ind, bat in zip(individual, batched):
            assert_same_solution(ind, bat)

    def test_raise_timeout_falls_back_per_member(self, hub):
        _, _, instances = hub
        individual = [solve_optimal(i, time_limit_s=TIME_LIMIT_S) for i in instances]
        with chaos.inject(chaos.Fault("batch.solve", "raise-timeout")):
            batched = solve_optimal_batch(instances, time_limit_s=TIME_LIMIT_S)
        for ind, bat in zip(individual, batched):
            assert_same_solution(ind, bat)
            assert bat.meta["batch"]["route"] == "fallback"
            assert bat.meta["batch"]["reason"].startswith("batch-error:")

    def test_corrupt_solution_trips_slice_guard(self, hub):
        """An activated-everything stacked vector fails every member's
        feasibility guard; each falls back and the answers still match.
        ``count=None`` keeps the fault armed past the ``batch.solve``
        *check* call that precedes the transform."""
        _, _, instances = hub
        individual = [solve_optimal(i, time_limit_s=TIME_LIMIT_S) for i in instances]
        with chaos.inject(
            chaos.Fault("batch.solve", "corrupt-solution", count=None)
        ):
            batched = solve_optimal_batch(instances, time_limit_s=TIME_LIMIT_S)
        for ind, bat in zip(individual, batched):
            assert_same_solution(ind, bat)
            assert bat.meta["batch"]["route"] == "fallback"
            assert bat.meta["batch"]["reason"] == "slice-infeasible"

    def test_ladder_rung_registered(self, hub):
        """The ``sparse+batch`` rung solves through the batch path, so a
        ladder can front a batched sweep with a matching primary route."""
        assert "sparse+batch" in RUNG_SOLVERS
        policy = LadderPolicy(rungs=(Rung("sparse+batch", "sparse+batch", 30.0),))
        _, _, instances = hub
        solution = RUNG_SOLVERS["sparse+batch"](instances[0], 30.0)
        assert_same_solution(
            solve_optimal(instances[0], time_limit_s=TIME_LIMIT_S), solution
        )
        assert solution.meta["batch"]["size"] == 1
        assert policy.rungs[0].solver == "sparse+batch"


class TestSweepComposition:
    """``lp_batch`` through the sweep is a pure execution strategy."""

    ALGORITHMS = ("optimal", "pm")

    def _sweep(self, context, scenarios, **kwargs):
        return parallel_sweep(
            context,
            scenarios,
            self.ALGORITHMS,
            optimal_time_limit_s=TIME_LIMIT_S,
            **kwargs,
        )

    def assert_identical(self, plain, batched, stamped=True):
        assert [r.name for r in plain] == [r.name for r in batched]
        for p, b in zip(plain, batched):
            for algorithm in p.solutions:
                assert_same_solution(
                    p.solutions[algorithm],
                    b.solutions[algorithm],
                    ignore=("batch", "ladder_rung"),
                )
                assert (
                    p.evaluations[algorithm].objective
                    == b.evaluations[algorithm].objective
                )
            if stamped:
                assert "batch" in b.solutions["optimal"].meta

    def test_serial_batched_identical(self, hub):
        context, scenarios, _ = hub
        plain = self._sweep(context, scenarios, max_workers=1)
        batched = self._sweep(context, scenarios, max_workers=1, lp_batch=3)
        self.assert_identical(plain, batched)
        sizes = {r.solutions["optimal"].meta["batch"]["size"] for r in batched}
        assert sizes == {3}  # six scenarios, two chunks of lp_batch=3

    def test_pool_batched_identical(self, hub):
        context, scenarios, _ = hub
        plain = self._sweep(context, scenarios, max_workers=1)
        batched = self._sweep(
            context, scenarios, max_workers=2, min_parallel_tasks=0, lp_batch=3
        )
        self.assert_identical(plain, batched)

    def test_incremental_batched_identical(self, hub):
        context, scenarios, _ = hub
        plain = self._sweep(context, scenarios, max_workers=1)
        batched = self._sweep(
            context, scenarios, max_workers=1, incremental=True, lp_batch=2
        )
        self.assert_identical(plain, batched)

    def test_ladder_sweep_disables_batching(self, hub):
        """A ladder forces per-scenario supervision, so the sweep falls
        back to scenario-at-a-time solves — identical answers, just no
        batch provenance."""
        context, scenarios, _ = hub
        plain = self._sweep(context, scenarios, max_workers=1)
        laddered = self._sweep(
            context,
            scenarios,
            max_workers=1,
            lp_batch=3,
            ladder=LadderPolicy(
                rungs=(Rung("sparse+batch", "sparse+batch", TIME_LIMIT_S),)
            ),
        )
        self.assert_identical(plain, laddered, stamped=False)


# ---------------------------------------------------------------------------
# Property: batched ≡ scenario-at-a-time on random Waxman batches, salted
# with one infeasible block and one block that needs the B&B fallback.
# ---------------------------------------------------------------------------

#: An instance with no spare anywhere: its LP is infeasible, the PM seed
#: cannot embed, and the member must fall back (and stay infeasible).
INFEASIBLE_INSTANCE = make_tiny_instance(spare={100: 0, 200: 0})


def _bnb_instance():
    """A feasible instance whose PM seed misses the LP certificate, so
    the member needs the full branch-and-bound fallback (the individual
    route reports ``solver="highs"`` without a certificate)."""
    topology = ring_topology(10, chords=5, seed=7)
    context = custom_context(topology, controller_sites=(0, 3, 7), capacity=135)
    return context.instance(FailureScenario(frozenset({0, 3})))


BNB_INSTANCE = _bnb_instance()


@st.composite
def waxman_batches(draw):
    n = draw(st.integers(min_value=10, max_value=13))
    seed = draw(st.integers(min_value=0, max_value=20))
    capacity = draw(st.sampled_from((200, 300, 400)))
    topology = waxman_topology(n, alpha=0.7, beta=0.4, seed=seed)
    sites = topology.nodes[:3]
    try:
        context = custom_context(topology, controller_sites=sites, capacity=capacity)
        context.plane.spare_capacity(context.flows)
    except Exception:
        assume(False)
    instances = [
        context.instance(s) for s in enumerate_failure_scenarios(context.plane, 1)
    ]
    return instances


class TestBatchedEquivalenceProperty:
    @SETTINGS
    @given(waxman_batches())
    def test_batched_matches_scenario_at_a_time(self, instances):
        batch = instances + [INFEASIBLE_INSTANCE, BNB_INSTANCE]
        individual = [solve_optimal(i, time_limit_s=TIME_LIMIT_S) for i in batch]
        batched = solve_optimal_batch(batch, time_limit_s=TIME_LIMIT_S)
        for ind, bat in zip(individual, batched):
            assert_same_solution(ind, bat)
        # The salt guarantees both hard routes are exercised every example.
        assert not batched[-2].feasible
        assert batched[-2].meta["batch"]["route"] == "fallback"
        assert batched[-1].meta["batch"]["route"] == "fallback"
        assert batched[-1].meta["batch"]["reason"] == "certificate-miss"
        assert batched[-1].feasible and batched[-1].meta["solver"] == "highs"
