"""Property-based tests of the FMSSM formulation and exact solvers.

Random tiny instances are generated directly (switches, controllers,
flows, p̄ values) so the solver cross-validation explores corners the
topology-driven generators never reach (zero budgets, single
controllers, disconnected flows).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flows.flow import Flow
from repro.fmssm.evaluation import evaluate_solution, verify_solution
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.optimal import solve_optimal
from repro.fmssm.two_stage import solve_two_stage
from repro.pm.algorithm import solve_pm

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tiny_instances(draw):
    """Random 2-3 switch, 1-2 controller, 2-4 flow instances.

    Flows are synthetic paths through a virtual line topology: flow l
    runs ``(100+l) -> switches... -> (200+l)`` so paths are always valid
    and distinct.
    """
    n_switches = draw(st.integers(min_value=2, max_value=3))
    switches = tuple(range(1, n_switches + 1))
    n_controllers = draw(st.integers(min_value=1, max_value=2))
    controllers = tuple(100 * (j + 1) for j in range(n_controllers))
    n_flows = draw(st.integers(min_value=2, max_value=4))

    flows = {}
    pbar = {}
    for l in range(n_flows):
        # Each flow crosses a random non-empty subset of switches in order.
        crossed = sorted(
            draw(
                st.sets(
                    st.sampled_from(switches), min_size=1, max_size=n_switches
                )
            )
        )
        path = (1000 + l, *crossed, 2000 + l)
        flow = Flow(1000 + l, 2000 + l, path)
        flows[flow.flow_id] = flow
        for switch in crossed:
            if draw(st.booleans()):
                pbar[(switch, flow.flow_id)] = draw(st.integers(2, 6))

    spare = {c: draw(st.integers(0, 5)) for c in controllers}
    delay = {
        (s, c): float(draw(st.integers(1, 9)))
        for s in switches
        for c in controllers
    }
    gamma = {s: sum(1 for f in flows.values() if s in f.path) for s in switches}
    nearest = {
        s: min(controllers, key=lambda c: (delay[(s, c)], c)) for s in switches
    }
    ideal = float(draw(st.integers(20, 200)))
    return FMSSMInstance(
        switches=switches,
        controllers=controllers,
        spare=spare,
        delay=delay,
        flows=flows,
        pbar=pbar,
        gamma=gamma,
        ideal_delay_ms=ideal,
        lam=0.001,
        nearest=nearest,
    )


class TestExactSolverProperties:
    @SETTINGS
    @given(tiny_instances())
    def test_highs_and_bnb_agree(self, instance):
        a = solve_optimal(instance, solver="highs", require_full_recovery=False)
        b = solve_optimal(instance, solver="bnb", require_full_recovery=False)
        assert a.feasible and b.feasible
        ea = evaluate_solution(instance, a, enforce_delay=True)
        eb = evaluate_solution(instance, b, enforce_delay=True)
        assert ea.objective == pytest.approx(eb.objective, abs=1e-6)

    @SETTINGS
    @given(tiny_instances())
    def test_two_stage_matches_weighted(self, instance):
        weighted = solve_optimal(instance, require_full_recovery=False)
        lexicographic = solve_two_stage(instance, require_full_recovery=False)
        ew = evaluate_solution(instance, weighted, enforce_delay=True)
        el = evaluate_solution(instance, lexicographic, enforce_delay=True)
        assert ew.least_programmability == el.least_programmability
        assert ew.total_programmability == el.total_programmability

    @SETTINGS
    @given(tiny_instances())
    def test_pm_strict_never_beats_optimal(self, instance):
        optimal = solve_optimal(instance, require_full_recovery=False)
        pm = solve_pm(instance, enforce_delay=True)
        eo = evaluate_solution(instance, optimal, enforce_delay=True)
        ep = evaluate_solution(instance, pm, enforce_delay=True)
        assert ep.objective <= eo.objective + 1e-9

    @SETTINGS
    @given(tiny_instances())
    def test_solutions_verify(self, instance):
        for solution in (
            solve_optimal(instance, require_full_recovery=False),
            solve_pm(instance, enforce_delay=True),
        ):
            verify_solution(instance, solution, enforce_delay=True)

    @SETTINGS
    @given(tiny_instances())
    def test_total_bounded_by_budget_value(self, instance):
        """Total programmability never exceeds what the budget can buy."""
        optimal = solve_optimal(instance, require_full_recovery=False)
        evaluation = evaluate_solution(instance, optimal, enforce_delay=True)
        best_pairs = sorted(instance.pbar.values(), reverse=True)
        budget = min(instance.total_spare, len(best_pairs))
        assert evaluation.total_programmability <= sum(best_pairs[:budget])
