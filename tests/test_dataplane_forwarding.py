"""Tests for network-wide forwarding simulation."""

from __future__ import annotations

import pytest

from repro.dataplane.forwarding import NetworkDataPlane
from repro.dataplane.packet import Packet
from repro.dataplane.switch import SwitchMode
from repro.exceptions import DataPlaneError, ForwardingLoopError
from repro.flows.demands import all_pairs_flows
from repro.flows.flow import Flow
from repro.topology.generators import grid_topology


@pytest.fixture
def grid():
    return grid_topology(3, 3)


@pytest.fixture
def plane(grid):
    return NetworkDataPlane(grid, mode=SwitchMode.HYBRID, legacy_weight="hops")


class TestLegacyForwarding:
    def test_all_flows_delivered_via_legacy(self, grid, plane):
        """With empty flow tables, the legacy fall-through routes everything."""
        flows = all_pairs_flows(grid, weight="hops")
        realized = plane.check_all_delivered(flows)
        assert len(realized) == len(flows)
        for flow in flows:
            path = realized[flow.flow_id]
            assert path[0] == flow.src and path[-1] == flow.dst
            assert len(path) - 1 == flow.hop_count  # same metric -> same length

    def test_forward_trace_recorded(self, plane):
        packet = Packet(0, 8)
        path = plane.forward(packet)
        assert packet.trace == list(path)
        assert packet.delivered


class TestInstalledPaths:
    def test_install_flow_path_steers_packet(self, grid, plane):
        # Deliberately install a non-shortest path; the flow entries must win
        # over legacy routing at every hop.
        detour = Flow(0, 2, (0, 3, 4, 1, 2))
        plane.install_flow_path(detour)
        path = plane.forward(Packet(0, 2))
        assert path == (0, 3, 4, 1, 2)

    def test_unknown_switch_rejected(self, plane):
        with pytest.raises(DataPlaneError):
            plane.switch(99)


class TestReroute:
    def test_reroute_changes_next_hop(self, grid, plane):
        flow = Flow(0, 8, (0, 1, 2, 5, 8))
        plane.install_flow_path(flow)
        assert plane.forward(Packet(0, 8)) == (0, 1, 2, 5, 8)
        # Reprogram at node 1: go down (to 4) instead of right (to 2).
        plane.reroute((0, 8), at=1, new_next_hop=4)
        path = plane.forward(Packet(0, 8))
        assert path[:3] == (0, 1, 4)
        assert path[-1] == 8

    def test_reroute_to_non_neighbor_rejected(self, plane):
        with pytest.raises(DataPlaneError, match="no link"):
            plane.reroute((0, 8), at=0, new_next_hop=8)

    def test_loop_detected(self, grid, plane):
        # Program a 2-cycle: 0 -> 1 -> 0.
        plane.reroute((0, 8), at=0, new_next_hop=1)
        plane.reroute((0, 8), at=1, new_next_hop=0)
        with pytest.raises(ForwardingLoopError):
            plane.forward(Packet(0, 8))


class TestApplyRecovery:
    def test_recovery_output_is_installable(self, att_context, att_instance_13_20):
        """PM's output installs on the data plane and every offline flow
        still reaches its destination."""
        from repro.pm import solve_pm

        solution = solve_pm(att_instance_13_20)
        plane = NetworkDataPlane(
            att_context.topology, mode=SwitchMode.HYBRID, legacy_weight="hops"
        )
        plane.apply_recovery(att_instance_13_20, solution)
        realized = plane.check_all_delivered(att_instance_13_20.flows.values())
        assert len(realized) == att_instance_13_20.n_flows
        # SDN pairs must have flow entries installed.
        for switch, flow_id in solution.sdn_pairs:
            assert plane.switch(switch).flow_table.lookup(flow_id) is not None

    def test_recovered_flow_can_be_rerouted(self, att_context, att_instance_13_20):
        """What programmability buys: a recovered flow reroutes at a
        recovered switch onto an alternate next hop and still arrives."""
        from repro.pm import solve_pm

        instance = att_instance_13_20
        solution = solve_pm(instance)
        plane = NetworkDataPlane(
            att_context.topology, mode=SwitchMode.HYBRID, legacy_weight="hops"
        )
        plane.apply_recovery(instance, solution)

        # Find a recovered pair with an alternate next hop available.
        import networkx as nx

        topology = att_context.topology
        for switch, flow_id in sorted(solution.sdn_pairs):
            flow = instance.flows[flow_id]
            original = flow.next_hop(switch)
            for neighbor in topology.neighbors(switch):
                if neighbor == original or neighbor in flow.path[: flow.path.index(switch)]:
                    continue
                # Candidate alternate: neighbor that still reaches dst
                # without coming back through `switch`.
                sub = topology.graph.subgraph(n for n in topology.graph if n != switch)
                if neighbor in sub and nx.has_path(sub, neighbor, flow.dst):
                    blocked = set(flow.path[: flow.path.index(switch) + 1])
                    path_nodes = nx.shortest_path(sub, neighbor, flow.dst)
                    if blocked & set(path_nodes):
                        continue
                    plane.reroute(flow_id, at=switch, new_next_hop=neighbor)
                    packet = Packet(flow.src, flow.dst)
                    realized = plane.forward(packet)
                    assert realized[-1] == flow.dst
                    assert neighbor in realized
                    return
        pytest.fail("no reroutable recovered pair found")
