"""Tests for the embedded ATT topology and its Table III layout."""

from __future__ import annotations

import pytest

from repro.flows.demands import all_pairs_flows
from repro.flows.paths import switch_flow_counts
from repro.topology.att import (
    ATT_CONTROLLER_SITES,
    ATT_DEFAULT_CAPACITY,
    ATT_DOMAINS,
    ATT_EDGES,
    ATT_NODES,
    att_topology,
)
from repro.topology.partition import validate_partition


class TestAttShape:
    def test_paper_node_and_link_counts(self, att):
        # "25 nodes and 112 links" — Topology Zoo counts directionally.
        assert att.n_nodes == 25
        assert att.n_directed_links == 112

    def test_node_ids_contiguous(self, att):
        assert att.nodes == tuple(range(25))

    def test_min_degree_two(self, att):
        # A backbone has no stub nodes; degree-2 nodes bound the least
        # programmability to 2 (the paper's observation).
        assert min(att.degree(n) for n in att.nodes) == 2

    def test_dallas_is_highest_degree_hub(self, att):
        degrees = {n: att.degree(n) for n in att.nodes}
        assert max(degrees, key=degrees.get) == 13
        assert att.label(13) == "Dallas"

    def test_every_node_has_unique_city(self, att):
        labels = [att.label(n) for n in att.nodes]
        assert len(set(labels)) == 25

    def test_edges_match_constant(self, att):
        expected = {(min(u, v), max(u, v)) for u, v in ATT_EDGES}
        assert set(att.edges()) == expected

    def test_coordinates_inside_contiguous_us(self, att):
        for node in att.nodes:
            point = att.geo(node)
            assert 24.0 <= point.latitude <= 50.0
            assert -125.0 <= point.longitude <= -66.0


class TestTableIIILayout:
    def test_domains_partition_nodes(self, att):
        validate_partition(att, ATT_DOMAINS)

    def test_six_controllers_at_paper_sites(self):
        assert ATT_CONTROLLER_SITES == (2, 5, 6, 13, 20, 22)
        assert set(ATT_DOMAINS) == set(ATT_CONTROLLER_SITES)

    def test_controller_site_inside_own_domain(self):
        for controller, members in ATT_DOMAINS.items():
            assert controller in members

    def test_paper_capacity(self):
        assert ATT_DEFAULT_CAPACITY == 500

    def test_domain_sizes_match_paper(self):
        sizes = {c: len(m) for c, m in ATT_DOMAINS.items()}
        assert sizes == {2: 4, 5: 4, 6: 4, 13: 4, 20: 3, 22: 6}


class TestRegeneratedWorkload:
    """The hop-count all-pairs workload reproduces Table III's shape."""

    @pytest.fixture(scope="class")
    def gamma(self, att):
        flows = all_pairs_flows(att, weight="hops")
        return switch_flow_counts(flows)

    def test_total_close_to_paper(self, gamma):
        # Paper total: 2055.  Shape tolerance: within 5 %.
        assert sum(gamma.values()) == pytest.approx(2055, rel=0.05)

    def test_switch13_is_the_flow_hub(self, gamma):
        assert max(gamma, key=gamma.get) == 13

    def test_leaf_switches_near_paper_minimum(self, gamma):
        # Paper minimum is 49 (several leaf switches); ours is 48 — every
        # node terminates 24 flows and originates 24.
        assert min(gamma.values()) == 48

    def test_every_domain_fits_capacity(self, att, gamma):
        for members in ATT_DOMAINS.values():
            load = sum(gamma[s] for s in members)
            assert load < ATT_DEFAULT_CAPACITY

    def test_all_25_switches_loaded(self, gamma):
        assert set(gamma) == set(range(25))

    def test_nodes_constant_consistency(self):
        assert set(ATT_NODES) == set(range(25))
        for _, lat, lon in ATT_NODES.values():
            assert 24.0 <= lat <= 50.0
