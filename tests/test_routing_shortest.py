"""Tests for shortest-path helpers and the shortest-path DAG."""

from __future__ import annotations

import pytest

from repro.exceptions import RoutingError
from repro.routing.shortest import (
    delay_distances_to,
    hop_distances_to,
    shortest_path_dag,
    weight_attribute,
)
from repro.topology.generators import grid_topology


@pytest.fixture(scope="module")
def grid():
    return grid_topology(3, 3)


class TestWeightAttribute:
    def test_known_metrics(self):
        assert weight_attribute("delay") == "delay_ms"
        assert weight_attribute("distance") == "distance_m"
        assert weight_attribute("hops") is None

    def test_unknown_metric(self):
        with pytest.raises(RoutingError, match="unknown weight"):
            weight_attribute("latency")


class TestDistances:
    def test_hop_distances(self, grid):
        dist = hop_distances_to(grid, 0)
        assert dist[0] == 0
        assert dist[8] == 4
        assert dist[4] == 2

    def test_delay_distances_monotone_with_hops(self, grid):
        hops = hop_distances_to(grid, 0)
        delays = delay_distances_to(grid, 0)
        assert delays[0] == 0
        # On a uniform grid more hops means more delay.
        assert delays[8] > delays[1]
        assert set(hops) == set(delays)

    def test_unknown_destination(self, grid):
        with pytest.raises(RoutingError):
            hop_distances_to(grid, 99)
        with pytest.raises(RoutingError):
            delay_distances_to(grid, 99)


class TestShortestPathDag:
    def test_hops_dag_on_grid(self, grid):
        # Toward corner 8, the opposite corner 0 has two equally short
        # next hops (right and down).
        dag = shortest_path_dag(grid, 8, weight="hops")
        assert set(dag[0]) == {1, 3}

    def test_dag_excludes_destination_key(self, grid):
        dag = shortest_path_dag(grid, 8, weight="hops")
        assert 8 not in dag

    def test_every_node_has_a_successor(self, grid):
        dag = shortest_path_dag(grid, 4, weight="hops")
        assert all(dag[n] for n in dag)

    def test_successors_reduce_distance(self, grid):
        dist = hop_distances_to(grid, 8)
        dag = shortest_path_dag(grid, 8, weight="hops")
        for node, successors in dag.items():
            for nxt in successors:
                assert dist[nxt] == dist[node] - 1

    def test_delay_dag_is_subset_of_neighbors(self, grid):
        dag = shortest_path_dag(grid, 8, weight="delay")
        for node, successors in dag.items():
            for nxt in successors:
                assert grid.has_edge(node, nxt)
