"""Property-based tests for the LP layer (hypothesis).

The branch-and-bound solver is cross-validated against HiGHS on random
knapsack-style MILPs, and the standard-form compiler is checked for
solution-preserving round-trips.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lp import LinExpr, Model, SolveStatus, solve

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def knapsack_instances(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    values = draw(st.lists(st.integers(1, 20), min_size=n, max_size=n))
    weights = draw(st.lists(st.integers(1, 10), min_size=n, max_size=n))
    budget = draw(st.integers(min_value=1, max_value=sum(weights)))
    return values, weights, budget


def build_knapsack(values, weights, budget) -> Model:
    m = Model("kp")
    xs = [m.add_var(f"x{i}", binary=True) for i in range(len(values))]
    m.add_constraint(LinExpr.total(zip(map(float, weights), xs)) <= budget)
    m.set_objective(LinExpr.total(zip(map(float, values), xs)), sense="max")
    return m


def brute_force_knapsack(values, weights, budget) -> float:
    best = 0
    n = len(values)
    for mask in range(1 << n):
        weight = value = 0
        for i in range(n):
            if mask >> i & 1:
                weight += weights[i]
                value += values[i]
        if weight <= budget:
            best = max(best, value)
    return float(best)


class TestSolverProperties:
    @SETTINGS
    @given(knapsack_instances())
    def test_highs_matches_brute_force(self, instance):
        values, weights, budget = instance
        result = solve(build_knapsack(values, weights, budget), solver="highs")
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(
            brute_force_knapsack(values, weights, budget)
        )

    @SETTINGS
    @given(knapsack_instances())
    def test_bnb_matches_brute_force(self, instance):
        values, weights, budget = instance
        result = solve(build_knapsack(values, weights, budget), solver="bnb")
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(
            brute_force_knapsack(values, weights, budget)
        )

    @SETTINGS
    @given(knapsack_instances())
    def test_incumbent_is_feasible_and_binary(self, instance):
        values, weights, budget = instance
        result = solve(build_knapsack(values, weights, budget), solver="bnb")
        load = 0.0
        for i, w in enumerate(weights):
            x = result.value(f"x{i}")
            assert x in (0.0, 1.0)
            load += w * x
        assert load <= budget + 1e-9

    @SETTINGS
    @given(knapsack_instances())
    def test_lp_relaxation_upper_bounds_milp(self, instance):
        values, weights, budget = instance
        milp = solve(build_knapsack(values, weights, budget), solver="highs")

        relaxed_model = Model("relaxed")
        xs = [relaxed_model.add_var(f"x{i}", lb=0, ub=1) for i in range(len(values))]
        relaxed_model.add_constraint(
            LinExpr.total(zip(map(float, weights), xs)) <= budget
        )
        relaxed_model.set_objective(
            LinExpr.total(zip(map(float, values), xs)), sense="max"
        )
        relaxed = solve(relaxed_model, solver="highs")
        assert relaxed.objective >= milp.objective - 1e-6


class TestExpressionProperties:
    @SETTINGS
    @given(
        st.lists(st.floats(-10, 10), min_size=1, max_size=5),
        st.floats(-10, 10),
    )
    def test_scaling_distributes(self, coefficients, scalar):
        m = Model()
        xs = [m.add_var(f"x{i}") for i in range(len(coefficients))]
        expr = LinExpr.total(zip(coefficients, xs))
        scaled = expr * scalar
        for i, x in enumerate(xs):
            expected = coefficients[i] * scalar
            assert scaled.coefficients.get(x.index, 0.0) == pytest.approx(
                expected, abs=1e-9
            )

    @SETTINGS
    @given(st.floats(-100, 100), st.floats(-100, 100))
    def test_addition_of_constants(self, a, b):
        m = Model()
        x = m.add_var("x")
        expr = (x + a) + b
        assert expr.constant == pytest.approx(a + b)
