"""Sweep-supervisor tests: deadlines, quarantine, breakers, campaign WAL.

The contract (docs/robustness.md): a :class:`SweepSupervisor` wrapped
around the warm fan-out changes *nothing* when no fault fires — the
supervised sweep is byte-for-byte the unsupervised one — and under
``hang``/``kill-worker``/``raise-error`` chaos it still delivers results
bit-identical to the serial sweep, with every intervention accounted for
in ``ScenarioResult.meta["supervisor"]`` and the supervisor's summary.

Unit layers (fake clock) cover the breaker state machine, the deadline
derivation and the retry ledger; integration layers drive real pools
(``max_workers=2`` — this container exposes one CPU, so pool routes must
be requested explicitly) through injected chaos; the campaign layer
kills a write-ahead journal mid-flight and resumes it bit-identically.
"""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_perf_parallel_sweep import assert_sweeps_identical

from repro.control.failures import FailureScenario
from repro.exceptions import CheckpointError, DegradedResultWarning
from repro.experiments.scenarios import custom_context
from repro.perf import shm
from repro.perf.executor import (
    SweepExecutor,
    campaign_summary,
    close_default_executor,
    run_campaign,
)
from repro.perf.sweep import parallel_sweep
from repro.resilience import chaos
from repro.resilience.chaos import Fault
from repro.resilience.degradation import default_ladder
from repro.resilience.supervisor import (
    BREAKER_RUNGS,
    TRANSPORT_BREAKER,
    BreakerOpenState,
    CircuitBreaker,
    QuarantineReport,
    RetryLedger,
    SupervisorPolicy,
    SweepSupervisor,
)

FAST_ALGORITHMS = ("pm", "retroflow", "pg", "nearest")

CONTROLLERS = (0, 3, 7)


@pytest.fixture(scope="module")
def ring_context():
    from repro.topology.generators import ring_topology

    return custom_context(
        ring_topology(10, chords=5, seed=7),
        controller_sites=CONTROLLERS,
        capacity=160,
    )


@pytest.fixture(scope="module")
def ring_scenarios():
    return tuple(FailureScenario(frozenset({c})) for c in CONTROLLERS)


@pytest.fixture(scope="module")
def ring_serial(ring_context, ring_scenarios):
    return parallel_sweep(ring_context, ring_scenarios, FAST_ALGORITHMS)


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must leave the segment registry empty."""
    yield
    close_default_executor()
    leaked = shm.active_segments()
    shm.release_all()
    assert leaked == (), f"leaked shared-memory segments: {leaked}"


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _supervised_sweep(context, scenarios, executor, supervisor, **kwargs):
    return parallel_sweep(
        context, scenarios, FAST_ALGORITHMS,
        max_workers=2, min_parallel_tasks=0,
        executor=executor, supervisor=supervisor, **kwargs,
    )


# ----------------------------------------------------------------------
# Breaker state machine (fake clock, fully deterministic)
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker("b", threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerOpenState.CLOSED
        assert breaker.allow_request()
        assert breaker.trips == 0

    def test_opens_on_threshold_and_blocks(self):
        clock = FakeClock()
        breaker = CircuitBreaker("b", threshold=3, cooldown_s=60.0, clock=clock)
        for _ in range(3):
            breaker.record_failure("boom")
        assert breaker.state == BreakerOpenState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow_request()
        clock.advance(59.0)
        assert not breaker.allow_request()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("b", threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BreakerOpenState.CLOSED

    def test_cooldown_half_opens_then_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker("b", threshold=1, cooldown_s=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == BreakerOpenState.OPEN
        clock.advance(10.0)
        assert breaker.allow_request()
        assert breaker.state == BreakerOpenState.HALF_OPEN
        breaker.record_success()
        assert breaker.state == BreakerOpenState.CLOSED
        assert [e["state"] for e in breaker.events] == [
            BreakerOpenState.OPEN,
            BreakerOpenState.HALF_OPEN,
            BreakerOpenState.CLOSED,
        ]

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker("b", threshold=1, cooldown_s=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow_request()
        breaker.record_failure("still broken")
        assert breaker.state == BreakerOpenState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow_request()

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker("b", threshold=0)

    def test_to_dict_snapshot(self):
        breaker = CircuitBreaker("rung:bnb", threshold=2, clock=FakeClock())
        breaker.record_failure()
        snapshot = breaker.to_dict()
        assert snapshot["name"] == "rung:bnb"
        assert snapshot["state"] == BreakerOpenState.CLOSED
        assert snapshot["failures"] == 1
        assert json.dumps(snapshot)  # JSON-safe


# ----------------------------------------------------------------------
# Policy: deadlines, effective routes, ledger, quarantine bookkeeping
# ----------------------------------------------------------------------

class TestSupervisorPolicy:
    def test_explicit_deadline_overrides_derivation(self):
        supervisor = SweepSupervisor(SupervisorPolicy(task_deadline_s=7.5))
        assert supervisor.task_deadline_s(None, 300.0) == 7.5

    def test_ladderless_deadline_floors_at_minimum(self):
        supervisor = SweepSupervisor(
            SupervisorPolicy(deadline_multiplier=3.0, min_deadline_s=30.0)
        )
        assert supervisor.task_deadline_s(None, 1.0) == 30.0
        assert supervisor.task_deadline_s(None, 100.0) == 300.0

    def test_ladder_deadline_sums_rung_budgets(self):
        # default_ladder(10, retries=1): sparse+warm 10s x2 attempts,
        # model 10s, bnb 10s, pm terminal (no limit contribution beyond
        # its explicit time_limit_s=None -> optimal limit).
        supervisor = SweepSupervisor(
            SupervisorPolicy(deadline_multiplier=2.0, min_deadline_s=1.0)
        )
        ladder = default_ladder(10.0, retries=1)
        budget = sum(
            (rung.time_limit_s if rung.time_limit_s is not None else 10.0)
            * (rung.retries + 1)
            for rung in ladder.rungs
        )
        assert supervisor.task_deadline_s(ladder, 10.0) == 2.0 * budget

    def test_effective_ladder_is_identity_when_closed(self):
        supervisor = SweepSupervisor()
        ladder = default_ladder(5.0)
        assert supervisor.effective_ladder(ladder) is ladder
        assert supervisor.effective_ladder(None) is None

    def test_effective_ladder_drops_open_rungs(self):
        supervisor = SweepSupervisor(SupervisorPolicy(breaker_threshold=1))
        supervisor.breakers["rung:sparse+warm"].record_failure()
        effective = supervisor.effective_ladder(default_ladder(5.0))
        names = [rung.name for rung in effective.rungs]
        assert "sparse+warm" not in names
        assert names[-1] == "pm"  # terminal rung is never dropped

    def test_effective_transport_reroutes_when_open(self):
        supervisor = SweepSupervisor(SupervisorPolicy(breaker_threshold=1))
        assert supervisor.effective_transport("shm") == "shm"
        supervisor.breakers[TRANSPORT_BREAKER].record_failure()
        assert supervisor.effective_transport("shm") == "pickle"
        assert supervisor.effective_transport("pickle") == "pickle"

    def test_observe_report_feeds_rung_breakers(self):
        clock = FakeClock()
        supervisor = SweepSupervisor(
            SupervisorPolicy(breaker_threshold=2, breaker_cooldown_s=30.0),
            clock=clock,
        )
        demote = {"events": [
            {"rung": "sparse+warm", "action": "demote", "reason": "timeout"},
        ]}
        supervisor.observe_report(demote)
        supervisor.observe_report(demote)
        breaker = supervisor.breakers["rung:sparse+warm"]
        assert breaker.state == BreakerOpenState.OPEN
        assert supervisor.stats["breaker_trips"] == 1
        # After the cooldown an accept on the rung closes the breaker.
        clock.advance(30.0)
        assert supervisor.effective_ladder(default_ladder(5.0)) is not None
        supervisor.observe_report({"events": [
            {"rung": "sparse+warm", "action": "accept"},
        ]})
        assert breaker.state == BreakerOpenState.CLOSED

    def test_observe_report_ignores_unguarded_rungs(self):
        supervisor = SweepSupervisor(SupervisorPolicy(breaker_threshold=1))
        supervisor.observe_report({"events": [
            {"rung": "pm", "action": "demote", "reason": "n/a"},
        ]})
        assert all(
            b.state == BreakerOpenState.CLOSED
            for b in supervisor.breakers.values()
        )

    def test_ledger_charges_and_budget(self):
        ledger = RetryLedger(max_task_retries=2)
        assert ledger.charge("s", "preempted") == 1
        assert ledger.charge("s", "preempted") == 2
        assert not ledger.over_budget("s")
        assert ledger.charge("s", "pool-crash") == 3
        assert ledger.over_budget("s")
        assert ledger.causes["s"] == "pool-crash"
        assert not ledger.over_budget("other")

    def test_quarantine_decisions_are_deduplicated(self):
        supervisor = SweepSupervisor(SupervisorPolicy(max_task_retries=0))
        supervisor.charge(["a", "b"], "preempted")
        fresh = supervisor.quarantine_decisions(["a", "b", "c"], ("pm",))
        assert [r.scenario for r in fresh] == ["a", "b"]
        assert all(r.resolution == "serial-ladder" for r in fresh)
        assert supervisor.is_quarantined("a")
        assert not supervisor.is_quarantined("c")
        # Re-asking yields nothing new; the log keeps the originals.
        assert supervisor.quarantine_decisions(["a", "b"], ("pm",)) == []
        assert supervisor.stats["quarantined"] == 2

    def test_summary_is_json_safe(self):
        supervisor = SweepSupervisor(SupervisorPolicy(max_task_retries=0))
        supervisor.charge(["x"], "preempted")
        supervisor.quarantine_decisions(["x"], ("pm",))
        supervisor.observe_transport(False, "decode failed")
        assert json.dumps(supervisor.summary())

    def test_quarantine_report_round_trip(self):
        report = QuarantineReport(
            scenario="fail(0)", algorithms=("pm", "pg"), charges=3,
            cause="preempted",
        )
        payload = report.to_dict()
        assert payload["scenario"] == "fail(0)"
        assert payload["algorithms"] == ["pm", "pg"]
        assert payload["resolution"] == "serial-ladder"

    def test_breaker_registry_covers_guarded_components(self):
        supervisor = SweepSupervisor()
        expected = {f"rung:{r}" for r in BREAKER_RUNGS} | {TRANSPORT_BREAKER}
        assert set(supervisor.breakers) == expected


# ----------------------------------------------------------------------
# Supervised fan-out through a real pool
# ----------------------------------------------------------------------

class TestSupervisedEquivalence:
    def test_fault_free_supervised_is_bit_identical(
        self, ring_context, ring_scenarios, ring_serial
    ):
        supervisor = SweepSupervisor()
        with SweepExecutor(max_workers=2) as executor:
            supervised = _supervised_sweep(
                ring_context, ring_scenarios, executor, supervisor
            )
        assert_sweeps_identical(ring_serial, supervised)
        stats = supervisor.stats
        assert stats["supervised_sweeps"] == 1
        assert stats["preemptions"] == 0
        assert stats["pool_crashes"] == 0
        assert stats["task_faults"] == 0
        assert stats["quarantined"] == 0
        assert supervisor.quarantines == []
        # Fault-free results carry no supervisor scars.
        for result in supervised:
            assert "supervisor" not in result.meta
            assert not result.degradation.degraded

    def test_hung_workers_are_preempted_and_results_identical(
        self, ring_context, ring_scenarios, ring_serial
    ):
        supervisor = SweepSupervisor(SupervisorPolicy(
            task_deadline_s=0.5, poll_interval_s=0.05, max_task_retries=0,
        ))
        with SweepExecutor(max_workers=2) as executor, \
                chaos.inject(
                    Fault("sweep.task", "hang", count=None, seconds=15.0)
                ), warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            supervised = _supervised_sweep(
                ring_context, ring_scenarios, executor, supervisor
            )
            assert executor.stats["preempts"] >= 1
        assert_sweeps_identical(ring_serial, supervised)
        assert supervisor.stats["preemptions"] >= 1
        assert supervisor.stats["quarantined"] == len(ring_scenarios)
        for result in supervised:
            meta = result.meta["supervisor"]
            assert meta["quarantined"]
            actions = {event["action"] for event in meta["events"]}
            assert "preempted" in actions
            assert "quarantine" in actions
            assert result.degradation.degraded

    def test_killed_workers_route_to_quarantine(
        self, ring_context, ring_scenarios, ring_serial
    ):
        supervisor = SweepSupervisor(SupervisorPolicy(
            poll_interval_s=0.05, max_task_retries=0,
        ))
        with SweepExecutor(max_workers=2) as executor, \
                chaos.inject(Fault("sweep.task", "kill-worker", count=None)), \
                warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            supervised = _supervised_sweep(
                ring_context, ring_scenarios, executor, supervisor
            )
        assert_sweeps_identical(ring_serial, supervised)
        assert supervisor.stats["pool_crashes"] >= 1
        assert supervisor.stats["quarantined"] == len(ring_scenarios)
        reports = supervisor.quarantines
        assert {r.scenario for r in reports} == {
            s.name for s in ring_scenarios
        }
        assert all(r.cause == "pool-crash" for r in reports)
        assert all(r.resolution == "serial-ladder" for r in reports)

    def test_transient_task_fault_is_retried_not_quarantined(
        self, ring_context, ring_scenarios, ring_serial
    ):
        # Each worker faults exactly once; a scenario can be charged at
        # most once per worker, so a budget of 10 never quarantines.
        supervisor = SweepSupervisor(SupervisorPolicy(
            poll_interval_s=0.05, max_task_retries=10,
        ))
        with SweepExecutor(max_workers=2) as executor, \
                chaos.inject(
                    Fault("sweep.task", "raise-error", at_call=1, count=1)
                ), warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            supervised = _supervised_sweep(
                ring_context, ring_scenarios, executor, supervisor
            )
        assert_sweeps_identical(ring_serial, supervised)
        assert supervisor.stats["task_faults"] >= 1
        assert supervisor.stats["quarantined"] == 0
        assert supervisor.quarantines == []

    def test_decode_faults_trip_the_transport_breaker(
        self, ring_context, ring_scenarios, ring_serial
    ):
        supervisor = SweepSupervisor(SupervisorPolicy(
            poll_interval_s=0.05, breaker_threshold=2, max_task_retries=10,
        ))
        with SweepExecutor(max_workers=2) as executor, \
                chaos.inject(
                    Fault("executor.decode_context", "raise-error", count=None)
                ), warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            supervised = _supervised_sweep(
                ring_context, ring_scenarios, executor, supervisor
            )
        assert_sweeps_identical(ring_serial, supervised)
        breaker = supervisor.breakers[TRANSPORT_BREAKER]
        assert breaker.trips >= 1
        assert supervisor.stats["breaker_trips"] >= 1
        # The rerouted round crossed the wire by pickle, not shm.
        assert any(
            e.get("action") == "breaker-open" and e.get("breaker") == TRANSPORT_BREAKER
            for e in supervisor.events
        )

    def test_respawn_failure_degrades_to_serial(
        self, ring_context, ring_scenarios, ring_serial
    ):
        supervisor = SweepSupervisor(SupervisorPolicy(poll_interval_s=0.05))
        with SweepExecutor(max_workers=2) as executor, \
                chaos.inject(
                    Fault("sweep.task", "kill-worker", at_call=1, count=1),
                    Fault("executor.respawn", "raise-error", count=None),
                ):
            with pytest.warns(DegradedResultWarning, match="respawn"):
                supervised = _supervised_sweep(
                    ring_context, ring_scenarios, executor, supervisor
                )
        assert_sweeps_identical(ring_serial, supervised)

    def test_supervisor_requires_no_explicit_executor(
        self, ring_context, ring_scenarios, ring_serial
    ):
        """``supervisor=`` alone opts into the warm route (default pool)."""
        supervisor = SweepSupervisor()
        supervised = parallel_sweep(
            ring_context, ring_scenarios, FAST_ALGORITHMS,
            max_workers=2, min_parallel_tasks=0, supervisor=supervisor,
        )
        close_default_executor()
        assert_sweeps_identical(ring_serial, supervised)
        assert supervisor.stats["supervised_sweeps"] == 1

    @settings(
        max_examples=4, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        chords=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=20),
    )
    def test_property_supervised_equals_unsupervised_fault_free(
        self, chords, seed
    ):
        from repro.topology.generators import ring_topology

        context = custom_context(
            ring_topology(8, chords=chords, seed=seed),
            controller_sites=(0, 4),
            capacity=200,
        )
        scenarios = tuple(
            FailureScenario(frozenset({c})) for c in (0, 4)
        )
        reference = parallel_sweep(context, scenarios, FAST_ALGORITHMS)
        supervisor = SweepSupervisor()
        try:
            with SweepExecutor(max_workers=2) as executor:
                supervised = _supervised_sweep(
                    context, scenarios, executor, supervisor
                )
        finally:
            close_default_executor()
        assert_sweeps_identical(reference, supervised)
        assert supervisor.stats["preemptions"] == 0
        assert supervisor.stats["quarantined"] == 0


# ----------------------------------------------------------------------
# Campaign write-ahead journal: crash-only resume
# ----------------------------------------------------------------------

def _run_journaled_campaign(context, sweeps, directory, supervisor=None):
    with SweepExecutor(max_workers=2) as executor:
        return dict(run_campaign(
            context, sweeps, FAST_ALGORITHMS,
            executor=executor, max_workers=2, min_parallel_tasks=0,
            checkpoint_dir=directory, supervisor=supervisor,
        ))


class TestCampaignJournal:
    @pytest.fixture()
    def sweeps(self, ring_scenarios):
        return [
            ring_scenarios[:2],
            ring_scenarios[1:],
            (ring_scenarios[0],),
        ]

    def test_journal_commits_one_line_per_sweep(
        self, ring_context, sweeps, tmp_path
    ):
        collected = _run_journaled_campaign(ring_context, sweeps, tmp_path)
        assert sorted(collected) == [0, 1, 2]
        lines = (tmp_path / "campaign.jsonl").read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "campaign"
        assert [json.loads(line)["sweep"] for line in lines[1:]] == [0, 1, 2]

    def test_resume_after_hard_kill_is_bit_identical(
        self, ring_context, sweeps, tmp_path
    ):
        first = _run_journaled_campaign(ring_context, sweeps, tmp_path)
        # Simulate a kill after two committed sweeps: drop the last line.
        journal = tmp_path / "campaign.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:3]))
        resumed = _run_journaled_campaign(ring_context, sweeps, tmp_path)
        for index in range(3):
            assert_sweeps_identical(first[index], resumed[index])
        restored = {
            index
            for index, results in resumed.items()
            if any(
                e.action == "restore"
                for r in results
                for e in r.degradation.events
            )
        }
        assert len(restored) == 2  # the two committed sweeps replayed
        summary = campaign_summary(resumed)
        assert summary["sweeps"] == 3
        assert summary["restored"] == sum(len(sweeps[i]) for i in restored)

    def test_torn_final_line_is_discarded_not_fatal(
        self, ring_context, sweeps, tmp_path
    ):
        _run_journaled_campaign(ring_context, sweeps, tmp_path)
        journal = tmp_path / "campaign.jsonl"
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"sweep": 1, "resul')  # torn mid-append
        resumed = _run_journaled_campaign(ring_context, sweeps, tmp_path)
        assert sorted(resumed) == [0, 1, 2]
        # Compaction on completion repaired the file.
        lines = journal.read_text().splitlines()
        assert [json.loads(line)["sweep"] for line in lines[1:]] == [0, 1, 2]

    def test_foreign_campaign_journal_is_rejected(
        self, ring_context, sweeps, tmp_path
    ):
        _run_journaled_campaign(ring_context, sweeps, tmp_path)
        with pytest.raises(CheckpointError, match="different campaign"):
            # Different sweep set => different campaign fingerprint.
            _run_journaled_campaign(ring_context, sweeps[:2], tmp_path)

    def test_changed_sweep_fingerprint_reruns_instead_of_restoring(
        self, ring_context, sweeps, tmp_path
    ):
        _run_journaled_campaign(ring_context, sweeps, tmp_path)
        journal = tmp_path / "campaign.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        entry = json.loads(lines[2])
        entry["fingerprint"] = "0" * 16
        lines[2] = json.dumps(entry, separators=(",", ":")) + "\n"
        journal.write_text("".join(lines))
        resumed = _run_journaled_campaign(ring_context, sweeps, tmp_path)
        tampered = int(entry["sweep"])
        assert not any(
            e.action == "restore"
            for r in resumed[tampered]
            for e in r.degradation.events
        )

    def test_supervisor_state_spans_the_campaign(
        self, ring_context, sweeps, tmp_path
    ):
        supervisor = SweepSupervisor()
        collected = _run_journaled_campaign(
            ring_context, sweeps, tmp_path, supervisor=supervisor
        )
        assert supervisor.stats["supervised_sweeps"] == len(sweeps)
        summary = campaign_summary(collected, supervisor=supervisor)
        assert summary["sweeps"] == len(sweeps)
        assert summary["supervisor"]["stats"]["supervised_sweeps"] == len(sweeps)
        assert json.dumps(summary)


# ----------------------------------------------------------------------
# Adaptive deadlines: rung-latency EWMAs tighten the watchdog
# ----------------------------------------------------------------------

class TestAdaptiveDeadlines:
    def test_ewma_update(self):
        supervisor = SweepSupervisor(SupervisorPolicy(ewma_alpha=0.5))
        supervisor.observe_latency("task", 10.0)
        assert supervisor.latency_ewma["task"] == 10.0
        supervisor.observe_latency("task", 20.0)
        assert supervisor.latency_ewma["task"] == 15.0
        supervisor.observe_latency("task", 0.0)  # non-positive: ignored
        assert supervisor.latency_ewma["task"] == 15.0

    def test_ladderless_deadline_uses_task_ewma(self):
        supervisor = SweepSupervisor(
            SupervisorPolicy(deadline_multiplier=3.0, min_deadline_s=1.0)
        )
        assert supervisor.task_deadline_s(None, 100.0) == 300.0
        supervisor.observe_latency("task", 2.0)
        assert supervisor.task_deadline_s(None, 100.0) == 6.0

    def test_ladder_deadline_uses_rung_ewma(self):
        supervisor = SweepSupervisor(
            SupervisorPolicy(deadline_multiplier=2.0, min_deadline_s=1.0)
        )
        ladder = default_ladder(10.0, retries=1)
        static = supervisor.task_deadline_s(ladder, 10.0)
        supervisor.observe_latency("sparse+warm", 1.0)
        adapted = supervisor.task_deadline_s(ladder, 10.0)
        # sparse+warm contributes 1.0s x 2 attempts instead of 10s x 2.
        assert adapted == static - 2.0 * (10.0 - 1.0) * 2

    def test_deadline_still_floors_at_minimum(self):
        supervisor = SweepSupervisor(
            SupervisorPolicy(deadline_multiplier=3.0, min_deadline_s=30.0)
        )
        supervisor.observe_latency("task", 0.001)
        assert supervisor.task_deadline_s(None, 100.0) == 30.0

    def test_max_deadline_clamps_derivation(self):
        supervisor = SweepSupervisor(
            SupervisorPolicy(
                deadline_multiplier=3.0, min_deadline_s=1.0, max_deadline_s=50.0
            )
        )
        assert supervisor.task_deadline_s(None, 100.0) == 50.0
        ladder = default_ladder(300.0, retries=1)
        assert supervisor.task_deadline_s(ladder, 300.0) == 50.0

    def test_explicit_deadline_ignores_observations(self):
        supervisor = SweepSupervisor(SupervisorPolicy(task_deadline_s=7.5))
        supervisor.observe_latency("task", 1.0)
        assert supervisor.task_deadline_s(None, 300.0) == 7.5

    def test_observe_report_feeds_latency_ewma(self):
        supervisor = SweepSupervisor()
        supervisor.observe_report({"events": [
            {"rung": "sparse+warm", "action": "accept",
             "reason": "", "elapsed_s": 2.0},
            {"rung": "model", "action": "demote",
             "reason": "boom", "elapsed_s": 4.0},
        ]})
        assert supervisor.latency_ewma["sparse+warm"] == 2.0
        assert supervisor.latency_ewma["model"] == 4.0

    def test_supervised_sweep_feeds_task_ewma(
        self, ring_context, ring_scenarios, ring_serial
    ):
        supervisor = SweepSupervisor(SupervisorPolicy(poll_interval_s=0.05))
        with SweepExecutor(max_workers=2) as executor:
            supervised = _supervised_sweep(
                ring_context, ring_scenarios, executor, supervisor
            )
        assert_sweeps_identical(ring_serial, supervised)
        # Ladderless sweep: solve wall-clocks feed the generic "task" key.
        assert supervisor.latency_ewma.get("task", 0.0) > 0.0


# ----------------------------------------------------------------------
# Half-open probe batching: bounded trials for the shm transport
# ----------------------------------------------------------------------

class TestProbeBatching:
    def test_probe_quota_states(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "t", threshold=1, cooldown_s=10.0, clock=clock, probe_batch=3
        )
        assert breaker.probe_quota() is None  # closed: unlimited
        breaker.record_failure()
        assert breaker.probe_quota() == 0  # open, still cooling
        clock.advance(10.0)
        assert breaker.probe_quota() == 3  # trial due...
        assert breaker.state == BreakerOpenState.OPEN  # ...but pure
        assert breaker.allow_request()
        assert breaker.state == BreakerOpenState.HALF_OPEN
        assert breaker.probe_quota() == 3

    def test_probe_batch_validated(self):
        with pytest.raises(ValueError, match="probe_batch"):
            CircuitBreaker("t", probe_batch=0)

    def test_transport_probe_quota_wired_to_policy(self):
        clock = FakeClock()
        supervisor = SweepSupervisor(
            SupervisorPolicy(
                transport_probe_batch=4,
                breaker_threshold=1,
                breaker_cooldown_s=5.0,
            ),
            clock=clock,
        )
        assert supervisor.transport_probe_quota() is None
        supervisor.observe_transport(False, "boom")
        assert supervisor.transport_probe_quota() == 0
        clock.advance(5.0)
        assert supervisor.transport_probe_quota() == 4
        # Rung breakers keep single-unit trials.
        for rung in BREAKER_RUNGS:
            assert supervisor.breakers[f"rung:{rung}"].probe_batch == 1

    def test_half_open_probe_round_closes_breaker(
        self, ring_context, ring_scenarios, ring_serial
    ):
        if not shm.shm_available():
            pytest.skip("no shared-memory transport on this host")
        supervisor = SweepSupervisor(SupervisorPolicy(
            poll_interval_s=0.05,
            breaker_threshold=1,
            breaker_cooldown_s=0.0,
            transport_probe_batch=1,
        ))
        supervisor.observe_transport(False, "injected for the trial")
        assert supervisor.breakers[TRANSPORT_BREAKER].state == BreakerOpenState.OPEN
        with SweepExecutor(max_workers=2) as executor:
            supervised = _supervised_sweep(
                ring_context, ring_scenarios, executor, supervisor
            )
        assert_sweeps_identical(ring_serial, supervised)
        # The probe batch crossed shm successfully and closed the breaker.
        assert supervisor.breakers[TRANSPORT_BREAKER].state == BreakerOpenState.CLOSED
