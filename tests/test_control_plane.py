"""Tests for the ControlPlane."""

from __future__ import annotations

import pytest

from repro.control.plane import ControlPlane
from repro.exceptions import CapacityError, ControlPlaneError
from repro.flows.demands import all_pairs_flows
from repro.topology.att import ATT_DOMAINS
from repro.topology.generators import grid_topology


@pytest.fixture(scope="module")
def grid():
    return grid_topology(2, 3)  # nodes 0..5


@pytest.fixture(scope="module")
def grid_plane(grid):
    return ControlPlane(grid, {0: (0, 1, 2), 5: (3, 4, 5)}, capacity=100)


class TestStructure:
    def test_controller_ids_sorted(self, grid_plane):
        assert grid_plane.controller_ids == (0, 5)

    def test_domain_lookup(self, grid_plane):
        assert grid_plane.domain(0) == (0, 1, 2)

    def test_controller_of(self, grid_plane):
        assert grid_plane.controller_of(4) == 5

    def test_unknown_lookups(self, grid_plane):
        with pytest.raises(ControlPlaneError):
            grid_plane.domain(9)
        with pytest.raises(ControlPlaneError):
            grid_plane.controller_of(99)
        with pytest.raises(ControlPlaneError):
            grid_plane.controller(9)

    def test_site_defaults_to_controller_id(self, grid_plane):
        assert grid_plane.controller(0).site == 0

    def test_explicit_sites(self, grid):
        plane = ControlPlane(
            grid, {0: (0, 1, 2), 5: (3, 4, 5)}, capacity=10, sites={0: 2, 5: 3}
        )
        assert plane.controller(0).site == 2

    def test_site_must_be_node(self, grid):
        with pytest.raises(ControlPlaneError, match="site"):
            ControlPlane(grid, {0: (0, 1, 2), 5: (3, 4, 5)}, capacity=10, sites={0: 99})

    def test_per_controller_capacity(self, grid):
        plane = ControlPlane(grid, {0: (0, 1, 2), 5: (3, 4, 5)}, capacity={0: 7, 5: 9})
        assert plane.controller(0).capacity == 7
        assert plane.controller(5).capacity == 9

    def test_missing_capacity_rejected(self, grid):
        with pytest.raises(ControlPlaneError, match="capacity"):
            ControlPlane(grid, {0: (0, 1, 2), 5: (3, 4, 5)}, capacity={0: 7})

    def test_invalid_partition_rejected(self, grid):
        with pytest.raises(Exception):
            ControlPlane(grid, {0: (0, 1)}, capacity=10)


class TestLoads:
    def test_domain_loads_sum_to_total_incidences(self, grid, grid_plane):
        flows = all_pairs_flows(grid, weight="hops")
        loads = grid_plane.domain_loads(flows)
        assert sum(loads.values()) == sum(len(f.path) for f in flows)

    def test_spare_capacity(self, grid, grid_plane):
        flows = all_pairs_flows(grid, weight="hops")
        loads = grid_plane.domain_loads(flows)
        spare = grid_plane.spare_capacity(flows)
        for controller in grid_plane.controller_ids:
            assert spare[controller] == 100 - loads[controller]

    def test_overload_strict_raises(self, grid):
        plane = ControlPlane(grid, {0: (0, 1, 2), 5: (3, 4, 5)}, capacity=5)
        flows = all_pairs_flows(grid, weight="hops")
        with pytest.raises(CapacityError, match="mis-provisioned"):
            plane.spare_capacity(flows)

    def test_overload_clamped_when_not_strict(self, grid):
        plane = ControlPlane(grid, {0: (0, 1, 2), 5: (3, 4, 5)}, capacity=5)
        flows = all_pairs_flows(grid, weight="hops")
        spare = plane.spare_capacity(flows, strict=False)
        assert all(v == 0 for v in spare.values())

    def test_att_paper_configuration(self, att):
        flows = all_pairs_flows(att, weight="hops")
        plane = ControlPlane(att, ATT_DOMAINS, capacity=500)
        spare = plane.spare_capacity(flows)
        # Paper total spare: 945; ours is within a few percent.
        assert sum(spare.values()) == pytest.approx(945, rel=0.05)
        assert all(v > 0 for v in spare.values())
