"""Checkpoint/resume tests: a killed sweep resumes bit-identically.

The interruption is produced by the fault injector: ``raise-error`` at
the ``sweep.checkpoint`` site fires *after* the Nth checkpoint write, so
the file on disk is exactly what a sweep killed mid-flight leaves
behind.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.control.failures import FailureScenario
from repro.exceptions import ChaosError, CheckpointError
from repro.experiments.scenarios import custom_context
from repro.perf.sweep import parallel_sweep
from repro.resilience import chaos
from repro.resilience.checkpoint import (
    SweepCheckpoint,
    solution_from_json,
    solution_to_json,
    sweep_fingerprint,
)
from repro.topology.generators import ring_topology

ALGORITHMS = ("optimal", "pm", "retroflow")


@pytest.fixture(scope="module")
def sweep_context():
    return custom_context(
        ring_topology(10, chords=5, seed=7),
        controller_sites=(0, 3, 7),
        capacity=160,
    )


@pytest.fixture(scope="module")
def sweep_scenarios():
    return tuple(FailureScenario(frozenset({c})) for c in (0, 3, 7))


@pytest.fixture(scope="module")
def uninterrupted(sweep_context, sweep_scenarios):
    return parallel_sweep(
        sweep_context, sweep_scenarios, ALGORITHMS,
        max_workers=1, optimal_time_limit_s=60.0,
    )


def assert_bit_identical(expected, actual):
    """Everything except wall clocks must match exactly (no tolerances)."""
    assert len(expected) == len(actual)
    for exp, act in zip(expected, actual):
        assert exp.scenario == act.scenario
        assert sorted(exp.solutions) == sorted(act.solutions)
        for name, exp_sol in exp.solutions.items():
            act_sol = act.solutions[name]
            assert exp_sol.algorithm == act_sol.algorithm
            assert exp_sol.mapping == act_sol.mapping
            assert exp_sol.sdn_pairs == act_sol.sdn_pairs
            assert exp_sol.pair_controller == act_sol.pair_controller
            assert exp_sol.load_override == act_sol.load_override
            assert exp_sol.extra_overhead_ms == act_sol.extra_overhead_ms
            assert exp_sol.feasible == act_sol.feasible
            assert exp_sol.meta == act_sol.meta
            exp_eval = dataclasses.asdict(exp.evaluations[name])
            act_eval = dataclasses.asdict(act.evaluations[name])
            exp_eval.pop("solve_time_s", None)
            act_eval.pop("solve_time_s", None)
            assert exp_eval == act_eval


class TestFingerprint:
    def test_deterministic(self):
        a = sweep_fingerprint(["(3,)", "(7,)"], ("optimal", "pm"), 300.0, "sparse")
        b = sweep_fingerprint(["(3,)", "(7,)"], ("optimal", "pm"), 300.0, "sparse")
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scenario_names": ["(3,)"]},
            {"algorithms": ("pm",)},
            {"optimal_time_limit_s": 10.0},
            {"optimal_compile": "model"},
        ],
    )
    def test_sensitive_to_identity(self, kwargs):
        base = dict(
            scenario_names=["(3,)", "(7,)"],
            algorithms=("optimal", "pm"),
            optimal_time_limit_s=300.0,
            optimal_compile="sparse",
        )
        assert sweep_fingerprint(**base) != sweep_fingerprint(**{**base, **kwargs})


class TestSolutionJson:
    def test_round_trip_is_exact(self, uninterrupted):
        for result in uninterrupted:
            for solution in result.solutions.values():
                payload = json.loads(json.dumps(solution_to_json(solution)))
                restored = solution_from_json(payload)
                assert restored.algorithm == solution.algorithm
                assert restored.mapping == solution.mapping
                assert restored.sdn_pairs == solution.sdn_pairs
                assert restored.pair_controller == solution.pair_controller
                assert restored.load_override == solution.load_override
                assert restored.solve_time_s == solution.solve_time_s
                assert restored.feasible == solution.feasible
                assert restored.meta == solution.meta


class TestCheckpointFile:
    def test_missing_file_loads_empty(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "missing.json", "abc")
        assert checkpoint.load() == {}

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text("not json{", encoding="utf-8")
        with pytest.raises(CheckpointError, match="unreadable"):
            SweepCheckpoint(path, "abc").load()

    def test_wrong_fingerprint_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        SweepCheckpoint(path, "fp-one").save({})
        with pytest.raises(CheckpointError, match="different sweep"):
            SweepCheckpoint(path, "fp-two").load()

    def test_clear_is_idempotent(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "cp.json", "abc")
        checkpoint.clear()
        checkpoint.save({})
        checkpoint.clear()
        assert not checkpoint.path.exists()


class TestResume:
    def test_interrupted_sweep_resumes_bit_identically(
        self, sweep_context, sweep_scenarios, uninterrupted, tmp_path
    ):
        path = tmp_path / "sweep-checkpoint.json"
        # Abort after the second checkpoint write: two scenarios persisted,
        # one still missing — exactly a sweep killed mid-flight.
        with chaos.inject(
            chaos.Fault("sweep.checkpoint", "raise-error", at_call=2)
        ):
            with pytest.raises(ChaosError):
                parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=1, optimal_time_limit_s=60.0,
                    checkpoint_path=path, checkpoint_every=1,
                )
        assert path.exists()
        persisted = json.loads(path.read_text(encoding="utf-8"))
        assert persisted["n_completed"] == 2

        resumed = parallel_sweep(
            sweep_context, sweep_scenarios, ALGORITHMS,
            max_workers=1, optimal_time_limit_s=60.0,
            checkpoint_path=path, checkpoint_every=1,
        )
        assert_bit_identical(uninterrupted, resumed)
        # The restored scenarios say where they came from.
        restored = [
            r for r in resumed
            if any(e.action == "restore" for e in r.degradation.events)
        ]
        assert len(restored) == 2
        # A completed sweep leaves no checkpoint behind.
        assert not path.exists()

    def test_resume_against_different_sweep_raises(
        self, sweep_context, sweep_scenarios, tmp_path
    ):
        path = tmp_path / "sweep-checkpoint.json"
        with chaos.inject(
            chaos.Fault("sweep.checkpoint", "raise-error", at_call=1)
        ):
            with pytest.raises(ChaosError):
                parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=1, optimal_time_limit_s=60.0,
                    checkpoint_path=path, checkpoint_every=1,
                )
        with pytest.raises(CheckpointError, match="different sweep"):
            parallel_sweep(
                sweep_context, sweep_scenarios, ("pm", "retroflow"),
                max_workers=1, checkpoint_path=path,
            )

    def test_fully_checkpointed_sweep_returns_without_solving(
        self, sweep_context, sweep_scenarios, uninterrupted, tmp_path
    ):
        path = tmp_path / "sweep-checkpoint.json"
        # Persist everything, aborting on the final checkpoint write.
        with chaos.inject(
            chaos.Fault("sweep.checkpoint", "raise-error", at_call=3)
        ):
            with pytest.raises(ChaosError):
                parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=1, optimal_time_limit_s=60.0,
                    checkpoint_path=path, checkpoint_every=1,
                )
        # Any solver call now would be a bug: every task is restorable.
        with chaos.inject(
            chaos.Fault("optimal.solve", "raise-error", count=None),
            chaos.Fault("sweep.task", "raise-error", count=None),
        ):
            resumed = parallel_sweep(
                sweep_context, sweep_scenarios, ALGORITHMS,
                max_workers=1, optimal_time_limit_s=60.0,
                checkpoint_path=path, checkpoint_every=1,
            )
        assert_bit_identical(uninterrupted, resumed)

    def test_checkpoint_works_with_pool(
        self, sweep_context, sweep_scenarios, uninterrupted, tmp_path
    ):
        path = tmp_path / "pool-checkpoint.json"
        results = parallel_sweep(
            sweep_context, sweep_scenarios, ALGORITHMS,
            max_workers=2, optimal_time_limit_s=60.0,
            checkpoint_path=path, checkpoint_every=1,
        )
        assert_bit_identical(uninterrupted, results)
        assert not path.exists()


class TestShmAndIncrementalResume:
    """Transport and chaining are not part of the checkpoint identity."""

    def test_interrupted_shm_incremental_sweep_resumes(
        self, sweep_context, sweep_scenarios, uninterrupted, tmp_path
    ):
        from repro.perf import shm

        path = tmp_path / "shm-checkpoint.json"
        with chaos.inject(
            chaos.Fault("sweep.checkpoint", "raise-error", at_call=1)
        ):
            with pytest.raises(ChaosError):
                parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=1, optimal_time_limit_s=60.0,
                    checkpoint_path=path, checkpoint_every=1,
                    transport="shm", incremental=True,
                )
        assert shm.active_segments() == ()
        resumed = parallel_sweep(
            sweep_context, sweep_scenarios, ALGORITHMS,
            max_workers=2, optimal_time_limit_s=60.0,
            checkpoint_path=path, checkpoint_every=1,
            transport="shm", incremental=True,
        )
        assert_bit_identical(uninterrupted, resumed)
        assert shm.active_segments() == ()
        assert not path.exists()

    def test_checkpoint_written_under_pickle_resumes_under_shm(
        self, sweep_context, sweep_scenarios, uninterrupted, tmp_path
    ):
        path = tmp_path / "cross-transport.json"
        with chaos.inject(
            chaos.Fault("sweep.checkpoint", "raise-error", at_call=1)
        ):
            with pytest.raises(ChaosError):
                parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=1, optimal_time_limit_s=60.0,
                    checkpoint_path=path, checkpoint_every=1,
                    transport="pickle",
                )
        resumed = parallel_sweep(
            sweep_context, sweep_scenarios, ALGORITHMS,
            max_workers=1, optimal_time_limit_s=60.0,
            checkpoint_path=path, checkpoint_every=1,
            transport="shm", incremental=True,
        )
        assert_bit_identical(uninterrupted, resumed)


class TestResultMetaRoundTrip:
    def test_meta_survives_checkpoint_round_trip(self, sweep_context, uninterrupted):
        from repro.resilience.checkpoint import result_from_json, result_to_json

        result = uninterrupted[0]
        result.meta["fanout"] = {"transport": "shm", "payload_bytes": 123}
        payload = json.loads(json.dumps(result_to_json(result)))
        restored = result_from_json(sweep_context, result.scenario, payload)
        assert restored.meta == result.meta

    def test_legacy_payload_without_meta_restores_empty(
        self, sweep_context, uninterrupted
    ):
        from repro.resilience.checkpoint import result_from_json, result_to_json

        result = uninterrupted[1]
        payload = result_to_json(result)
        payload.pop("meta", None)
        restored = result_from_json(sweep_context, result.scenario, payload)
        assert restored.meta == {}
