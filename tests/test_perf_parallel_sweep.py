"""Parallel sweep output must be identical to the serial sweep."""

from __future__ import annotations

from repro.experiments.runner import run_failure_sweep, run_failure_sweep_parallel
from repro.experiments.scenarios import custom_context
from repro.topology.generators import ring_topology

#: Heuristics only — the exact solver would dominate test wall clock.
FAST_ALGORITHMS = ("pm", "retroflow", "pg", "nearest")


def assert_sweeps_identical(serial, parallel):
    assert [r.name for r in serial] == [r.name for r in parallel]
    for s, p in zip(serial, parallel):
        assert list(s.solutions) == list(p.solutions)
        assert list(s.evaluations) == list(p.evaluations)
        for algorithm in s.solutions:
            ss, ps = s.solutions[algorithm], p.solutions[algorithm]
            assert ss.algorithm == ps.algorithm
            assert ss.mapping == ps.mapping
            assert ss.sdn_pairs == ps.sdn_pairs
            assert ss.pair_controller == ps.pair_controller
            assert ss.load_override == ps.load_override
            assert ss.extra_overhead_ms == ps.extra_overhead_ms
            assert ss.feasible == ps.feasible
            se, pe = s.evaluations[algorithm], p.evaluations[algorithm]
            assert se.programmability == pe.programmability
            assert se.least_programmability == pe.least_programmability
            assert se.total_programmability == pe.total_programmability
            assert se.recovered_flows == pe.recovered_flows
            assert se.controller_load == pe.controller_load
            assert se.total_delay_ms == pe.total_delay_ms
            assert se.per_flow_overhead_ms == pe.per_flow_overhead_ms
            assert se.objective == pe.objective


class TestAttEquivalence:
    def test_parallel_equals_serial_one_failure(self, att_context):
        serial = run_failure_sweep(att_context, 1, FAST_ALGORITHMS)
        parallel = run_failure_sweep_parallel(
            att_context, 1, FAST_ALGORITHMS, max_workers=4
        )
        assert_sweeps_identical(serial, parallel)

    def test_parallel_equals_serial_two_failures(self, att_context):
        serial = run_failure_sweep(att_context, 2, FAST_ALGORITHMS)
        parallel = run_failure_sweep_parallel(
            att_context, 2, FAST_ALGORITHMS, max_workers=2
        )
        assert_sweeps_identical(serial, parallel)


class TestDegradation:
    def test_max_workers_one_is_serial(self, small_context):
        serial = run_failure_sweep(small_context, 1, FAST_ALGORITHMS)
        degraded = run_failure_sweep_parallel(
            small_context, 1, FAST_ALGORITHMS, max_workers=1
        )
        assert_sweeps_identical(serial, degraded)

    def test_unpicklable_context_falls_back_to_serial(self):
        topology = ring_topology(10, chords=5, seed=7)
        context = custom_context(topology, controller_sites=(0, 3, 7), capacity=160)
        # Lambdas do not pickle; the sweep must detect this and go serial.
        context.delay_model._poison = lambda: None
        serial = run_failure_sweep(context, 1, FAST_ALGORITHMS)
        parallel = run_failure_sweep_parallel(
            context, 1, FAST_ALGORITHMS, max_workers=4
        )
        assert_sweeps_identical(serial, parallel)

    def test_parallel_includes_optimal_consistently(self, small_context):
        """The exact solver also round-trips through the pool unchanged."""
        algorithms = ("optimal", "pm")
        serial = run_failure_sweep(small_context, 1, algorithms, 60.0)
        parallel = run_failure_sweep_parallel(
            small_context, 1, algorithms, 60.0, max_workers=2
        )
        assert_sweeps_identical(serial, parallel)

    def test_optimal_compile_routes_agree(self, small_context):
        """Sweeps solving Optimal via sparse and DSL routes agree.

        Either route may return a different *tie-breaking* among alternate
        optima, so solutions are compared on verdicts and objective values
        (bit-identical canonical objectives), not on the chosen mapping.
        """
        algorithms = ("optimal", "pm")
        sparse = run_failure_sweep(
            small_context, 1, algorithms, 60.0, optimal_compile="sparse"
        )
        model = run_failure_sweep(
            small_context, 1, algorithms, 60.0, optimal_compile="model"
        )
        assert [r.name for r in model] == [r.name for r in sparse]
        for m, s in zip(model, sparse):
            mo, so = m.solutions["optimal"], s.solutions["optimal"]
            assert mo.feasible == so.feasible
            if mo.feasible:
                assert mo.meta["objective"] == so.meta["objective"]
                me, se = m.evaluations["optimal"], s.evaluations["optimal"]
                assert me.least_programmability == se.least_programmability
                assert me.total_programmability == se.total_programmability
                assert me.objective == se.objective
            # PM is deterministic and route-independent.
            assert m.solutions["pm"].mapping == s.solutions["pm"].mapping
            assert m.solutions["pm"].sdn_pairs == s.solutions["pm"].sdn_pairs


class TestSmallSweepHeuristic:
    def test_small_heuristic_sweep_stays_serial(self, small_context, monkeypatch):
        """Few heuristic-only tasks must not pay for a process pool."""
        from repro.perf import sweep as sweep_module

        def forbidden(*args, **kwargs):
            raise AssertionError("pool must not start for a small heuristic sweep")

        monkeypatch.setattr(sweep_module, "ProcessPoolExecutor", forbidden)
        serial = run_failure_sweep(small_context, 1, FAST_ALGORITHMS)
        parallel = run_failure_sweep_parallel(
            small_context, 1, FAST_ALGORITHMS, max_workers=4
        )
        assert_sweeps_identical(serial, parallel)

    def test_min_parallel_tasks_zero_forces_pool(self, small_context):
        """The override disables the serial heuristic without changing output."""
        serial = run_failure_sweep(small_context, 1, FAST_ALGORITHMS)
        forced = run_failure_sweep_parallel(
            small_context, 1, FAST_ALGORITHMS, max_workers=2, min_parallel_tasks=0
        )
        assert_sweeps_identical(serial, forced)

    def test_heavy_algorithm_disables_heuristic(self, small_context, monkeypatch):
        """An exact solver in the mix goes parallel even on small sweeps."""
        from repro.perf import sweep as sweep_module

        used = {"pool": False}
        real_pool = sweep_module.ProcessPoolExecutor

        def spy(*args, **kwargs):
            used["pool"] = True
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(sweep_module, "ProcessPoolExecutor", spy)
        run_failure_sweep_parallel(
            small_context, 1, ("optimal", "pm"), 60.0, max_workers=2
        )
        assert used["pool"]
