"""Parallel sweep output must be identical to the serial sweep."""

from __future__ import annotations

from repro.experiments.runner import run_failure_sweep, run_failure_sweep_parallel
from repro.experiments.scenarios import custom_context
from repro.topology.generators import ring_topology

#: Heuristics only — the exact solver would dominate test wall clock.
FAST_ALGORITHMS = ("pm", "retroflow", "pg", "nearest")


def assert_sweeps_identical(serial, parallel):
    assert [r.name for r in serial] == [r.name for r in parallel]
    for s, p in zip(serial, parallel):
        assert list(s.solutions) == list(p.solutions)
        assert list(s.evaluations) == list(p.evaluations)
        for algorithm in s.solutions:
            ss, ps = s.solutions[algorithm], p.solutions[algorithm]
            assert ss.algorithm == ps.algorithm
            assert ss.mapping == ps.mapping
            assert ss.sdn_pairs == ps.sdn_pairs
            assert ss.pair_controller == ps.pair_controller
            assert ss.load_override == ps.load_override
            assert ss.extra_overhead_ms == ps.extra_overhead_ms
            assert ss.feasible == ps.feasible
            se, pe = s.evaluations[algorithm], p.evaluations[algorithm]
            assert se.programmability == pe.programmability
            assert se.least_programmability == pe.least_programmability
            assert se.total_programmability == pe.total_programmability
            assert se.recovered_flows == pe.recovered_flows
            assert se.controller_load == pe.controller_load
            assert se.total_delay_ms == pe.total_delay_ms
            assert se.per_flow_overhead_ms == pe.per_flow_overhead_ms
            assert se.objective == pe.objective


class TestAttEquivalence:
    def test_parallel_equals_serial_one_failure(self, att_context):
        serial = run_failure_sweep(att_context, 1, FAST_ALGORITHMS)
        parallel = run_failure_sweep_parallel(
            att_context, 1, FAST_ALGORITHMS, max_workers=4
        )
        assert_sweeps_identical(serial, parallel)

    def test_parallel_equals_serial_two_failures(self, att_context):
        serial = run_failure_sweep(att_context, 2, FAST_ALGORITHMS)
        parallel = run_failure_sweep_parallel(
            att_context, 2, FAST_ALGORITHMS, max_workers=2
        )
        assert_sweeps_identical(serial, parallel)


class TestDegradation:
    def test_max_workers_one_is_serial(self, small_context):
        serial = run_failure_sweep(small_context, 1, FAST_ALGORITHMS)
        degraded = run_failure_sweep_parallel(
            small_context, 1, FAST_ALGORITHMS, max_workers=1
        )
        assert_sweeps_identical(serial, degraded)

    def test_unpicklable_context_falls_back_to_serial(self):
        topology = ring_topology(10, chords=5, seed=7)
        context = custom_context(topology, controller_sites=(0, 3, 7), capacity=160)
        # Lambdas do not pickle; the sweep must detect this and go serial.
        context.delay_model._poison = lambda: None
        serial = run_failure_sweep(context, 1, FAST_ALGORITHMS)
        parallel = run_failure_sweep_parallel(
            context, 1, FAST_ALGORITHMS, max_workers=4
        )
        assert_sweeps_identical(serial, parallel)

    def test_parallel_includes_optimal_consistently(self, small_context):
        """The exact solver also round-trips through the pool unchanged."""
        algorithms = ("optimal", "pm")
        serial = run_failure_sweep(small_context, 1, algorithms, 60.0)
        parallel = run_failure_sweep_parallel(
            small_context, 1, algorithms, 60.0, max_workers=2
        )
        assert_sweeps_identical(serial, parallel)
