"""Tests for domain partitioning."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.generators import grid_topology, ring_topology
from repro.topology.partition import (
    balanced_partition,
    nearest_site_partition,
    validate_partition,
)


class TestValidatePartition:
    def test_valid_partition_passes(self, att):
        from repro.topology.att import ATT_DOMAINS

        validate_partition(att, ATT_DOMAINS)

    def test_missing_node_detected(self, att):
        domains = {2: tuple(range(24))}  # node 24 missing
        with pytest.raises(TopologyError, match="not covered"):
            validate_partition(att, domains)

    def test_double_assignment_detected(self, att):
        domains = {2: tuple(range(25)), 5: (0,)}
        with pytest.raises(TopologyError, match="appears in domains"):
            validate_partition(att, domains)

    def test_unknown_node_detected(self, att):
        domains = {2: tuple(range(25)) + (99,)}
        with pytest.raises(TopologyError, match="unknown node"):
            validate_partition(att, domains)

    def test_empty_domain_detected(self, att):
        domains = {2: tuple(range(25)), 5: ()}
        with pytest.raises(TopologyError, match="empty domain"):
            validate_partition(att, domains)


class TestNearestSitePartition:
    def test_covers_all_nodes(self):
        topo = grid_topology(4, 5)
        domains = nearest_site_partition(topo, (0, 19))
        assert sum(len(m) for m in domains.values()) == topo.n_nodes

    def test_sites_own_themselves(self):
        topo = grid_topology(4, 5)
        domains = nearest_site_partition(topo, (0, 19))
        assert 0 in domains[0]
        assert 19 in domains[19]

    def test_geographic_coherence(self):
        # On a grid, the two corners split the grid into halves.
        topo = grid_topology(3, 6)
        domains = nearest_site_partition(topo, (0, 17))
        assert abs(len(domains[0]) - len(domains[17])) <= 4

    def test_duplicate_sites_rejected(self):
        topo = grid_topology(2, 3)
        with pytest.raises(TopologyError, match="duplicate"):
            nearest_site_partition(topo, (0, 0))

    def test_unknown_site_rejected(self):
        topo = grid_topology(2, 3)
        with pytest.raises(TopologyError, match="not a topology node"):
            nearest_site_partition(topo, (0, 99))

    def test_no_sites_rejected(self):
        topo = grid_topology(2, 3)
        with pytest.raises(TopologyError):
            nearest_site_partition(topo, ())


class TestBalancedPartition:
    def test_respects_cap(self):
        topo = ring_topology(12, seed=1)
        domains = balanced_partition(topo, (0, 6), max_domain_size=6)
        assert all(len(m) <= 6 for m in domains.values())
        validate_partition(topo, domains)

    def test_default_cap_allows_imbalance_of_one(self):
        topo = ring_topology(10, seed=2)
        domains = balanced_partition(topo, (0, 5))
        assert all(len(m) <= 6 for m in domains.values())

    def test_cap_too_small_rejected(self):
        topo = ring_topology(10, seed=1)
        with pytest.raises(TopologyError, match="cannot hold"):
            balanced_partition(topo, (0, 5), max_domain_size=4)

    def test_duplicate_sites_rejected(self):
        topo = ring_topology(6, seed=1)
        with pytest.raises(TopologyError, match="duplicate"):
            balanced_partition(topo, (0, 0))
