"""Tests for the GML writer and the data/att.gml asset."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.topology.gml_writer import save_gml, to_gml
from repro.topology.generators import grid_topology
from repro.topology.zoo import loads_zoo_topology

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRoundTrip:
    def test_att_round_trips(self, att):
        loaded = loads_zoo_topology(to_gml(att))
        assert loaded.name == att.name
        assert loaded.nodes == att.nodes
        assert loaded.edges() == att.edges()
        for node in att.nodes:
            assert loaded.label(node) == att.label(node)
            assert loaded.geo(node).latitude == pytest.approx(att.geo(node).latitude)
            assert loaded.geo(node).longitude == pytest.approx(att.geo(node).longitude)

    def test_grid_round_trips(self):
        grid = grid_topology(3, 4)
        loaded = loads_zoo_topology(to_gml(grid))
        assert loaded.n_nodes == 12
        assert loaded.edges() == grid.edges()

    def test_labels_with_quotes_escaped(self, att):
        from repro.geo import GeoPoint
        from repro.topology.graph import Topology

        topo = Topology(
            'weird "name"',
            {0: ('node "a"', GeoPoint(1, 2)), 1: ("b", GeoPoint(3, 4))},
            [(0, 1)],
        )
        loaded = loads_zoo_topology(to_gml(topo))
        assert loaded.name == 'weird "name"'
        assert loaded.label(0) == 'node "a"'

    def test_save_to_disk(self, att, tmp_path):
        path = tmp_path / "att.gml"
        save_gml(att, path)
        loaded = loads_zoo_topology(path.read_text())
        assert loaded.n_nodes == 25


class TestDataAsset:
    def test_shipped_att_gml_matches_embedded(self, att):
        """data/att.gml is the canonical file form of the embedded ATT."""
        asset = REPO_ROOT / "data" / "att.gml"
        assert asset.exists(), "data/att.gml asset missing"
        loaded = loads_zoo_topology(asset.read_text())
        assert loaded.nodes == att.nodes
        assert loaded.edges() == att.edges()
        assert loaded.label(13) == "Dallas"
