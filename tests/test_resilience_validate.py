"""Tests for the independent solution validator (repro.resilience.validate).

Two layers: unit tests that hand-craft one violation per constraint
group, and a hypothesis property test asserting that *every solver
route* produces solutions the validator accepts on random small Waxman
instances — the validator must never reject honest output.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import get_algorithm
from repro.control.failures import FailureScenario
from repro.exceptions import ValidationError
from repro.experiments.scenarios import custom_context
from repro.fmssm.optimal import solve_optimal
from repro.fmssm.solution import RecoverySolution
from repro.pm.algorithm import solve_pm
from repro.resilience.validate import check_solution, validate_solution
from repro.topology.generators import waxman_topology

SETTINGS = settings(max_examples=10, deadline=None)


def _replace_instance(instance, **changes):
    """dataclasses.replace for FMSSMInstance (derived fields rebuilt)."""
    fields = {
        f.name: getattr(instance, f.name)
        for f in dataclasses.fields(instance)
        if f.init
    }
    fields.update(changes)
    return type(instance)(**fields)


class TestViolations:
    """Each constraint group flags exactly the defect it owns."""

    def test_honest_solution_passes(self, small_instance):
        solution = solve_pm(small_instance, enforce_delay=True)
        report = validate_solution(small_instance, solution)
        assert report.ok, report.summary()
        assert "eq3-capacity" in report.checked

    def test_inactive_controller_mapping(self, small_instance):
        solution = RecoverySolution(
            algorithm="forged",
            mapping={small_instance.switches[0]: 999},
        )
        report = validate_solution(small_instance, solution)
        assert any(v.constraint == "eq2-mapping" for v in report.violations)

    def test_non_offline_switch_mapping(self, small_instance):
        solution = RecoverySolution(
            algorithm="forged",
            mapping={-1: small_instance.controllers[0]},
        )
        report = validate_solution(small_instance, solution)
        assert any(v.constraint == "eq2-mapping" for v in report.violations)

    def test_non_programmable_pair(self, small_instance):
        switch = small_instance.switches[0]
        controller = small_instance.controllers[0]
        solution = RecoverySolution(
            algorithm="forged",
            mapping={switch: controller},
            sdn_pairs={(switch, (123456, 654321))},
        )
        report = validate_solution(small_instance, solution)
        assert any(v.constraint == "eq1-pairs" for v in report.violations)

    def test_capacity_violation(self, small_instance):
        solution = solve_pm(small_instance, enforce_delay=True)
        starved = _replace_instance(
            small_instance,
            spare={c: 0 for c in small_instance.controllers},
        )
        if not solution.active_pairs():
            pytest.skip("PM recovered nothing on this instance")
        report = validate_solution(starved, solution)
        assert any(v.constraint == "eq3-capacity" for v in report.violations)

    def test_load_override_checked_against_capacity(self, small_instance):
        controller = small_instance.controllers[0]
        solution = RecoverySolution(
            algorithm="forged",
            mapping={},
            load_override={controller: small_instance.spare[controller] + 1},
        )
        report = validate_solution(small_instance, solution)
        assert any(v.constraint == "eq3-capacity" for v in report.violations)

    def test_full_recovery_shortfall(self, small_instance):
        empty = RecoverySolution(algorithm="forged", mapping={}, sdn_pairs=set())
        report = validate_solution(
            small_instance, empty, require_full_recovery=True
        )
        if small_instance.recoverable_flows:
            assert any(v.constraint == "eq4-least" for v in report.violations)

    def test_objective_cross_check(self, small_instance):
        solution = solve_pm(small_instance, enforce_delay=True)
        solution.meta["objective"] = 1e9
        report = validate_solution(small_instance, solution)
        assert any(v.constraint == "eq4-least" for v in report.violations)

    def test_delay_violation(self, small_instance):
        solution = solve_pm(small_instance, enforce_delay=True)
        if not solution.active_pairs():
            pytest.skip("PM recovered nothing on this instance")
        squeezed = _replace_instance(small_instance, ideal_delay_ms=0.0)
        report = validate_solution(squeezed, solution)
        assert any(v.constraint == "eq5-delay" for v in report.violations)
        report = validate_solution(squeezed, solution, enforce_delay=False)
        assert report.ok

    def test_infeasible_solution_validates_when_empty(self, small_instance):
        empty = RecoverySolution(algorithm="optimal", feasible=False)
        assert validate_solution(small_instance, empty).ok
        lying = RecoverySolution(
            algorithm="optimal",
            feasible=False,
            mapping={small_instance.switches[0]: small_instance.controllers[0]},
        )
        assert not validate_solution(small_instance, lying).ok

    def test_check_solution_raises_with_report(self, small_instance):
        solution = RecoverySolution(algorithm="forged", mapping={-1: 999})
        with pytest.raises(ValidationError) as err:
            check_solution(small_instance, solution)
        assert err.value.report is not None
        assert not err.value.report.ok


def _waxman_instance(n, seed, fail_index):
    topology = waxman_topology(n, seed=seed)
    sites = (0, n // 3, (2 * n) // 3)
    context = custom_context(topology, controller_sites=sites, capacity=10_000)
    scenario = FailureScenario(frozenset({sites[fail_index]}))
    return context.instance(scenario)


class TestEveryRoutePasses:
    """Property: honest solver output always passes the validator."""

    @SETTINGS
    @given(
        n=st.integers(min_value=9, max_value=12),
        seed=st.integers(min_value=0, max_value=40),
        fail_index=st.integers(min_value=0, max_value=2),
    )
    def test_heuristic_routes(self, n, seed, fail_index):
        instance = _waxman_instance(n, seed, fail_index)
        for name in ("pm", "retroflow", "pg"):
            solution = get_algorithm(name)(instance)
            # Flow-level baselines may trade the delay bound; capacity and
            # structure must hold for everyone.
            report = validate_solution(instance, solution, enforce_delay=False)
            assert report.ok, f"{name}: {report.summary()}"

    @SETTINGS
    @given(
        n=st.integers(min_value=9, max_value=11),
        seed=st.integers(min_value=0, max_value=40),
        fail_index=st.integers(min_value=0, max_value=2),
    )
    def test_exact_routes(self, n, seed, fail_index):
        instance = _waxman_instance(n, seed, fail_index)
        for kwargs in (
            {"compile": "sparse", "warm_start": "pm"},
            {"solver": "bnb", "compile": "sparse", "warm_start": "pm"},
        ):
            # validate=True (the default) means solve_optimal itself raises
            # ValidationError if its output were rejected; re-check here to
            # assert the report is clean under the strict delay bound.
            solution = solve_optimal(instance, time_limit_s=30.0, **kwargs)
            if solution.feasible:
                report = validate_solution(instance, solution, enforce_delay=True)
                assert report.ok, f"{kwargs}: {report.summary()}"

    def test_model_route_passes(self, small_instance):
        solution = solve_optimal(
            small_instance, time_limit_s=30.0, compile="model", warm_start=None
        )
        assert validate_solution(small_instance, solution).ok

    def test_pm_respects_delay_bound(self, small_instance):
        solution = solve_pm(small_instance, enforce_delay=True)
        assert validate_solution(small_instance, solution, enforce_delay=True).ok
