"""Tests for the Topology Zoo GML parser."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.topology.zoo import loads_zoo_topology, parse_gml

SAMPLE = """
# A comment
graph [
  Network "TestNet"
  node [
    id 0
    label "Alpha"
    Latitude 40.0
    Longitude -74.0
  ]
  node [
    id 1
    label "Beta"
    Latitude 41.0
    Longitude -75.0
  ]
  node [
    id 2
    label "Gamma"
    Latitude 42.5
    Longitude -76.25
  ]
  edge [ source 0 target 1 ]
  edge [ source 1 target 2 ]
  edge [ source 0 target 2 ]
]
"""


class TestParseGml:
    def test_nested_records(self):
        root = parse_gml(SAMPLE)
        graph = root.get("graph")
        assert graph is not None
        assert graph.get("Network") == "TestNet"
        assert len(graph.get_all("node")) == 3
        assert len(graph.get_all("edge")) == 3

    def test_numbers_parsed_as_numbers(self):
        root = parse_gml(SAMPLE)
        node = root.get("graph").get_all("node")[0]
        assert node.get("id") == 0
        assert node.get("Latitude") == pytest.approx(40.0)

    def test_string_escapes(self):
        root = parse_gml('graph [ label "a \\"quoted\\" name" ]')
        assert root.get("graph").get("label") == 'a "quoted" name'

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_gml("graph [ node ] extra ]]")

    def test_dangling_key_raises(self):
        with pytest.raises(ParseError, match="dangling"):
            parse_gml("graph [ id ]" .replace("]", ""))

    def test_contains(self):
        root = parse_gml(SAMPLE)
        assert "graph" in root
        assert "nonexistent" not in root


class TestLoadsZooTopology:
    def test_full_topology(self):
        topo = loads_zoo_topology(SAMPLE)
        assert topo.name == "TestNet"
        assert topo.n_nodes == 3
        assert topo.n_links == 3
        assert topo.label(0) == "Alpha"

    def test_name_override(self):
        topo = loads_zoo_topology(SAMPLE, name="custom")
        assert topo.name == "custom"

    def test_missing_geo_dropped(self):
        text = SAMPLE.replace("    Latitude 42.5\n    Longitude -76.25\n", "")
        topo = loads_zoo_topology(text)
        assert topo.n_nodes == 2
        assert topo.n_links == 1  # edges touching the dropped node removed

    def test_missing_geo_error_mode(self):
        text = SAMPLE.replace("    Latitude 42.5\n    Longitude -76.25\n", "")
        with pytest.raises(ParseError, match="Latitude"):
            loads_zoo_topology(text, on_missing_geo="error")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="on_missing_geo"):
            loads_zoo_topology(SAMPLE, on_missing_geo="ignore")

    def test_self_loop_edges_skipped(self):
        text = SAMPLE.replace(
            "edge [ source 0 target 1 ]",
            "edge [ source 0 target 0 ]\n  edge [ source 0 target 1 ]",
        )
        topo = loads_zoo_topology(text)
        assert topo.n_links == 3

    def test_duplicate_edges_deduplicated(self):
        text = SAMPLE + ""  # duplicate an edge inside the graph record
        text = text.replace(
            "edge [ source 0 target 1 ]",
            "edge [ source 0 target 1 ]\n  edge [ source 1 target 0 ]",
        )
        topo = loads_zoo_topology(text)
        assert topo.n_links == 3

    def test_edge_to_unknown_node_raises(self):
        text = SAMPLE.replace(
            "edge [ source 0 target 2 ]", "edge [ source 0 target 9 ]"
        )
        with pytest.raises(ParseError, match="unknown node"):
            loads_zoo_topology(text)

    def test_no_graph_record_raises(self):
        with pytest.raises(ParseError, match="graph"):
            loads_zoo_topology("node [ id 0 ]")

    def test_load_from_disk(self, tmp_path):
        from repro.topology.zoo import load_zoo_topology

        path = tmp_path / "net.gml"
        path.write_text(SAMPLE, encoding="utf-8")
        assert load_zoo_topology(path).n_nodes == 3
