"""Tests for the ProgrammabilityModel (beta, p, p̄)."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError
from repro.flows.demands import all_pairs_flows
from repro.flows.flow import Flow
from repro.routing.path_count import LoopFreeAlternateCounter
from repro.routing.programmability import ProgrammabilityModel
from repro.topology.generators import grid_topology, star_topology


@pytest.fixture(scope="module")
def grid_model():
    grid = grid_topology(3, 3)
    flows = all_pairs_flows(grid, weight="hops")
    return ProgrammabilityModel(LoopFreeAlternateCounter(grid, slack=1), flows)


class TestCoefficients:
    def test_p_zero_off_path(self, grid_model):
        flow = grid_model.flow((0, 8))
        assert grid_model.p(flow, 99 if 99 in flow.path else 7 if 7 not in flow.path else 5) == 0 or True
        off_path = next(n for n in range(9) if n not in flow.transit_switches)
        assert grid_model.p(flow, off_path) == 0

    def test_p_zero_at_destination(self, grid_model):
        flow = grid_model.flow((0, 8))
        assert grid_model.p(flow, 8) == 0

    def test_beta_requires_two_paths(self, grid_model):
        flow = grid_model.flow((0, 8))
        # Corner 0 has 2 loop-free next hops toward 8 -> beta = 1.
        assert grid_model.beta(flow, 0) == 1

    def test_pbar_is_beta_times_p(self, grid_model):
        flow = grid_model.flow((0, 8))
        for switch in flow.transit_switches:
            p = grid_model.p(flow, switch)
            expected = p if p >= 2 else 0
            assert grid_model.pbar(flow, switch) == expected

    def test_single_path_switch_not_programmable(self):
        star = star_topology(4)
        flows = all_pairs_flows(star, weight="hops")
        model = ProgrammabilityModel(LoopFreeAlternateCounter(star, slack=3), flows)
        flow = model.flow((1, 2))
        # Leaf 1 has only the hub as next hop: beta = 0 everywhere.
        assert model.beta(flow, 1) == 0
        assert model.max_programmability(flow) == 0


class TestAggregates:
    def test_programmable_switches_subset_of_transit(self, grid_model):
        flow = grid_model.flow((0, 8))
        programmable = grid_model.programmable_switches(flow)
        assert set(programmable) <= set(flow.transit_switches)

    def test_max_programmability_is_sum(self, grid_model):
        flow = grid_model.flow((0, 8))
        total = sum(grid_model.pbar(flow, s) for s in flow.transit_switches)
        assert grid_model.max_programmability(flow) == total

    def test_flows_programmable_at(self, grid_model):
        flows = grid_model.flows_programmable_at(0)
        assert all(grid_model.beta(f, 0) == 1 for f in flows)
        # Flows not in the list must have beta 0 at the switch.
        listed = {f.flow_id for f in flows}
        for f in grid_model.flows:
            if f.flow_id not in listed:
                assert grid_model.beta(f, 0) == 0

    def test_flow_lookup_unknown(self, grid_model):
        with pytest.raises(FlowError):
            grid_model.flow((123, 456))

    def test_duplicate_flows_rejected(self):
        grid = grid_topology(2, 2)
        flow = Flow(0, 1, (0, 1))
        with pytest.raises(FlowError, match="duplicate"):
            ProgrammabilityModel(
                LoopFreeAlternateCounter(grid), [flow, Flow(0, 1, (0, 1))]
            )

    def test_att_least_programmable_pairs_exist(self, att_context):
        # The paper notes flows whose programmability is capped at 2 by
        # short paths; the default model must contain such flows.
        model = att_context.programmability
        values = [
            model.pbar(f, s)
            for f in model.flows
            for s in f.transit_switches
            if model.pbar(f, s)
        ]
        assert min(values) == 2
