"""End-to-end checks of the paper's qualitative claims (Section VI).

These tests run the actual experiment pipeline on the default ATT
context and assert the *shape* of the paper's results: who wins, where
the crossovers are, and which cases are tight.  Optimal runs are limited
to a few scenarios to keep the suite fast; the full sweeps live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario
from repro.experiments.runner import run_failure_sweep, run_scenario
from repro.fmssm.evaluation import evaluate_solution
from repro.fmssm.optimal import solve_optimal
from repro.pm.algorithm import solve_pm

FAST = ("retroflow", "pg", "pm")


@pytest.fixture(scope="module")
def two_failure_results(att_context):
    return run_failure_sweep(att_context, 2, FAST)


@pytest.fixture(scope="module")
def three_failure_results(att_context):
    return run_failure_sweep(att_context, 3, FAST)


class TestOneFailure:
    """Fig. 4: under one failure every algorithm recovers everything."""

    @pytest.fixture(scope="class")
    def results(self, att_context):
        return run_failure_sweep(att_context, 1, FAST)

    def test_all_algorithms_full_recovery(self, results):
        for result in results:
            for name in FAST:
                assert result.evaluations[name].recovery_fraction == pytest.approx(1.0)

    def test_equal_least_programmability(self, results):
        for result in results:
            values = {result.evaluations[name].least_programmability for name in FAST}
            assert len(values) == 1

    def test_pg_charged_middle_layer_penalty(self, results):
        """Fig. 4(d): PG pays the FlowVisor middle-layer penalty on top
        of propagation.

        Deviation note (see EXPERIMENTS.md): the paper reports PG's
        overhead as uniformly worst, which implies sub-millisecond
        propagation overheads; at continental propagation scales PG's
        per-pair nearest-controller placement can offset the 0.48 ms
        penalty, so we assert the penalty is charged rather than strict
        dominance.
        """
        for result in results:
            pg_eval = result.evaluations["pg"]
            propagation_only = (
                pg_eval.total_delay_ms / pg_eval.recovered_flows
                if pg_eval.recovered_flows
                else 0.0
            )
            assert pg_eval.per_flow_overhead_ms == pytest.approx(
                propagation_only + 0.48
            )


class TestTwoFailures:
    """Fig. 5 claims."""

    def test_pm_and_pg_full_recovery(self, two_failure_results):
        for result in two_failure_results:
            assert result.evaluations["pm"].recovery_fraction == pytest.approx(1.0)
            assert result.evaluations["pg"].recovery_fraction == pytest.approx(1.0)

    def test_retroflow_partial_recovery(self, two_failure_results):
        """RetroFlow recovers 71-99 % of flows in the paper; the shape —
        always below 100 %, never catastrophic — must hold."""
        fractions = [
            r.evaluations["retroflow"].recovery_fraction for r in two_failure_results
        ]
        assert all(0.5 <= f < 1.0 for f in fractions)

    def test_retroflow_least_programmability_zero(self, two_failure_results):
        for result in two_failure_results:
            assert result.evaluations["retroflow"].least_programmability == 0

    def test_pm_balanced_at_least_two(self, two_failure_results):
        """The least programmability is limited to 2 by short-path flows
        but never below (balanced recovery)."""
        for result in two_failure_results:
            assert result.evaluations["pm"].least_programmability >= 2

    def test_pm_beats_retroflow_totals(self, two_failure_results):
        """PM's total programmability dominates RetroFlow's: strictly in
        nearly every case, never materially below, >10 % ahead on
        average (the paper reports 105-315 %)."""
        ratios = [
            r.relative_total_programmability("retroflow")["pm"]
            for r in two_failure_results
        ]
        assert min(ratios) >= 0.95
        assert sum(1 for r in ratios if r > 1.0) >= len(ratios) - 1
        assert sum(ratios) / len(ratios) > 1.1

    def test_case_13_20_is_the_flagship(self, two_failure_results, att_context):
        """The paper's 315 % case: (13, 20) maximizes PM's advantage
        because switch 13 cannot be mapped whole."""
        ratios = {
            r.name: r.relative_total_programmability("retroflow")["pm"]
            for r in two_failure_results
        }
        assert max(ratios, key=ratios.get) == "(13, 20)"
        instance = att_context.instance(FailureScenario(frozenset({13, 20})))
        assert instance.gamma[13] > max(instance.spare.values())

    def test_pm_close_to_pg_totals(self, two_failure_results):
        """Fig. 5(b): PM performs nearly the same as PG."""
        for result in two_failure_results:
            pm = result.evaluations["pm"].total_programmability
            pg = result.evaluations["pg"].total_programmability
            assert pm >= 0.9 * pg

    def test_optimal_on_flagship_case(self, att_context):
        result = run_scenario(
            att_context,
            FailureScenario(frozenset({13, 20})),
            ("optimal", "pm"),
            optimal_time_limit_s=300.0,
        )
        optimal = result.evaluations["optimal"]
        pm = result.evaluations["pm"]
        assert optimal.feasible
        assert optimal.least_programmability == pm.least_programmability == 2
        # Optimal is capped by the delay budget G; PM (like the paper's)
        # is not, so PM's raw total may exceed Optimal's.
        assert pm.total_programmability >= 0.9 * optimal.total_programmability


class TestThreeFailures:
    """Fig. 6 claims."""

    def test_retroflow_degrades_further(self, three_failure_results):
        """Paper: RetroFlow recovers only 25-85 % under three failures."""
        fractions = [
            r.evaluations["retroflow"].recovery_fraction
            for r in three_failure_results
        ]
        assert max(fractions) < 0.9
        assert min(fractions) < 0.6

    def test_pm_recovers_most_flows(self, three_failure_results):
        """Paper: PM recovers 100 % in most cases, 60-92 % in the rest."""
        fractions = [
            r.evaluations["pm"].recovery_fraction for r in three_failure_results
        ]
        full = sum(1 for f in fractions if f == pytest.approx(1.0))
        assert full >= len(fractions) // 2
        assert min(fractions) >= 0.6

    def test_some_cases_are_capacity_tight(self, three_failure_results, att_context):
        """In a subset of cases even flow-level recovery is partial
        because the spare capacity runs out (the paper's 8 of 20)."""
        partial = [
            r
            for r in three_failure_results
            if r.evaluations["pg"].recovery_fraction < 1.0
        ]
        assert 1 <= len(partial) <= 10
        for result in partial:
            instance = att_context.instance(result.scenario)
            assert len(instance.recoverable_flows) > instance.total_spare

    def test_pm_matches_pg_recovery_in_tight_cases(self, three_failure_results):
        for result in three_failure_results:
            pm = result.evaluations["pm"].recovery_fraction
            pg = result.evaluations["pg"].recovery_fraction
            assert pm == pytest.approx(pg, abs=0.02)

    def test_optimal_infeasible_in_tight_cases(self, att_context):
        """The paper's "Optimal cannot always have results" (Fig. 6)."""
        tight = FailureScenario(frozenset({5, 13, 20}))
        instance = att_context.instance(tight)
        assert len(instance.recoverable_flows) > instance.total_spare
        solution = solve_optimal(instance, time_limit_s=120.0)
        assert not solution.feasible

    def test_pm_always_has_a_result(self, att_context):
        """PM is a heuristic and always returns (paper, Section VI-C3)."""
        tight = FailureScenario(frozenset({5, 13, 20}))
        instance = att_context.instance(tight)
        evaluation = evaluate_solution(instance, solve_pm(instance))
        assert evaluation.feasible
        assert evaluation.recovered_flows > 0


class TestComputationTime:
    """Fig. 7: PM runs orders of magnitude faster than Optimal."""

    def test_pm_fraction_of_optimal(self, att_context):
        scenario = FailureScenario(frozenset({13, 20}))
        instance = att_context.instance(scenario)
        pm = solve_pm(instance)
        optimal = solve_optimal(instance, time_limit_s=300.0)
        assert optimal.feasible
        # Paper: 1.77-2.54 % on average; assert well under 10 %.
        assert pm.solve_time_s < 0.1 * optimal.solve_time_s
