"""Sparse compile vs DSL model equivalence, and the PM-seeded fast path.

The contract of :mod:`repro.perf.compile` is *bit-identity*: the direct
CSR assembly must produce exactly the standard form that
``to_standard_form(build_fmssm_model(instance))`` produces — same
matrices, vectors, bounds, integrality, and variable names — so every
solver property proven for the DSL route transfers wholesale.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tiny_instance
from repro.control.failures import enumerate_failure_scenarios
from repro.fmssm.evaluation import evaluate_solution, verify_solution
from repro.fmssm.formulation import build_fmssm_model
from repro.fmssm.optimal import solve_optimal
from repro.lp.branch_and_bound import solve_form_with_bnb, validate_start
from repro.lp.solution import SolveStatus
from repro.lp.standard_form import to_standard_form
from repro.perf.compile import FMSSMCompiler, compile_fmssm
from repro.pm import solve_pm


def dsl_form(instance, require_full_recovery=False, enforce_delay=True):
    model, _ = build_fmssm_model(
        instance,
        require_full_recovery=require_full_recovery,
        enforce_delay=enforce_delay,
    )
    return to_standard_form(model)


def assert_forms_identical(sparse_form, model_form):
    assert sparse_form.var_names == model_form.var_names
    assert sparse_form.maximize == model_form.maximize
    np.testing.assert_array_equal(sparse_form.c, model_form.c)
    np.testing.assert_array_equal(sparse_form.b_ub, model_form.b_ub)
    np.testing.assert_array_equal(sparse_form.lb, model_form.lb)
    np.testing.assert_array_equal(sparse_form.ub, model_form.ub)
    np.testing.assert_array_equal(sparse_form.integrality, model_form.integrality)
    assert sparse_form.a_ub.shape == model_form.a_ub.shape
    assert (sparse_form.a_ub != model_form.a_ub).nnz == 0
    assert sparse_form.a_eq.shape == model_form.a_eq.shape
    assert (sparse_form.a_eq != model_form.a_eq).nnz == 0


class TestFormEquivalence:
    @pytest.mark.parametrize("require_full_recovery", [False, True])
    @pytest.mark.parametrize("enforce_delay", [False, True])
    def test_tiny_bit_identical(self, tiny_instance, require_full_recovery, enforce_delay):
        compiled = compile_fmssm(
            tiny_instance,
            require_full_recovery=require_full_recovery,
            enforce_delay=enforce_delay,
            with_names=True,
        )
        assert_forms_identical(
            compiled.form,
            dsl_form(tiny_instance, require_full_recovery, enforce_delay),
        )

    def test_tiny_variants_bit_identical(self):
        for instance in (
            make_tiny_instance(spare={100: 1, 200: 0}),
            make_tiny_instance(spare={100: 1, 200: 1}),
            make_tiny_instance(ideal_delay_ms=3.0),
            make_tiny_instance(lam=0.25),
        ):
            compiled = compile_fmssm(instance, with_names=True)
            assert_forms_identical(compiled.form, dsl_form(instance))

    def test_small_instance_bit_identical(self, small_instance):
        compiled = compile_fmssm(
            small_instance, require_full_recovery=True, with_names=True
        )
        assert_forms_identical(
            compiled.form, dsl_form(small_instance, require_full_recovery=True)
        )

    def test_names_off_by_default(self, tiny_instance):
        assert compile_fmssm(tiny_instance).form.var_names == ()

    def test_shape_cache_shared_across_scenarios(self, small_context):
        compiler = FMSSMCompiler()
        scenarios = enumerate_failure_scenarios(small_context.plane, 1)
        shapes = set()
        for scenario in scenarios:
            instance = small_context.instance(scenario)
            compile_fmssm(instance, compiler=compiler)
            shapes.add(
                (len(instance.switches), len(instance.controllers), len(instance.pairs))
            )
        # One structural template per distinct (N, M, P) shape, not per scenario.
        assert len(compiler._shapes) == len(shapes)


class TestOptimalRoutes:
    def test_sparse_equals_model_on_small_sweep(self, small_context):
        for scenario in enumerate_failure_scenarios(small_context.plane, 1):
            instance = small_context.instance(scenario)
            via_model = solve_optimal(instance, time_limit_s=60, compile="model")
            via_sparse = solve_optimal(instance, time_limit_s=60, compile="sparse")
            assert via_model.feasible == via_sparse.feasible
            if not via_model.feasible:
                continue
            verify_solution(instance, via_sparse, enforce_delay=True)
            # Bit-identical canonical objectives across routes.
            assert via_model.meta["objective"] == via_sparse.meta["objective"]
            em = evaluate_solution(instance, via_model)
            es = evaluate_solution(instance, via_sparse)
            assert em.least_programmability == es.least_programmability
            assert em.total_programmability == es.total_programmability

    def test_certificate_is_exact_when_claimed(self, tiny_instance):
        sparse = solve_optimal(tiny_instance, compile="sparse", warm_start="pm")
        model = solve_optimal(tiny_instance, compile="model")
        if sparse.meta.get("certificate"):
            assert sparse.meta["objective"] == model.meta["objective"]

    def test_cold_sparse_still_optimal(self, tiny_instance):
        cold = solve_optimal(tiny_instance, compile="sparse", warm_start=None)
        model = solve_optimal(tiny_instance, compile="model")
        assert cold.meta["objective"] == model.meta["objective"]
        assert cold.meta["certificate"] is False

    def test_infeasible_matches_across_routes(self):
        instance = make_tiny_instance(spare={100: 1, 200: 0})
        for compile_route in ("sparse", "model"):
            solution = solve_optimal(
                instance, require_full_recovery=True, compile=compile_route
            )
            assert not solution.feasible
            assert solution.meta["status"] == "infeasible"

    def test_unknown_route_rejected(self, tiny_instance):
        with pytest.raises(ValueError):
            solve_optimal(tiny_instance, compile="turbo")


class TestEmbedExtract:
    def test_pm_embed_roundtrip(self, small_instance):
        compiled = compile_fmssm(small_instance)
        pm = solve_pm(small_instance, enforce_delay=True)
        x = compiled.embed_solution(pm)
        assert x is not None
        assert compiled.is_feasible_point(x)
        mapping, sdn_pairs = compiled.extract(x)
        assert mapping == pm.mapping
        assert sdn_pairs == set(pm.active_pairs())
        evaluation = evaluate_solution(small_instance, pm)
        assert compiled.objective_value(x) == pytest.approx(evaluation.objective)

    def test_embed_rejects_full_recovery_violations(self):
        instance = make_tiny_instance(spare={100: 1, 200: 0})
        compiled = compile_fmssm(instance, require_full_recovery=True)
        pm = solve_pm(instance)
        # PM's partial recovery cannot satisfy r >= 1; the embed refuses.
        assert compiled.embed_solution(pm) is None


class TestSeededBnB:
    def test_seed_never_worse_on_small_sweep(self, small_context):
        """PM-seeded B&B matches the un-seeded optimum on every scenario."""
        for scenario in enumerate_failure_scenarios(small_context.plane, 1):
            instance = small_context.instance(scenario)
            compiled = compile_fmssm(instance, require_full_recovery=True)
            seed = compiled.embed_solution(solve_pm(instance, enforce_delay=True))
            cold = solve_form_with_bnb(compiled.form, time_limit_s=60)
            seeded = solve_form_with_bnb(
                compiled.form, time_limit_s=60, warm_start=seed
            )
            assert seeded.status == cold.status
            if not cold.is_feasible:
                continue
            assert seeded.objective == pytest.approx(cold.objective, abs=1e-9)
            if seed is not None:
                assert seeded.objective >= compiled.objective_value(seed) - 1e-9

    def test_invalid_seed_is_ignored(self, tiny_instance):
        compiled = compile_fmssm(tiny_instance)
        bad = np.full(compiled.form.n_vars, 0.5)  # fractional binaries
        result = solve_form_with_bnb(compiled.form, warm_start=bad)
        assert result.status is SolveStatus.OPTIMAL
        cold = solve_form_with_bnb(compiled.form)
        assert result.objective == pytest.approx(cold.objective, abs=1e-9)

    def test_validate_start_contract(self, tiny_instance):
        compiled = compile_fmssm(tiny_instance)
        form = compiled.form
        assert validate_start(form, np.zeros(3)) is None  # wrong shape
        assert validate_start(form, np.full(form.n_vars, 2.0)) is None  # bounds
        zero = np.zeros(form.n_vars)
        accepted = validate_start(form, zero)  # all-zero point is feasible
        assert accepted is not None
        np.testing.assert_array_equal(accepted, zero)
        fractional = zero.copy()
        fractional[0] = 0.5
        assert validate_start(form, fractional) is None
