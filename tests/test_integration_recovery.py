"""End-to-end integration: failure → recovery → data plane → reroute.

These tests drive the full pipeline the way an operator would: inject
failures (simultaneous and successive), run recovery, install the result
on the simulated hybrid data plane, and confirm that traffic still flows
and programmable flows are actually reroutable.
"""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario, successive_scenarios
from repro.dataplane.forwarding import NetworkDataPlane
from repro.dataplane.packet import Packet
from repro.dataplane.switch import SwitchMode
from repro.fmssm.evaluation import evaluate_solution
from repro.pm.algorithm import solve_pm


class TestFullPipeline:
    @pytest.mark.parametrize("failed", [(13,), (13, 20), (2, 5, 6)])
    def test_recover_install_deliver(self, att_context, failed):
        instance = att_context.instance(FailureScenario(frozenset(failed)))
        solution = solve_pm(instance)
        evaluation = evaluate_solution(instance, solution)
        assert evaluation.recovered_flows > 0

        plane = NetworkDataPlane(
            att_context.topology, mode=SwitchMode.HYBRID, legacy_weight="hops"
        )
        plane.apply_recovery(instance, solution)
        realized = plane.check_all_delivered(instance.flows.values())
        # Every offline flow reaches its destination on its original path
        # (SDN entries steer recovered hops; legacy handles the rest).
        for flow in instance.flows.values():
            assert realized[flow.flow_id][-1] == flow.dst
            assert len(realized[flow.flow_id]) - 1 == flow.hop_count

    def test_online_flows_unaffected(self, att_context):
        instance = att_context.instance(FailureScenario(frozenset({13, 20})))
        solution = solve_pm(instance)
        plane = NetworkDataPlane(
            att_context.topology, mode=SwitchMode.HYBRID, legacy_weight="hops"
        )
        plane.apply_recovery(instance, solution)
        online = [
            f for f in att_context.flows if f.flow_id not in instance.flows
        ]
        realized = plane.check_all_delivered(online)
        for flow in online:
            assert realized[flow.flow_id][-1] == flow.dst


class TestSuccessiveFailures:
    def test_each_stage_recoverable(self, att_context):
        """Controllers fail one after another; recovery is recomputed
        from scratch at each stage and remains installable."""
        previous_recovered = None
        for scenario in successive_scenarios([13, 20, 5]):
            instance = att_context.instance(scenario)
            solution = solve_pm(instance)
            evaluation = evaluate_solution(instance, solution)
            assert evaluation.recovered_flows > 0
            plane = NetworkDataPlane(
                att_context.topology, mode=SwitchMode.HYBRID, legacy_weight="hops"
            )
            plane.apply_recovery(instance, solution)
            plane.check_all_delivered(instance.flows.values())
            previous_recovered = evaluation.recovered_flows
        assert previous_recovered is not None

    def test_recovery_degrades_gracefully(self, att_context):
        """More failures -> recovery fraction never improves."""
        fractions = []
        for scenario in successive_scenarios([13, 20, 5]):
            instance = att_context.instance(scenario)
            evaluation = evaluate_solution(instance, solve_pm(instance))
            fractions.append(evaluation.recovery_fraction)
        assert fractions[0] >= fractions[-1]


class TestRerouteAfterRecovery:
    def test_many_recovered_flows_reroutable(self, att_context):
        """For a sample of recovered pairs, an alternate loop-free next
        hop exists and packets still arrive after reprogramming."""
        import networkx as nx

        instance = att_context.instance(FailureScenario(frozenset({13, 20})))
        solution = solve_pm(instance)
        plane = NetworkDataPlane(
            att_context.topology, mode=SwitchMode.HYBRID, legacy_weight="hops"
        )
        plane.apply_recovery(instance, solution)
        topology = att_context.topology

        rerouted = 0
        for switch, flow_id in sorted(solution.sdn_pairs)[:100]:
            flow = instance.flows[flow_id]
            original_next = flow.next_hop(switch)
            prefix = set(flow.path[: flow.path.index(switch) + 1])
            sub = topology.graph.subgraph(n for n in topology.graph if n != switch)
            for neighbor in topology.neighbors(switch):
                if neighbor == original_next or neighbor in prefix:
                    continue
                if neighbor not in sub or not nx.has_path(sub, neighbor, flow.dst):
                    continue
                alternate = nx.shortest_path(sub, neighbor, flow.dst)
                if prefix & set(alternate):
                    continue
                # Controller installs the changed path segment atomically.
                plane.install_path(flow_id, (switch, *alternate))
                realized = plane.forward(Packet(flow.src, flow.dst))
                assert realized[-1] == flow.dst
                assert neighbor in realized
                # Restore the original path for the next iteration.
                plane.install_path(flow_id, flow.path[flow.path.index(switch):])
                rerouted += 1
                break
        # The programmability coefficients promise alternatives at beta=1
        # switches; a healthy majority of sampled pairs must reroute.
        assert rerouted >= 50
