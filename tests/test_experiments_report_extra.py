"""Extra coverage for report rendering and figure helpers."""

from __future__ import annotations

import pytest

from repro.experiments.figures import headline_ratios
from repro.experiments.report import render_fig7
from repro.experiments.runner import ScenarioResult
from repro.control.failures import FailureScenario
from repro.fmssm.evaluation import RecoveryEvaluation


def make_evaluation(name: str, total: int, feasible: bool = True) -> RecoveryEvaluation:
    return RecoveryEvaluation(
        algorithm=name, feasible=feasible, total_programmability=total
    )


class TestRelativeProgrammability:
    def test_zero_reference_yields_inf(self):
        result = ScenarioResult(scenario=FailureScenario(frozenset({1})))
        result.evaluations["retroflow"] = make_evaluation("retroflow", 0)
        result.evaluations["pm"] = make_evaluation("pm", 10)
        relative = result.relative_total_programmability("retroflow")
        assert relative["pm"] == float("inf")
        assert relative["retroflow"] == 1.0

    def test_normal_reference(self):
        result = ScenarioResult(scenario=FailureScenario(frozenset({1})))
        result.evaluations["retroflow"] = make_evaluation("retroflow", 5)
        result.evaluations["pm"] = make_evaluation("pm", 10)
        assert result.relative_total_programmability()["pm"] == 2.0


class TestHeadlineRatios:
    def test_empty_cases(self):
        data = {"cases": []}
        ratios = headline_ratios(data)
        assert ratios["max_pct"] is None
        assert ratios["argmax_case"] is None

    def test_inf_ratios_excluded(self):
        data = {
            "cases": [
                {"case": "(1)", "algorithms": {"pm": {"total_vs_retroflow": float("inf")}}},
                {"case": "(2)", "algorithms": {"pm": {"total_vs_retroflow": 1.5}}},
            ]
        }
        ratios = headline_ratios(data)
        assert ratios["max_pct"] == pytest.approx(150.0)
        assert ratios["argmax_case"] == "(2)"


class TestRenderFig7:
    def test_renders_na_for_missing_optimal(self):
        data = {
            "scenarios": {
                1: [
                    {"case": "(1)", "pm_time_s": 0.001, "optimal_time_s": 1.0, "pct": 0.1},
                    {"case": "(2)", "pm_time_s": 0.001, "optimal_time_s": None, "pct": None},
                ]
            },
            "mean_pct": {1: 0.1},
        }
        text = render_fig7(data)
        assert "n/a" in text
        assert "0.10%" in text
        assert "mean PM/Optimal: 0.10%" in text

    def test_renders_missing_mean(self):
        data = {
            "scenarios": {2: []},
            "mean_pct": {2: None},
        }
        text = render_fig7(data)
        assert "mean PM/Optimal: n/a" in text
