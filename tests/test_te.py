"""Tests for the traffic-engineering layer."""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario
from repro.exceptions import TopologyError
from repro.flows.demands import all_pairs_flows
from repro.flows.flow import Flow
from repro.fmssm.solution import RecoverySolution
from repro.te.capacity import (
    betweenness_capacities,
    link_loads,
    link_utilization,
    max_link_utilization,
    uniform_capacities,
)
from repro.te.engineer import TrafficEngineer
from repro.te.recovered import controllable_nodes, programmable_switches
from repro.topology.generators import grid_topology


@pytest.fixture(scope="module")
def grid():
    return grid_topology(3, 3)


class TestCapacities:
    def test_uniform(self, grid):
        caps = uniform_capacities(grid, 10.0)
        assert set(caps) == set(grid.edges())
        assert all(v == 10.0 for v in caps.values())

    def test_uniform_rejects_nonpositive(self, grid):
        with pytest.raises(TopologyError):
            uniform_capacities(grid, 0.0)

    def test_betweenness_core_links_fatter(self, att):
        caps = betweenness_capacities(att, base=10.0, scale=4.0)
        assert set(caps) == set(att.edges())
        assert max(caps.values()) > min(caps.values())
        assert min(caps.values()) >= 10.0
        assert max(caps.values()) <= 50.0 + 1e-9

    def test_betweenness_rejects_bad_params(self, att):
        with pytest.raises(TopologyError):
            betweenness_capacities(att, base=0.0)
        with pytest.raises(TopologyError):
            betweenness_capacities(att, base=1.0, scale=-1.0)


class TestLoads:
    def test_link_loads_sum_demand(self, grid):
        flows = [Flow(0, 2, (0, 1, 2), demand=2.0), Flow(2, 0, (2, 1, 0), demand=3.0)]
        loads = link_loads(grid, flows)
        assert loads[(0, 1)] == 5.0
        assert loads[(1, 2)] == 5.0

    def test_unused_links_zero(self, grid):
        flows = [Flow(0, 1, (0, 1))]
        loads = link_loads(grid, flows)
        assert loads[(0, 1)] == 1.0
        assert loads[(7, 8)] == 0.0

    def test_utilization_divides_by_capacity(self, grid):
        flows = [Flow(0, 1, (0, 1), demand=5.0)]
        caps = uniform_capacities(grid, 10.0)
        utilization = link_utilization(grid, flows, caps)
        assert utilization[(0, 1)] == 0.5

    def test_mlu_is_max(self, grid):
        flows = [
            Flow(0, 1, (0, 1), demand=5.0),
            Flow(1, 2, (1, 2), demand=9.0),
        ]
        caps = uniform_capacities(grid, 10.0)
        assert max_link_utilization(grid, flows, caps) == 0.9

    def test_missing_capacity_rejected(self, grid):
        flows = [Flow(0, 1, (0, 1))]
        with pytest.raises(TopologyError):
            link_utilization(grid, flows, {})


class TestTrafficEngineer:
    def test_relieves_hot_link_when_programmable(self, grid):
        # Two unit flows share (0, 1); one can deviate at node 0.
        flows = {
            (0, 2): Flow(0, 2, (0, 1, 2), demand=4.0),
            (0, 5): Flow(0, 5, (0, 1, 2, 5), demand=4.0),
        }
        caps = uniform_capacities(grid, 10.0)
        engineer = TrafficEngineer(grid, caps)
        result = engineer.relieve(flows, {(0, 5): {0}})
        assert result.mlu_before == 0.8
        assert result.mlu_after < 0.8
        assert result.actions
        moved = result.flows[(0, 5)]
        assert moved.path[0:2] != (0, 1)

    def test_pinned_flows_stay(self, grid):
        flows = {
            (0, 2): Flow(0, 2, (0, 1, 2), demand=4.0),
            (0, 5): Flow(0, 5, (0, 1, 2, 5), demand=4.0),
        }
        caps = uniform_capacities(grid, 10.0)
        result = TrafficEngineer(grid, caps).relieve(flows, {})
        assert result.mlu_after == result.mlu_before
        assert not result.actions
        assert result.flows == flows

    def test_allowed_nodes_constrain_suffixes(self, grid):
        flows = {
            (0, 2): Flow(0, 2, (0, 1, 2), demand=4.0),
            (0, 5): Flow(0, 5, (0, 1, 2, 5), demand=4.0),
        }
        caps = uniform_capacities(grid, 10.0)
        # Only the original path's nodes are controllable: no detour exists.
        engineer = TrafficEngineer(grid, caps, allowed_nodes=frozenset({0, 1, 2, 5}))
        result = engineer.relieve(flows, {(0, 5): {0}})
        assert not result.actions

    def test_new_paths_are_valid_flows(self, grid):
        flows = {
            f.flow_id: Flow(f.src, f.dst, f.path, demand=2.0)
            for f in all_pairs_flows(grid, weight="hops")
        }
        caps = uniform_capacities(grid, 30.0)
        programmable = {fid: set(f.transit_switches) for fid, f in flows.items()}
        result = TrafficEngineer(grid, caps).relieve(flows, programmable, max_actions=20)
        for flow in result.flows.values():
            # Flow construction itself validates simplicity/endpoints;
            # also check links exist.
            for u, v in zip(flow.path, flow.path[1:]):
                assert grid.has_edge(u, v)
        assert result.mlu_after <= result.mlu_before

    def test_negative_max_actions_rejected(self, grid):
        from repro.exceptions import RoutingError

        caps = uniform_capacities(grid, 10.0)
        with pytest.raises(RoutingError):
            TrafficEngineer(grid, caps).relieve({}, {}, max_actions=-1)


class TestRecoveredBridge:
    def test_programmable_switches_online_always(self, att_context, att_instance_13_20):
        solution = RecoverySolution(algorithm="none")  # nothing recovered
        programmable = programmable_switches(
            att_instance_13_20, solution, att_context.flows
        )
        offline = set(att_instance_13_20.switches)
        for flow in att_context.flows:
            assert programmable[flow.flow_id] == frozenset(
                s for s in flow.transit_switches if s not in offline
            )

    def test_sdn_pairs_add_offline_programmability(self, att_context, att_instance_13_20):
        from repro.pm import solve_pm

        solution = solve_pm(att_instance_13_20)
        programmable = programmable_switches(
            att_instance_13_20, solution, att_context.flows
        )
        offline = set(att_instance_13_20.switches)
        gained = sum(
            1
            for flow in att_context.flows
            for s in programmable[flow.flow_id]
            if s in offline
        )
        assert gained == len(solution.active_pairs())

    def test_controllable_nodes_variants(self, att_context, att_instance_13_20):
        from repro.baselines.pg import solve_pg
        from repro.pm import solve_pm

        scenario = FailureScenario(frozenset({13, 20}))
        offline = set(scenario.offline_switches(att_context.plane))
        online = set(att_context.topology.nodes) - offline

        nothing = controllable_nodes(
            att_context.plane, scenario, RecoverySolution(algorithm="none")
        )
        assert set(nothing) == online

        pm_nodes = controllable_nodes(
            att_context.plane, scenario, solve_pm(att_instance_13_20)
        )
        assert online < set(pm_nodes)

        pg_nodes = controllable_nodes(
            att_context.plane, scenario, solve_pg(att_instance_13_20)
        )
        # PG reconnects switches through the middle layer despite having
        # no switch-controller mapping.
        assert online < set(pg_nodes)


class TestRecoveryImprovesTE:
    def test_recovered_network_relieves_surge_better(self, att_context):
        """The application-level payoff: PM-recovered programmability
        relieves a traffic surge that an unrecovered network cannot."""
        from repro.pm import solve_pm

        scenario = FailureScenario(frozenset({13, 20}))
        instance = att_context.instance(scenario)
        surged = {
            f.flow_id: Flow(f.src, f.dst, f.path, demand=3.0 if 13 in f.path else 1.0)
            for f in att_context.flows
        }
        caps = betweenness_capacities(att_context.topology, base=60.0, scale=4.0)

        def relieve(solution):
            programmable = programmable_switches(instance, solution, surged.values())
            nodes = controllable_nodes(att_context.plane, scenario, solution)
            engineer = TrafficEngineer(att_context.topology, caps, allowed_nodes=nodes)
            return engineer.relieve(surged, programmable, max_actions=40)

        unrecovered = relieve(RecoverySolution(algorithm="none"))
        recovered = relieve(solve_pm(instance))
        assert recovered.mlu_after < unrecovered.mlu_after
        assert len(recovered.actions) > len(unrecovered.actions)
