"""Tests for repro.geo: coordinates, Haversine, delays."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geo import (
    EARTH_RADIUS_M,
    GeoPoint,
    haversine_m,
    pairwise_distance_matrix,
    propagation_delay_ms,
)

NY = GeoPoint(40.7128, -74.0060)
LA = GeoPoint(34.0522, -118.2437)
LONDON = GeoPoint(51.5074, -0.1278)


class TestGeoPoint:
    def test_valid_point_roundtrips(self):
        p = GeoPoint(12.5, -45.25)
        assert p.as_tuple() == (12.5, -45.25)

    def test_radians_conversion(self):
        p = GeoPoint(90.0, 180.0)
        assert p.latitude_rad == pytest.approx(math.pi / 2)
        assert p.longitude_rad == pytest.approx(math.pi)

    @pytest.mark.parametrize("lat", [-90.0001, 90.0001, 1000.0])
    def test_latitude_out_of_range(self, lat):
        with pytest.raises(ValueError, match="latitude"):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.1, 180.1, 720.0])
    def test_longitude_out_of_range(self, lon):
        with pytest.raises(ValueError, match="longitude"):
            GeoPoint(0.0, lon)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            GeoPoint(float("nan"), 0.0)

    def test_boundary_values_allowed(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_frozen(self):
        p = GeoPoint(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.latitude = 3.0  # type: ignore[misc]


class TestHaversine:
    def test_zero_distance_to_self(self):
        assert haversine_m(NY, NY) == 0.0

    def test_symmetry(self):
        assert haversine_m(NY, LA) == pytest.approx(haversine_m(LA, NY))

    def test_ny_la_known_distance(self):
        # Great-circle NY-LA is about 3,936 km.
        assert haversine_m(NY, LA) == pytest.approx(3.936e6, rel=0.01)

    def test_ny_london_known_distance(self):
        # About 5,570 km.
        assert haversine_m(NY, LONDON) == pytest.approx(5.570e6, rel=0.01)

    def test_antipodal_distance_is_half_circumference(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        assert haversine_m(a, b) == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-9)

    def test_triangle_inequality(self):
        assert haversine_m(NY, LA) <= haversine_m(NY, LONDON) + haversine_m(LONDON, LA)


class TestPropagationDelay:
    def test_delay_scales_with_distance(self):
        d = haversine_m(NY, LA)
        assert propagation_delay_ms(NY, LA) == pytest.approx(d / 2e8 * 1000)

    def test_custom_speed(self):
        faster = propagation_delay_ms(NY, LA, speed_m_per_s=3e8)
        slower = propagation_delay_ms(NY, LA, speed_m_per_s=2e8)
        assert faster < slower

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ValueError, match="speed"):
            propagation_delay_ms(NY, LA, speed_m_per_s=0.0)

    def test_ny_la_delay_magnitude(self):
        # ~3936 km at 2e8 m/s is ~19.7 ms one-way.
        assert propagation_delay_ms(NY, LA) == pytest.approx(19.7, rel=0.02)


class TestPairwiseMatrix:
    def test_matches_scalar_haversine(self):
        points = [NY, LA, LONDON]
        matrix = pairwise_distance_matrix(points)
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                assert matrix[i, j] == pytest.approx(haversine_m(a, b), rel=1e-9)

    def test_diagonal_exact_zero(self):
        matrix = pairwise_distance_matrix([NY, LA])
        assert matrix[0, 0] == 0.0
        assert matrix[1, 1] == 0.0

    def test_symmetric(self):
        matrix = pairwise_distance_matrix([NY, LA, LONDON])
        assert np.allclose(matrix, matrix.T)

    def test_single_point(self):
        matrix = pairwise_distance_matrix([NY])
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == 0.0
