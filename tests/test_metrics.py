"""Tests for metric summaries."""

from __future__ import annotations

import pytest

from repro.metrics.summary import FiveNumberSummary, summarize


class TestSummarize:
    def test_simple_distribution(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.minimum == 1
        assert summary.median == 3
        assert summary.maximum == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.count == 5

    def test_quartiles(self):
        summary = summarize(list(range(1, 101)))
        assert summary.q1 == pytest.approx(25.75)
        assert summary.q3 == pytest.approx(75.25)

    def test_single_value(self):
        summary = summarize([7])
        assert summary.as_row() == (7, 7, 7, 7, 7)

    def test_empty_yields_zeros(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.as_row() == (0, 0, 0, 0, 0)

    def test_constant_distribution(self):
        summary = summarize([4] * 10)
        assert summary.minimum == summary.maximum == 4

    def test_str_format(self):
        text = str(summarize([1, 2, 3]))
        assert "med=2" in text and "n=3" in text

    def test_frozen(self):
        summary = summarize([1])
        with pytest.raises(AttributeError):
            summary.mean = 0  # type: ignore[misc]

    def test_ordering_invariant(self):
        assert summarize([3, 1, 2]) == summarize([1, 2, 3])
