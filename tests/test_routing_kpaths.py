"""Tests for Yen's k-shortest paths."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import RoutingError
from repro.routing.kpaths import k_shortest_paths, path_weight
from repro.topology.generators import grid_topology, ring_topology


@pytest.fixture(scope="module")
def grid():
    return grid_topology(3, 3)


class TestPathWeight:
    def test_hops(self, grid):
        assert path_weight(grid, (0, 1, 2), weight="hops") == 2

    def test_delay_matches_links(self, grid):
        expected = grid.link_delay_ms(0, 1) + grid.link_delay_ms(1, 2)
        assert path_weight(grid, (0, 1, 2), weight="delay") == pytest.approx(expected)

    def test_missing_link_rejected(self, grid):
        with pytest.raises(RoutingError):
            path_weight(grid, (0, 8))

    def test_short_path_rejected(self, grid):
        with pytest.raises(RoutingError):
            path_weight(grid, (0,))


class TestKShortest:
    def test_first_path_is_shortest(self, grid):
        paths = k_shortest_paths(grid, 0, 8, k=1, weight="hops")
        assert len(paths) == 1
        assert len(paths[0]) == 5

    def test_paths_sorted_by_weight(self, grid):
        paths = k_shortest_paths(grid, 0, 8, k=8, weight="delay")
        weights = [path_weight(grid, p, "delay") for p in paths]
        assert weights == sorted(weights)

    def test_paths_are_simple_and_distinct(self, grid):
        paths = k_shortest_paths(grid, 0, 8, k=10, weight="hops")
        assert len(set(paths)) == len(paths)
        for p in paths:
            assert len(set(p)) == len(p)
            assert p[0] == 0 and p[-1] == 8

    def test_matches_networkx_reference(self, grid):
        ours = k_shortest_paths(grid, 0, 8, k=6, weight="hops")
        reference = []
        for i, p in enumerate(nx.shortest_simple_paths(grid.graph, 0, 8)):
            if i >= 6:
                break
            reference.append(len(p))
        assert [len(p) for p in ours] == reference

    def test_fewer_paths_than_k(self):
        ring = ring_topology(5)
        # A plain ring has exactly 2 simple paths between any pair.
        paths = k_shortest_paths(ring, 0, 2, k=10, weight="hops")
        assert len(paths) == 2

    def test_k_must_be_positive(self, grid):
        with pytest.raises(RoutingError):
            k_shortest_paths(grid, 0, 8, k=0)

    def test_same_endpoints_rejected(self, grid):
        with pytest.raises(RoutingError):
            k_shortest_paths(grid, 3, 3, k=2)

    def test_unknown_endpoint_rejected(self, grid):
        with pytest.raises(RoutingError):
            k_shortest_paths(grid, 0, 99, k=2)

    def test_att_path_diversity(self, att):
        paths = k_shortest_paths(att, 0, 24, k=5, weight="delay")
        assert len(paths) == 5
        weights = [path_weight(att, p, "delay") for p in paths]
        assert weights == sorted(weights)
