"""Property-based tests for the data-plane simulator (hypothesis)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataplane.forwarding import NetworkDataPlane
from repro.dataplane.packet import Packet
from repro.dataplane.switch import SwitchMode
from repro.flows.demands import all_pairs_flows
from repro.topology.generators import waxman_topology

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

topologies = st.builds(
    waxman_topology,
    n=st.integers(min_value=5, max_value=12),
    alpha=st.just(0.7),
    beta=st.just(0.4),
    seed=st.integers(min_value=0, max_value=40),
)


class TestForwardingProperties:
    @SETTINGS
    @given(topologies)
    def test_legacy_delivers_everything_shortest(self, topo):
        """Empty flow tables: hybrid switches legacy-route every flow on a
        hop-shortest path."""
        plane = NetworkDataPlane(topo, mode=SwitchMode.HYBRID, legacy_weight="hops")
        flows = all_pairs_flows(topo, weight="hops")
        realized = plane.check_all_delivered(flows)
        for flow in flows:
            path = realized[flow.flow_id]
            assert path[0] == flow.src and path[-1] == flow.dst
            assert len(path) - 1 == flow.hop_count

    @SETTINGS
    @given(topologies)
    def test_installed_paths_override_legacy(self, topo):
        """Installing every flow's path yields exactly those paths."""
        plane = NetworkDataPlane(topo, mode=SwitchMode.HYBRID, legacy_weight="hops")
        flows = all_pairs_flows(topo, weight="hops")
        for flow in flows:
            plane.install_flow_path(flow)
        for flow in flows:
            assert plane.forward(Packet(*flow.flow_id)) == flow.path

    @SETTINGS
    @given(topologies, st.data())
    def test_trace_is_simple_walk_over_links(self, topo, data):
        plane = NetworkDataPlane(topo, mode=SwitchMode.HYBRID, legacy_weight="hops")
        src = data.draw(st.sampled_from(topo.nodes))
        dst = data.draw(st.sampled_from([n for n in topo.nodes if n != src]))
        path = plane.forward(Packet(src, dst))
        assert len(set(path)) == len(path)
        for u, v in zip(path, path[1:]):
            assert topo.has_edge(u, v)

    @SETTINGS
    @given(topologies)
    def test_pure_legacy_mode_equivalent_to_hybrid_with_empty_tables(self, topo):
        hybrid = NetworkDataPlane(topo, mode=SwitchMode.HYBRID, legacy_weight="hops")
        legacy = NetworkDataPlane(topo, mode=SwitchMode.LEGACY, legacy_weight="hops")
        for flow in all_pairs_flows(topo, weight="hops"):
            a = hybrid.forward(Packet(*flow.flow_id))
            b = legacy.forward(Packet(*flow.flow_id))
            assert a == b
