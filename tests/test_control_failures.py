"""Tests for failure scenarios."""

from __future__ import annotations

import pytest

from repro.control.failures import (
    FailureScenario,
    enumerate_failure_scenarios,
    successive_scenarios,
)
from repro.control.plane import ControlPlane
from repro.exceptions import ScenarioError
from repro.topology.att import ATT_DOMAINS
from repro.topology.generators import grid_topology


@pytest.fixture(scope="module")
def plane(att):
    return ControlPlane(att, ATT_DOMAINS, capacity=500)


class TestFailureScenario:
    def test_name_sorted(self):
        scenario = FailureScenario(frozenset({20, 13}))
        assert scenario.name == "(13, 20)"
        assert scenario.n_failures == 2

    def test_accepts_lists_and_tuples(self):
        assert FailureScenario([5]).failed == frozenset({5})
        assert FailureScenario((5, 6)).failed == frozenset({5, 6})

    def test_empty_rejected(self):
        with pytest.raises(ScenarioError):
            FailureScenario(frozenset())

    def test_offline_switches(self, plane):
        scenario = FailureScenario(frozenset({13, 20}))
        assert scenario.offline_switches(plane) == (10, 11, 12, 13, 15, 19, 20)

    def test_active_controllers(self, plane):
        scenario = FailureScenario(frozenset({13, 20}))
        assert scenario.active_controllers(plane) == (2, 5, 6, 22)

    def test_unknown_controller_rejected(self, plane):
        with pytest.raises(ScenarioError, match="unknown"):
            FailureScenario(frozenset({999})).validate(plane)

    def test_all_failed_rejected(self, plane):
        scenario = FailureScenario(frozenset(plane.controller_ids))
        with pytest.raises(ScenarioError, match="remain active"):
            scenario.validate(plane)


class TestEnumeration:
    def test_paper_combination_counts(self, plane):
        assert len(enumerate_failure_scenarios(plane, 1)) == 6
        assert len(enumerate_failure_scenarios(plane, 2)) == 15
        assert len(enumerate_failure_scenarios(plane, 3)) == 20

    def test_scenarios_distinct(self, plane):
        scenarios = enumerate_failure_scenarios(plane, 2)
        assert len({s.failed for s in scenarios}) == 15

    def test_bounds_enforced(self, plane):
        with pytest.raises(ScenarioError):
            enumerate_failure_scenarios(plane, 0)
        with pytest.raises(ScenarioError):
            enumerate_failure_scenarios(plane, 6)

    def test_lexicographic_order(self, plane):
        scenarios = enumerate_failure_scenarios(plane, 2)
        assert scenarios[0].failed == frozenset({2, 5})
        assert scenarios[-1].failed == frozenset({20, 22})


class TestSuccessive:
    def test_growing_failure_sets(self):
        stages = list(successive_scenarios([5, 13, 20]))
        assert [s.failed for s in stages] == [
            frozenset({5}),
            frozenset({5, 13}),
            frozenset({5, 13, 20}),
        ]

    def test_duplicates_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            list(successive_scenarios([5, 5]))

    def test_successive_offline_sets_grow(self, plane):
        previous: set[int] = set()
        for scenario in successive_scenarios([2, 5, 6]):
            offline = set(scenario.offline_switches(plane))
            assert previous <= offline
            previous = offline


class TestSampling:
    def test_small_request_returns_distinct(self, plane):
        from repro.control.failures import sample_failure_scenarios

        scenarios = sample_failure_scenarios(plane, 2, 5, seed=1)
        assert len(scenarios) == 5
        assert len({s.failed for s in scenarios}) == 5

    def test_oversample_falls_back_to_enumeration(self, plane):
        from repro.control.failures import sample_failure_scenarios

        scenarios = sample_failure_scenarios(plane, 2, 100)
        assert len(scenarios) == 15

    def test_deterministic_for_seed(self, plane):
        from repro.control.failures import sample_failure_scenarios

        a = [s.failed for s in sample_failure_scenarios(plane, 3, 7, seed=4)]
        b = [s.failed for s in sample_failure_scenarios(plane, 3, 7, seed=4)]
        assert a == b

    def test_invalid_arguments(self, plane):
        from repro.control.failures import sample_failure_scenarios
        from repro.exceptions import ScenarioError
        import pytest as _pytest

        with _pytest.raises(ScenarioError):
            sample_failure_scenarios(plane, 0, 3)
        with _pytest.raises(ScenarioError):
            sample_failure_scenarios(plane, 2, 0)
