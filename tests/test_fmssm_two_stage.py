"""Tests for the two-stage FMSSM solve and its equivalence to the
weighted single-stage formulation (the paper's Section IV-D claim)."""

from __future__ import annotations

import pytest

from repro.fmssm.evaluation import evaluate_solution, verify_solution
from repro.fmssm.optimal import solve_optimal
from repro.fmssm.two_stage import solve_two_stage
from conftest import make_tiny_instance


class TestTwoStage:
    def test_tiny_instance(self, tiny_instance):
        solution = solve_two_stage(tiny_instance)
        assert solution.feasible
        verify_solution(tiny_instance, solution, enforce_delay=True)
        evaluation = evaluate_solution(tiny_instance, solution)
        assert evaluation.least_programmability == 2
        assert evaluation.total_programmability == 11
        assert solution.meta["stage1_r"] == 2

    def test_infeasible_propagates(self):
        instance = make_tiny_instance(spare={100: 1, 200: 0})
        solution = solve_two_stage(instance, require_full_recovery=True)
        assert not solution.feasible
        assert solution.meta["stage"] == 1

    def test_equivalence_with_weighted_optimal_tiny(self, tiny_instance):
        """The paper's claim: the weighted objective with a safe lambda
        reproduces the two-stage optimum exactly."""
        weighted = evaluate_solution(tiny_instance, solve_optimal(tiny_instance))
        two_stage = evaluate_solution(tiny_instance, solve_two_stage(tiny_instance))
        assert weighted.least_programmability == two_stage.least_programmability
        assert weighted.total_programmability == two_stage.total_programmability

    def test_equivalence_on_small_network(self, small_instance):
        weighted = evaluate_solution(
            small_instance, solve_optimal(small_instance, time_limit_s=120)
        )
        two_stage = evaluate_solution(
            small_instance, solve_two_stage(small_instance, time_limit_s=120)
        )
        assert weighted.least_programmability == two_stage.least_programmability
        assert weighted.total_programmability == pytest.approx(
            two_stage.total_programmability
        )

    def test_relaxed_mode(self):
        instance = make_tiny_instance(spare={100: 1, 200: 0})
        solution = solve_two_stage(instance, require_full_recovery=False)
        assert solution.feasible
        evaluation = evaluate_solution(instance, solution)
        # One unit of budget: the best single pair (p̄ = 4 at switch 2).
        assert evaluation.total_programmability == 4
