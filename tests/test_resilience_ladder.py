"""Tests for the solver degradation ladder (repro.resilience.degradation)."""

from __future__ import annotations

import pickle
import warnings

import pytest

from repro.control.failures import FailureScenario
from repro.exceptions import DegradedResultWarning, SolverError
from repro.experiments.scenarios import custom_context
from repro.resilience import chaos
from repro.resilience.degradation import (
    DegradationEvent,
    DegradationReport,
    LadderPolicy,
    Rung,
    default_ladder,
    solve_with_ladder,
)
from repro.topology.generators import ring_topology


@pytest.fixture
def tight_capacity_context():
    """Last-listed controller has almost no spare: an all-on corruption
    of the solver vector maps everything onto it and blows Eq. 3."""
    return custom_context(
        ring_topology(10, chords=5, seed=7),
        controller_sites=(0, 3, 7),
        capacity={0: 200, 3: 200, 7: 30},
    )


class TestReport:
    def test_event_round_trip(self):
        event = DegradationEvent("sparse+warm", "demote", "timeout", 1.25)
        assert DegradationEvent.from_dict(event.to_dict()) == event

    def test_report_round_trip(self):
        report = DegradationReport(rung_used="bnb")
        report.record("sparse+warm", "retry", "timeout", 0.5)
        report.record("sparse+warm", "demote", "timeout", 0.5)
        report.record("bnb", "accept", "feasible", 0.1)
        restored = DegradationReport.from_dict(report.to_dict())
        assert restored.rung_used == "bnb"
        assert restored.events == report.events
        assert restored.degraded
        assert len(restored.demotions) == 1

    def test_clean_report_not_degraded(self):
        report = DegradationReport()
        report.record("sparse+warm", "accept", "feasible")
        assert not report.degraded
        assert report.demotions == ()

    def test_summary_names_rung(self):
        report = DegradationReport(rung_used="pm")
        report.record("sparse+warm", "demote", "dead")
        assert "rung_used=pm" in report.summary()


class TestPolicy:
    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown rung solver"):
            Rung("custom", "does-not-exist")

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="at least one rung"):
            LadderPolicy(rungs=())

    def test_default_ladder_shape(self):
        policy = default_ladder(time_limit_s=10.0, retries=2)
        assert [r.solver for r in policy.rungs] == [
            "sparse+warm", "model", "bnb", "pm",
        ]
        assert policy.rungs[0].retries == 2
        assert policy.rungs[-1].time_limit_s is None

    def test_policy_pickles(self):
        policy = default_ladder()
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy


class TestSolveWithLadder:
    def test_primary_rung_clean(self, small_instance):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedResultWarning)
            solution, report = solve_with_ladder(
                small_instance, default_ladder(time_limit_s=30.0)
            )
        assert solution.feasible
        assert report.rung_used == "sparse+warm"
        assert not report.degraded
        assert solution.meta["ladder_rung"] == "sparse+warm"
        assert "degraded" not in solution.meta

    def test_retry_then_demote_to_bnb(self, small_instance):
        # retries=1 gives the primary rung 2 attempts; the model rung gets
        # 1.  Three injected timeouts at the solve_optimal entry therefore
        # exhaust both HiGHS routes, and B&B (call #4) answers.
        policy = default_ladder(time_limit_s=30.0, retries=1)
        with chaos.inject(
            chaos.Fault("optimal.solve", "raise-timeout", at_call=1, count=3)
        ):
            with pytest.warns(DegradedResultWarning):
                solution, report = solve_with_ladder(small_instance, policy)
        assert report.rung_used == "bnb"
        assert [e.action for e in report.events] == [
            "retry", "demote", "demote", "accept",
        ]
        assert [e.rung for e in report.events] == [
            "sparse+warm", "sparse+warm", "model", "bnb",
        ]
        assert solution.meta["degraded"] is True
        assert solution.meta["ladder_rung"] == "bnb"
        assert solution.feasible

    def test_terminal_pm_rung(self, small_instance):
        with chaos.inject(
            chaos.Fault("optimal.solve", "raise-timeout", at_call=1, count=None)
        ):
            with pytest.warns(DegradedResultWarning):
                solution, report = solve_with_ladder(
                    small_instance, default_ladder(time_limit_s=30.0, retries=0)
                )
        assert report.rung_used == "pm"
        assert solution.algorithm == "pm"
        assert len(report.demotions) == 3

    def test_validation_rejection_demotes(self, tight_capacity_context):
        instance = tight_capacity_context.instance(
            FailureScenario(frozenset({3}))
        )
        # One injected timeout knocks out the primary rung (whose PM
        # certificate would otherwise skip HiGHS entirely); the model rung
        # then gets a corrupted HiGHS vector whose extraction violates
        # Eq. 3, which the validator rejects — demoting to the pure-Python
        # B&B rung, which never touches highs.solve.x and answers.
        with chaos.inject(
            chaos.Fault("optimal.solve", "raise-timeout", at_call=1, count=1),
            chaos.Fault("highs.solve.x", "corrupt-solution", count=None),
        ):
            with pytest.warns(DegradedResultWarning):
                solution, report = solve_with_ladder(
                    instance, default_ladder(time_limit_s=30.0, retries=0)
                )
        assert report.rung_used == "bnb"
        demotions = {e.rung: e.reason for e in report.demotions}
        assert "validation" in demotions["model"]
        assert "eq3-capacity" in demotions["model"]
        assert solution.feasible

    def test_all_rungs_failing_raises(self, small_instance):
        policy = LadderPolicy(
            rungs=(Rung("sparse+warm", "sparse+warm", 30.0),)
        )
        with chaos.inject(
            chaos.Fault("optimal.solve", "raise-timeout", at_call=1, count=None)
        ):
            with pytest.raises(SolverError, match="all 1 ladder rungs failed"):
                solve_with_ladder(small_instance, policy)

    def test_ladder_matches_direct_solve(self, small_instance):
        from repro.fmssm.optimal import solve_optimal

        direct = solve_optimal(small_instance, time_limit_s=30.0)
        laddered, _ = solve_with_ladder(
            small_instance, default_ladder(time_limit_s=30.0)
        )
        assert laddered.mapping == direct.mapping
        assert laddered.sdn_pairs == direct.sdn_pairs
        assert laddered.meta["objective"] == direct.meta["objective"]
