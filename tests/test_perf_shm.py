"""Tests for the zero-copy shared-memory transport (repro.perf.shm)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.perf.coefficients import CoefficientArrays, CoefficientTable
from repro.perf.shm import (
    FanoutStats,
    SharedPayload,
    active_segments,
    dumps_shared,
    loads_shared,
    release_all,
    shm_available,
    timed_dumps_shared,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform without POSIX shared memory"
)


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must leave the segment registry empty."""
    yield
    leaked = active_segments()
    release_all()
    assert leaked == (), f"leaked shared-memory segments: {leaked}"


def test_round_trip_arrays():
    obj = {
        "a": np.arange(1000, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 500),
        "label": "payload",
    }
    payload, lease = dumps_shared(obj)
    assert lease is not None
    assert payload.segment is not None
    assert payload.shared_bytes == 1000 * 8 + 500 * 8
    # The big buffers left the in-band stream.
    assert payload.inband_bytes < 2000

    back = loads_shared(payload)
    assert back["label"] == "payload"
    np.testing.assert_array_equal(back["a"], obj["a"])
    np.testing.assert_array_equal(back["b"], obj["b"])
    lease.release()


def test_reconstructed_arrays_are_readonly_views():
    obj = {"a": np.arange(64, dtype=np.int64)}
    payload, lease = dumps_shared(obj)
    back = loads_shared(payload)
    assert back["a"].flags.writeable is False
    with pytest.raises((ValueError, TypeError)):
        back["a"][0] = 99
    lease.release()


def test_fallback_without_buffers():
    payload, lease = dumps_shared({"just": "strings", "n": 42})
    assert lease is None
    assert payload.segment is None
    assert loads_shared(payload) == {"just": "strings", "n": 42}


def test_fallback_on_unpicklable_is_not_taken_silently():
    # Protocol-5 failure falls back to plain pickle, which raises the
    # caller-visible error — dumps_shared never swallows it into a bad
    # payload.
    with pytest.raises(Exception):
        dumps_shared({"f": lambda: None})


def test_lease_release_is_idempotent():
    payload, lease = dumps_shared({"a": np.ones(16)})
    name = payload.segment
    assert name in active_segments()
    lease.release()
    assert name not in active_segments()
    lease.release()  # second release is a no-op


def test_active_segments_and_release_all():
    _, lease1 = dumps_shared({"a": np.ones(8)})
    _, lease2 = dumps_shared({"b": np.ones(8)})
    assert len(active_segments()) == 2
    release_all()
    assert active_segments() == ()
    lease1.release()
    lease2.release()


def test_loads_after_release_fails_cleanly():
    payload, lease = dumps_shared({"a": np.ones(8)})
    lease.release()
    with pytest.raises(FileNotFoundError):
        loads_shared(payload)


def test_shared_payload_is_picklable():
    payload, lease = dumps_shared({"a": np.arange(32)})
    clone = pickle.loads(pickle.dumps(payload))
    assert clone == payload
    back = loads_shared(clone)
    np.testing.assert_array_equal(back["a"], np.arange(32))
    lease.release()


def test_timed_dumps_reports_stats():
    payload, lease, stats = timed_dumps_shared({"a": np.arange(256)})
    assert isinstance(stats, FanoutStats)
    assert stats.transport == "shm"
    assert stats.payload_bytes == payload.inband_bytes
    assert stats.shared_bytes == payload.shared_bytes == 256 * 8
    assert stats.encode_s >= 0.0
    assert set(stats.to_dict()) == {
        "transport", "payload_bytes", "shared_bytes", "encode_s", "worker_init_s",
    }
    lease.release()


def test_plain_payload_round_trip_equality():
    payload = SharedPayload(inband=pickle.dumps([1, 2, 3]))
    assert payload.segment is None
    assert payload.shared_bytes == 0
    assert loads_shared(payload) == [1, 2, 3]


def _tiny_table() -> CoefficientTable:
    from repro.flows.demands import all_pairs_flows
    from repro.routing.path_count import make_counter
    from repro.topology.generators import grid_topology

    topology = grid_topology(3, 3)
    counter = make_counter(topology)
    flows = all_pairs_flows(topology)
    return CoefficientTable.from_counter(counter, flows)


def test_coefficient_arrays_round_trip_via_shm():
    table = _tiny_table()
    arrays = CoefficientArrays.from_table(table)
    payload, lease = dumps_shared(arrays)
    assert payload.segment is not None
    rebuilt = loads_shared(payload).to_table()
    assert rebuilt._flows == table._flows
    assert rebuilt._p == table._p
    assert rebuilt._pbar == table._pbar
    assert rebuilt._programmable_at == table._programmable_at
    assert rebuilt._max_pro == table._max_pro
    lease.release()
