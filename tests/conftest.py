"""Shared fixtures for the test suite.

Expensive objects (the ATT context, its flows and programmability model)
are session-scoped; tests must not mutate them.  Small synthetic
topologies are provided for solver cross-validation, where exact MILP
solves must stay fast.
"""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario
from repro.experiments.scenarios import ExperimentContext, custom_context, default_att_context
from repro.fmssm.instance import FMSSMInstance
from repro.topology.att import att_topology
from repro.topology.generators import ring_topology
from repro.types import FlowId, NodeId


@pytest.fixture(scope="session")
def att():
    """The embedded ATT topology."""
    return att_topology()


@pytest.fixture(scope="session")
def att_context() -> ExperimentContext:
    """The paper's default evaluation context (LFA counter, capacity 500)."""
    return default_att_context()


@pytest.fixture(scope="session")
def att_instance_13_20(att_context: ExperimentContext) -> FMSSMInstance:
    """The paper's flagship two-failure case (13, 20)."""
    return att_context.instance(FailureScenario(frozenset({13, 20})))


@pytest.fixture(scope="session")
def att_instance_5_13_20(att_context: ExperimentContext) -> FMSSMInstance:
    """A tight three-failure case where capacity runs out."""
    return att_context.instance(FailureScenario(frozenset({5, 13, 20})))


@pytest.fixture(scope="session")
def small_context() -> ExperimentContext:
    """A 10-node ring+chords network with 3 controllers — fast exact solves."""
    topology = ring_topology(10, chords=5, seed=7)
    return custom_context(
        topology,
        controller_sites=(0, 3, 7),
        capacity=160,
    )


@pytest.fixture(scope="session")
def small_instance(small_context: ExperimentContext) -> FMSSMInstance:
    """One controller down on the small network."""
    return small_context.instance(FailureScenario(frozenset({3})))


def make_tiny_instance(
    spare: dict[int, int] | None = None,
    lam: float = 0.001,
    ideal_delay_ms: float = 100.0,
) -> FMSSMInstance:
    """A hand-built 2-switch / 2-controller / 3-flow instance.

    Layout: offline switches 1 and 2; flows a=(10, 11), b=(10, 12),
    c=(11, 12); programmable pairs with p̄:

    ======== ======== ====
    switch   flow     p̄
    ======== ======== ====
    1        a        2
    1        b        3
    2        b        2
    2        c        4
    ======== ======== ====

    Flow a is recoverable only at switch 1; flow c only at switch 2.
    """
    switches: tuple[NodeId, ...] = (1, 2)
    controllers = (100, 200)
    flow_a: FlowId = (10, 11)
    flow_b: FlowId = (10, 12)
    flow_c: FlowId = (11, 12)
    from repro.flows.flow import Flow

    flows = {
        flow_a: Flow(10, 11, (10, 1, 11)),
        flow_b: Flow(10, 12, (10, 1, 2, 12)),
        flow_c: Flow(11, 12, (11, 2, 12)),
    }
    pbar = {
        (1, flow_a): 2,
        (1, flow_b): 3,
        (2, flow_b): 2,
        (2, flow_c): 4,
    }
    delay = {
        (1, 100): 1.0,
        (1, 200): 5.0,
        (2, 100): 4.0,
        (2, 200): 2.0,
    }
    return FMSSMInstance(
        switches=switches,
        controllers=controllers,
        spare=spare if spare is not None else {100: 2, 200: 2},
        delay=delay,
        flows=flows,
        pbar=pbar,
        gamma={1: 2, 2: 2},
        ideal_delay_ms=ideal_delay_ms,
        lam=lam,
        nearest={1: 100, 2: 200},
    )


@pytest.fixture
def tiny_instance() -> FMSSMInstance:
    """Fresh tiny instance per test (mutation safe)."""
    return make_tiny_instance()
