"""Property-based tests for routing and path counting (hypothesis)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.routing.kpaths import k_shortest_paths, path_weight
from repro.routing.ospf import compute_legacy_tables
from repro.routing.path_count import (
    BoundedSimplePathCounter,
    LoopFreeAlternateCounter,
    ShortestDagCounter,
)
from repro.routing.shortest import hop_distances_to
from repro.topology.generators import ring_topology, waxman_topology

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

topologies = st.builds(
    waxman_topology,
    n=st.integers(min_value=5, max_value=14),
    alpha=st.just(0.7),
    beta=st.just(0.4),
    seed=st.integers(min_value=0, max_value=50),
)

pairs = st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(lambda p: p[0] != p[1])


class TestCounterProperties:
    @SETTINGS
    @given(topologies, st.data())
    def test_lfa_bounded_by_degree(self, topo, data):
        src = data.draw(st.sampled_from(topo.nodes))
        dst = data.draw(st.sampled_from([n for n in topo.nodes if n != src]))
        counter = LoopFreeAlternateCounter(topo, slack=1)
        assert 1 <= counter.count(src, dst) <= topo.degree(src)

    @SETTINGS
    @given(topologies, st.data())
    def test_bounded_counter_monotone_in_slack(self, topo, data):
        src = data.draw(st.sampled_from(topo.nodes))
        dst = data.draw(st.sampled_from([n for n in topo.nodes if n != src]))
        counts = [
            BoundedSimplePathCounter(topo, slack=s).count(src, dst) for s in (0, 1, 2)
        ]
        assert counts == sorted(counts)

    @SETTINGS
    @given(topologies, st.data())
    def test_dag_count_at_most_bounded_slack0(self, topo, data):
        src = data.draw(st.sampled_from(topo.nodes))
        dst = data.draw(st.sampled_from([n for n in topo.nodes if n != src]))
        dag = ShortestDagCounter(topo, weight="hops").count(src, dst)
        bounded = BoundedSimplePathCounter(topo, slack=0).count(src, dst)
        # Both count hop-shortest paths; they must agree.
        assert dag == bounded

    @SETTINGS
    @given(topologies, st.data())
    def test_at_least_one_path_everywhere(self, topo, data):
        src = data.draw(st.sampled_from(topo.nodes))
        dst = data.draw(st.sampled_from([n for n in topo.nodes if n != src]))
        assert BoundedSimplePathCounter(topo, slack=0).count(src, dst) >= 1


class TestKPathProperties:
    @SETTINGS
    @given(topologies, st.data())
    def test_yen_results_sorted_simple_unique(self, topo, data):
        src = data.draw(st.sampled_from(topo.nodes))
        dst = data.draw(st.sampled_from([n for n in topo.nodes if n != src]))
        paths = k_shortest_paths(topo, src, dst, k=4, weight="delay")
        assert paths, "connected topology must have at least one path"
        weights = [path_weight(topo, p, "delay") for p in paths]
        assert weights == sorted(weights)
        assert len(set(paths)) == len(paths)
        for p in paths:
            assert p[0] == src and p[-1] == dst
            assert len(set(p)) == len(p)

    @SETTINGS
    @given(st.integers(min_value=4, max_value=12))
    def test_ring_has_exactly_two_paths(self, n):
        ring = ring_topology(n)
        paths = k_shortest_paths(ring, 0, n // 2, k=10, weight="hops")
        assert len(paths) == 2


class TestLegacyTableProperties:
    @SETTINGS
    @given(topologies)
    def test_legacy_tables_loop_free(self, topo):
        """Following hop-metric legacy tables always reaches the
        destination in exactly the shortest hop distance."""
        tables = compute_legacy_tables(topo, weight="hops")
        for dst in topo.nodes:
            dist = hop_distances_to(topo, dst)
            for src in topo.nodes:
                if src == dst:
                    continue
                node, steps = src, 0
                while node != dst:
                    node = tables[node].next_hop(dst)
                    steps += 1
                    assert steps <= topo.n_nodes, "routing loop"
                assert steps == dist[src]
