"""Tests for the LP modelling DSL."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ModelError
from repro.lp.model import EQUAL, GREATER_EQUAL, LESS_EQUAL, Constraint, LinExpr, Model


class TestVariables:
    def test_add_var_defaults(self):
        m = Model()
        x = m.add_var("x")
        assert x.lb == 0.0 and x.ub == math.inf and not x.integer

    def test_binary_shorthand(self):
        m = Model()
        y = m.add_var("y", binary=True)
        assert (y.lb, y.ub, y.integer) == (0.0, 1.0, True)

    def test_duplicate_name_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ModelError, match="duplicate"):
            m.add_var("x")

    def test_inverted_bounds_rejected(self):
        m = Model()
        with pytest.raises(ModelError):
            m.add_var("x", lb=5, ub=1)

    def test_counts(self):
        m = Model()
        m.add_var("x")
        m.add_var("y", binary=True)
        assert m.n_vars == 2
        assert m.n_integer_vars == 1


class TestExpressions:
    def setup_method(self):
        self.m = Model()
        self.x = self.m.add_var("x")
        self.y = self.m.add_var("y")

    def test_addition_and_scaling(self):
        expr = 2 * self.x + self.y * 3 + 4
        assert expr.coefficients[self.x.index] == 2
        assert expr.coefficients[self.y.index] == 3
        assert expr.constant == 4

    def test_subtraction(self):
        expr = self.x - self.y - 1
        assert expr.coefficients[self.y.index] == -1
        assert expr.constant == -1

    def test_rsub(self):
        expr = 5 - self.x
        assert expr.constant == 5
        assert expr.coefficients[self.x.index] == -1

    def test_negation(self):
        expr = -(2 * self.x)
        assert expr.coefficients[self.x.index] == -2

    def test_var_plus_var(self):
        expr = self.x + self.y
        assert len(expr.coefficients) == 2

    def test_total_builder(self):
        expr = LinExpr.total([(2.0, self.x), (3.0, self.y), (1.0, self.x)])
        assert expr.coefficients[self.x.index] == 3.0

    def test_repr_readable(self):
        expr = 2 * self.x - self.y
        text = repr(expr)
        assert "x" in text and "y" in text


class TestConstraints:
    def setup_method(self):
        self.m = Model()
        self.x = self.m.add_var("x")
        self.y = self.m.add_var("y")

    def test_le_constraint(self):
        c = self.m.add_constraint(self.x + self.y <= 5)
        assert c.sense == LESS_EQUAL
        assert c.rhs == 5

    def test_ge_constraint(self):
        c = self.m.add_constraint(2 * self.x >= self.y)
        assert c.sense == GREATER_EQUAL
        assert c.rhs == 0
        assert c.expr.coefficients[self.y.index] == -1

    def test_eq_constraint(self):
        c = self.m.add_constraint(1 * self.x == 3)
        assert c.sense == EQUAL
        assert c.rhs == 3

    def test_var_comparison_builds_constraint(self):
        c = self.x <= 4
        assert isinstance(c, Constraint)

    def test_constant_only_rejected(self):
        with pytest.raises(ModelError, match="no variables"):
            Constraint.build(3.0, LESS_EQUAL, 5.0)

    def test_named_constraint(self):
        c = self.m.add_constraint(self.x <= 1, name="cap")
        assert c.name == "cap"
        assert "cap" in repr(c)

    def test_non_constraint_rejected(self):
        with pytest.raises(ModelError):
            self.m.add_constraint(True)  # type: ignore[arg-type]


class TestObjective:
    def test_set_objective(self):
        m = Model()
        x = m.add_var("x")
        m.set_objective(2 * x + 1, sense="max")
        assert m.sense == "max"
        assert m.objective.constant == 1

    def test_var_objective_promoted(self):
        m = Model()
        x = m.add_var("x")
        m.set_objective(x)
        assert m.objective.coefficients[x.index] == 1

    def test_invalid_sense(self):
        m = Model()
        x = m.add_var("x")
        with pytest.raises(ModelError):
            m.set_objective(x, sense="maximize!")

    def test_default_objective_zero(self):
        m = Model()
        m.add_var("x")
        assert m.objective.coefficients == {}

    def test_repr(self):
        m = Model("demo")
        m.add_var("x", binary=True)
        assert "demo" in repr(m)
