"""Tests for the experiment harness: scenarios, runner, figures, tables."""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario
from repro.experiments.figures import failure_figure_data, headline_ratios
from repro.experiments.report import render_figure, render_table, render_table3
from repro.experiments.runner import PAPER_ALGORITHMS, run_failure_sweep, run_scenario
from repro.experiments.scenarios import custom_context, default_att_context
from repro.experiments.tables import PAPER_TABLE3_FLOWS, table3_data
from repro.topology.generators import grid_topology

FAST_ALGORITHMS = ("retroflow", "pg", "pm")


class TestContexts:
    def test_default_att_context(self, att_context):
        assert att_context.topology.n_nodes == 25
        assert len(att_context.flows) == 600
        assert att_context.plane.n_controllers == 6

    def test_capacity_override(self):
        context = default_att_context(capacity=600)
        assert context.plane.controller(2).capacity == 600

    def test_counter_strategy_override(self):
        from repro.routing.path_count import ShortestDagCounter

        context = default_att_context(counter_strategy="dag", weight="hops")
        assert isinstance(context.programmability.counter, ShortestDagCounter)

    def test_custom_context_auto_partition(self):
        topology = grid_topology(3, 4)
        context = custom_context(topology, controller_sites=(0, 11), capacity=200)
        domains = [context.plane.domain(c) for c in context.plane.controller_ids]
        assert sum(len(d) for d in domains) == 12


class TestRunner:
    def test_run_scenario_produces_all_algorithms(self, att_context):
        result = run_scenario(
            att_context, FailureScenario(frozenset({13})), FAST_ALGORITHMS
        )
        assert set(result.evaluations) == set(FAST_ALGORITHMS)
        assert result.name == "(13)"

    def test_relative_programmability_reference_is_one(self, att_context):
        result = run_scenario(
            att_context, FailureScenario(frozenset({13})), FAST_ALGORITHMS
        )
        relative = result.relative_total_programmability("retroflow")
        assert relative["retroflow"] == pytest.approx(1.0)
        assert relative["pm"] >= 1.0

    def test_sweep_counts(self, att_context):
        results = run_failure_sweep(att_context, 1, FAST_ALGORITHMS)
        assert len(results) == 6
        assert len({r.name for r in results}) == 6


class TestFigures:
    @pytest.fixture(scope="class")
    def fig1_data(self, att_context):
        return failure_figure_data(att_context, 1, FAST_ALGORITHMS)

    def test_case_count(self, fig1_data):
        assert len(fig1_data["cases"]) == 6

    def test_metrics_present(self, fig1_data):
        record = fig1_data["cases"][0]["algorithms"]["pm"]
        for key in (
            "programmability_summary",
            "total_programmability",
            "recovered_flows_pct",
            "per_flow_overhead_ms",
        ):
            assert key in record

    def test_single_failure_parity(self, fig1_data):
        """Fig. 4: under one failure all algorithms recover everything."""
        for case in fig1_data["cases"]:
            for name in FAST_ALGORITHMS:
                assert case["algorithms"][name]["recovered_flows_pct"] == pytest.approx(100.0)

    def test_headline_ratios(self, fig1_data):
        ratios = headline_ratios(fig1_data)
        assert ratios["max_pct"] >= ratios["min_pct"] >= 100.0 - 1e-6
        assert ratios["argmax_case"] in {c["case"] for c in fig1_data["cases"]}

    def test_render_figure_contains_sections(self, fig1_data):
        text = render_figure(fig1_data)
        for marker in ("(a)", "(b)", "(c)", "(d)", "(e)", "(f)"):
            assert marker in text


class TestTable3:
    def test_rows_cover_all_switches(self, att_context):
        data = table3_data(att_context)
        assert len(data["rows"]) == 25
        assert {r["switch"] for r in data["rows"]} == set(range(25))

    def test_totals_close_to_paper(self, att_context):
        data = table3_data(att_context)
        assert data["paper_total"] == 2055
        assert abs(data["measured_total"] - data["paper_total"]) / 2055 < 0.05

    def test_spare_capacity_positive(self, att_context):
        data = table3_data(att_context)
        assert all(v > 0 for v in data["spare_capacity"].values())

    def test_paper_reference_complete(self):
        assert len(PAPER_TABLE3_FLOWS) == 25
        assert sum(PAPER_TABLE3_FLOWS.values()) == 2055

    def test_render(self, att_context):
        text = render_table3(table3_data(att_context))
        assert "Dallas" in text
        assert "2055" in text


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("a", "bb"), [(1, 2), (30, 40)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(("a", "b"), [(1,)])

    def test_float_formatting(self):
        text = render_table(("x",), [(1.23456,)])
        assert "1.23" in text
