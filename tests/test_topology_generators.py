"""Tests for synthetic topology generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import TopologyError
from repro.topology.generators import (
    grid_topology,
    ring_topology,
    star_topology,
    waxman_topology,
)


class TestRing:
    def test_plain_ring(self):
        topo = ring_topology(8)
        assert topo.n_nodes == 8
        assert topo.n_links == 8
        assert all(topo.degree(n) == 2 for n in topo.nodes)

    def test_ring_with_chords(self):
        topo = ring_topology(10, chords=4, seed=3)
        assert topo.n_links == 14

    def test_deterministic_for_seed(self):
        assert ring_topology(10, chords=3, seed=5).edges() == ring_topology(10, chords=3, seed=5).edges()

    def test_different_seeds_differ(self):
        a = ring_topology(12, chords=6, seed=1).edges()
        b = ring_topology(12, chords=6, seed=2).edges()
        assert a != b

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            ring_topology(2)

    def test_too_many_chords_rejected(self):
        with pytest.raises(TopologyError, match="chords"):
            ring_topology(4, chords=100)


class TestGrid:
    def test_dimensions(self):
        topo = grid_topology(3, 4)
        assert topo.n_nodes == 12
        # rows*(cols-1) + cols*(rows-1) edges
        assert topo.n_links == 3 * 3 + 4 * 2

    def test_corner_degree_two(self):
        topo = grid_topology(3, 3)
        assert topo.degree(0) == 2

    def test_single_row_is_a_path(self):
        topo = grid_topology(1, 5)
        assert topo.n_links == 4

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            grid_topology(1, 1)


class TestWaxman:
    def test_connected_and_sized(self):
        topo = waxman_topology(20, seed=1)
        assert topo.n_nodes == 20
        assert nx.is_connected(topo.graph)

    def test_deterministic_for_seed(self):
        assert waxman_topology(15, seed=9).edges() == waxman_topology(15, seed=9).edges()

    def test_higher_alpha_denser(self):
        sparse = waxman_topology(25, alpha=0.3, beta=0.3, seed=2)
        dense = waxman_topology(25, alpha=0.9, beta=0.5, seed=2)
        assert dense.n_links > sparse.n_links

    def test_bad_parameters_rejected(self):
        with pytest.raises(TopologyError):
            waxman_topology(10, alpha=0.0)
        with pytest.raises(TopologyError):
            waxman_topology(10, beta=-1.0)
        with pytest.raises(TopologyError):
            waxman_topology(1)

    def test_tiny_alpha_still_connected_via_backbone(self):
        # The MST backbone guarantees connectivity even when the Waxman
        # probability adds virtually nothing.
        topo = waxman_topology(30, alpha=1e-9, beta=0.01, seed=0)
        assert nx.is_connected(topo.graph)
        assert topo.n_links == 29  # exactly the spanning tree


class TestStar:
    def test_hub_and_spokes(self):
        topo = star_topology(6)
        assert topo.n_nodes == 7
        assert topo.degree(0) == 6
        assert all(topo.degree(n) == 1 for n in topo.nodes if n != 0)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            star_topology(1)
