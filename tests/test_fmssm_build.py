"""Tests for building FMSSM instances from networks."""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario
from repro.fmssm.build import build_instance, default_lambda


class TestDefaultLambda:
    def test_below_priority_bound(self):
        # lambda * max_obj2 must stay below 1 so r keeps priority.
        assert default_lambda(1000) * 1000 < 1.0

    def test_zero_total_safe(self):
        assert default_lambda(0) > 0


class TestBuildInstance:
    def test_offline_flows_touch_offline_switches(self, att_context):
        scenario = FailureScenario(frozenset({13}))
        instance = att_context.instance(scenario)
        offline = set(instance.switches)
        for flow in instance.flows.values():
            assert offline & set(flow.path)

    def test_online_flows_excluded(self, att_context):
        scenario = FailureScenario(frozenset({13}))
        instance = att_context.instance(scenario)
        offline = set(instance.switches)
        included = set(instance.flows)
        for flow in att_context.flows:
            if not (offline & set(flow.path)):
                assert flow.flow_id not in included

    def test_spare_matches_plane(self, att_context):
        scenario = FailureScenario(frozenset({13, 20}))
        instance = att_context.instance(scenario)
        spare = att_context.plane.spare_capacity(att_context.flows)
        for controller in instance.controllers:
            assert instance.spare[controller] == spare[controller]

    def test_gamma_matches_table_counts(self, att_context):
        from repro.flows.paths import switch_flow_counts

        scenario = FailureScenario(frozenset({13, 20}))
        instance = att_context.instance(scenario)
        gamma = switch_flow_counts(att_context.flows)
        for switch in instance.switches:
            assert instance.gamma[switch] == gamma[switch]

    def test_pbar_only_on_offline_transit_switches(self, att_context):
        scenario = FailureScenario(frozenset({13, 20}))
        instance = att_context.instance(scenario)
        for (switch, flow_id), value in instance.pbar.items():
            flow = instance.flows[flow_id]
            assert switch in flow.transit_switches
            assert value >= 2

    def test_nearest_is_min_delay(self, att_context):
        scenario = FailureScenario(frozenset({13, 20}))
        instance = att_context.instance(scenario)
        for switch in instance.switches:
            nearest = instance.nearest[switch]
            best = min(instance.delay[(switch, c)] for c in instance.controllers)
            assert instance.delay[(switch, nearest)] == pytest.approx(best)

    def test_ideal_delay_positive(self, att_context):
        scenario = FailureScenario(frozenset({13, 20}))
        instance = att_context.instance(scenario)
        assert instance.ideal_delay_ms > 0

    def test_default_lambda_applied(self, att_context):
        scenario = FailureScenario(frozenset({13}))
        instance = att_context.instance(scenario)
        assert 0 < instance.lam * instance.total_max_programmability() < 1

    def test_explicit_lambda(self, att_context):
        scenario = FailureScenario(frozenset({13}))
        instance = build_instance(
            att_context.plane,
            att_context.flows,
            att_context.programmability,
            scenario,
            lam=0.25,
        )
        assert instance.lam == 0.25

    def test_instance_cache(self, att_context):
        scenario = FailureScenario(frozenset({13}))
        assert att_context.instance(scenario) is att_context.instance(
            FailureScenario(frozenset({13}))
        )
