"""Tests for the Flow value object."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError
from repro.flows.flow import Flow


class TestConstruction:
    def test_valid_flow(self):
        flow = Flow(0, 3, (0, 1, 2, 3))
        assert flow.flow_id == (0, 3)
        assert flow.hop_count == 3
        assert flow.demand == 1.0

    def test_path_coerced_to_tuple(self):
        flow = Flow(0, 2, [0, 1, 2])
        assert isinstance(flow.path, tuple)

    def test_same_endpoints_rejected(self):
        with pytest.raises(FlowError, match="differ"):
            Flow(1, 1, (1, 1))

    def test_short_path_rejected(self):
        with pytest.raises(FlowError, match="at least 2"):
            Flow(0, 1, (0,))

    def test_path_endpoint_mismatch_rejected(self):
        with pytest.raises(FlowError, match="does not run"):
            Flow(0, 3, (0, 1, 2))
        with pytest.raises(FlowError, match="does not run"):
            Flow(1, 3, (0, 1, 3))

    def test_loop_in_path_rejected(self):
        with pytest.raises(FlowError, match="revisits"):
            Flow(0, 3, (0, 1, 0, 3))

    def test_negative_demand_rejected(self):
        with pytest.raises(FlowError, match="demand"):
            Flow(0, 1, (0, 1), demand=-2.0)

    def test_demand_not_in_equality(self):
        assert Flow(0, 1, (0, 1), demand=1.0) == Flow(0, 1, (0, 1), demand=9.0)


class TestNavigation:
    flow = Flow(0, 3, (0, 1, 2, 3))

    def test_transit_switches_exclude_destination(self):
        assert self.flow.transit_switches == (0, 1, 2)

    def test_traverses(self):
        assert self.flow.traverses(2)
        assert not self.flow.traverses(9)

    def test_next_hop(self):
        assert self.flow.next_hop(0) == 1
        assert self.flow.next_hop(2) == 3

    def test_next_hop_at_destination_rejected(self):
        with pytest.raises(FlowError, match="destination"):
            self.flow.next_hop(3)

    def test_next_hop_off_path_rejected(self):
        with pytest.raises(FlowError, match="does not traverse"):
            self.flow.next_hop(9)

    def test_str_shows_path(self):
        assert "0->1->2->3" in str(self.flow)

    def test_two_node_flow(self):
        flow = Flow(5, 6, (5, 6))
        assert flow.transit_switches == (5,)
        assert flow.hop_count == 1
