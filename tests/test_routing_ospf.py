"""Tests for legacy (OSPF-style) routing tables."""

from __future__ import annotations

import pytest

from repro.exceptions import RoutingError
from repro.flows.demands import all_pairs_flows
from repro.routing.ospf import compute_legacy_tables
from repro.topology.generators import grid_topology


@pytest.fixture(scope="module")
def grid():
    return grid_topology(3, 3)


@pytest.fixture(scope="module")
def tables(grid):
    return compute_legacy_tables(grid, weight="hops")


class TestLegacyTables:
    def test_every_switch_has_a_table(self, grid, tables):
        assert set(tables) == set(grid.nodes)

    def test_full_destination_coverage(self, grid, tables):
        for node, table in tables.items():
            assert len(table) == grid.n_nodes - 1
            assert node not in table.destinations()

    def test_next_hop_is_neighbor(self, grid, tables):
        for node, table in tables.items():
            for dst in table.destinations():
                assert grid.has_edge(node, table.next_hop(dst))

    def test_next_hops_decrease_hop_distance(self, grid, tables):
        from repro.routing.shortest import hop_distances_to

        for dst in grid.nodes:
            dist = hop_distances_to(grid, dst)
            for node, table in tables.items():
                if node == dst:
                    continue
                assert dist[table.next_hop(dst)] == dist[node] - 1

    def test_self_destination_rejected(self, tables):
        with pytest.raises(RoutingError, match="itself"):
            tables[0].next_hop(0)

    def test_unknown_destination_rejected(self, tables):
        with pytest.raises(RoutingError, match="no legacy route"):
            tables[0].next_hop(99)

    def test_hop_tables_follow_flow_paths(self, grid, tables):
        """Legacy-mode flows stay on their original hop-shortest paths."""
        for flow in all_pairs_flows(grid, weight="hops"):
            node = flow.src
            hops = 0
            while node != flow.dst:
                node = tables[node].next_hop(flow.dst)
                hops += 1
            assert hops == flow.hop_count

    def test_repr(self, tables):
        assert "LegacyRoutingTable" in repr(tables[0])
