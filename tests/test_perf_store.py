"""Cross-run solve store: fingerprints, records, dedup, concurrency.

The contract (docs/performance.md §store): a :class:`~repro.perf.store.
SolveStore` hit must replay a solve **bit-identically** — the same
mapping, pairs, loads and evaluation a fresh solve of that scenario
would produce — and the store must survive hostile filesystems: torn
writer crashes, corrupted records, concurrent parent processes and GC
racing readers all degrade to cache misses, never to wrong answers.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_perf_parallel_sweep import assert_sweeps_identical

from repro.baselines import get_algorithm
from repro.control.failures import FailureScenario
from repro.experiments.scenarios import custom_context
from repro.geo import GeoPoint
from repro.perf.store import (
    SolveStore,
    canonical_instance,
    canonical_solution,
    instance_fingerprint,
    solution_from_canonical,
    solve_key,
    topology_fingerprint,
)
from repro.perf.sweep import parallel_sweep, store_summary
from repro.resilience import chaos
from repro.resilience.chaos import Fault
from repro.topology.graph import Topology

FAST_ALGORITHMS = ("pm", "retroflow", "pg", "nearest")

CONTROLLERS = (0, 3, 7)


@pytest.fixture(scope="module")
def ring_context():
    from repro.topology.generators import ring_topology

    return custom_context(
        ring_topology(10, chords=5, seed=7),
        controller_sites=CONTROLLERS,
        capacity=160,
    )


@pytest.fixture(scope="module")
def ring_scenarios():
    return tuple(FailureScenario(frozenset({c})) for c in CONTROLLERS)


@pytest.fixture(scope="module")
def ring_serial(ring_context, ring_scenarios):
    return parallel_sweep(ring_context, ring_scenarios, FAST_ALGORITHMS)


def twin_star_context():
    """A hub with two *identical* arms — the symmetry-dedup fixture.

    Failing the arm-A controller and failing the arm-B controller induce
    structurally equivalent FMSSM instances whose canonical relabelings
    are order-preserving, so their fingerprints collide and the sweep
    solves one representative.
    """
    point = GeoPoint(10.0, 20.0)
    nodes = {i: (f"s{i}", point) for i in range(7)}
    edges = [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6)]
    topology = Topology("twinstar", nodes, edges)
    domains = {0: (0,), 1: (1, 2, 3), 4: (4, 5, 6)}
    return custom_context(
        topology, controller_sites=[0, 1, 4], capacity=100, domains=domains
    )


# ----------------------------------------------------------------------
# Canonical fingerprints
# ----------------------------------------------------------------------

class TestFingerprint:
    def test_deterministic_across_groundings(self, ring_context):
        scenario = FailureScenario(frozenset({3}))
        a = instance_fingerprint(ring_context.instance(scenario))
        b = instance_fingerprint(ring_context.instance(scenario))
        assert a == b
        assert len(a) == 32

    def test_distinguishes_scenarios(self, ring_context, ring_scenarios):
        fingerprints = {
            instance_fingerprint(ring_context.instance(s))
            for s in ring_scenarios
        }
        assert len(fingerprints) == len(ring_scenarios)

    def test_twin_arms_collide(self):
        context = twin_star_context()
        a = instance_fingerprint(context.instance(FailureScenario(frozenset({1}))))
        b = instance_fingerprint(context.instance(FailureScenario(frozenset({4}))))
        assert a == b

    def test_cached_on_the_instance(self, ring_context):
        instance = ring_context.instance(FailureScenario(frozenset({0})))
        canon = canonical_instance(instance)
        assert canonical_instance(instance) is canon

    def test_solve_key_separates_algorithms_and_params(self):
        fp = "ab" * 16
        assert solve_key(fp, "pm", 300.0, "sparse") == solve_key(fp, "pm", 10.0, "model")
        assert solve_key(fp, "pm", 300.0, "sparse") != solve_key(fp, "retroflow", 300.0, "sparse")
        # Heavy algorithms key on their solve parameters too.
        assert solve_key(fp, "optimal", 300.0, "sparse") != solve_key(fp, "optimal", 10.0, "sparse")
        assert solve_key(fp, "optimal", 300.0, "sparse") != solve_key(fp, "optimal", 300.0, "model")

    def test_topology_fingerprint_stable(self, ring_context):
        assert topology_fingerprint(ring_context.topology) == topology_fingerprint(
            ring_context.topology
        )


# ----------------------------------------------------------------------
# Canonical solution round-trip
# ----------------------------------------------------------------------

class TestCanonicalRoundTrip:
    def _assert_round_trip(self, instance, solution):
        canon = canonical_instance(instance)
        payload = canonical_solution(solution, canon)
        json.dumps(payload)  # must be JSON-safe
        restored = solution_from_canonical(payload, canon)
        assert restored.algorithm == solution.algorithm
        assert restored.mapping == solution.mapping
        assert restored.sdn_pairs == solution.sdn_pairs
        assert restored.pair_controller == solution.pair_controller
        assert restored.load_override == solution.load_override
        assert restored.extra_overhead_ms == solution.extra_overhead_ms
        assert restored.feasible == solution.feasible
        assert restored.meta == solution.meta

    @pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
    def test_heuristics_round_trip(self, small_instance, algorithm):
        solution = get_algorithm(algorithm)(small_instance)
        self._assert_round_trip(small_instance, solution)

    def test_optimal_round_trips(self, small_instance):
        from repro.fmssm.optimal import solve_optimal

        solution = solve_optimal(small_instance, time_limit_s=30.0)
        self._assert_round_trip(small_instance, solution)

    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        failed=st.sets(st.sampled_from(CONTROLLERS), min_size=1, max_size=2),
        algorithm=st.sampled_from(FAST_ALGORITHMS),
    )
    def test_property_round_trip(self, ring_context, failed, algorithm):
        instance = ring_context.instance(FailureScenario(frozenset(failed)))
        solution = get_algorithm(algorithm)(instance)
        self._assert_round_trip(instance, solution)


# ----------------------------------------------------------------------
# The record store itself
# ----------------------------------------------------------------------

class TestRecordStore:
    def test_put_get_round_trip(self, tmp_path):
        store = SolveStore(tmp_path)
        assert store.get("k") is None
        assert store.put("k", {"x": 1})
        assert store.get("k") == {"x": 1}
        assert store.stats["writes"] == 1

    def test_put_if_absent(self, tmp_path):
        store = SolveStore(tmp_path)
        assert store.put("k", {"x": 1})
        assert not store.put("k", {"x": 2})
        assert store.get("k") == {"x": 1}

    def test_put_many_batches_and_dedupes(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put("a", {"v": 0})
        written = store.put_many([
            ("a", {"v": 99}),  # already present: skipped
            ("b", {"v": 1}),
            ("b", {"v": 2}),  # duplicate within the batch: skipped
            ("c", {"v": 3}),
        ])
        assert written == 2
        assert store.get("a") == {"v": 0}
        assert store.get("b") == {"v": 1}
        assert store.get("c") == {"v": 3}

    def test_second_handle_sees_writes(self, tmp_path):
        writer = SolveStore(tmp_path)
        reader = SolveStore(tmp_path)
        assert reader.get("k") is None
        writer.put("k", {"x": 1})
        assert reader.get("k") == {"x": 1}

    def test_corrupt_record_skipped(self, tmp_path):
        store = SolveStore(tmp_path, shards=1)
        store.put("good", {"x": 1})
        with open(store._shard_path(0), "ab") as fh:
            fh.write(b'{"v":1,"key":"bad","sha":"0000000000000000","payload":{}}\n')
            fh.write(b"not json at all\n")
        fresh = SolveStore(tmp_path, shards=1)
        assert fresh.get("bad") is None
        assert fresh.get("good") == {"x": 1}
        assert fresh.stats["corrupt"] >= 2

    def test_torn_write_recovered(self, tmp_path):
        store = SolveStore(tmp_path, shards=1)
        store.put("first", {"x": 1})
        with open(store._shard_path(0), "ab") as fh:
            fh.write(b'{"v":1,"key":"torn","sha":"dead')  # crashed writer
        fresh = SolveStore(tmp_path, shards=1)
        assert fresh.get("first") == {"x": 1}
        assert fresh.get("torn") is None
        # An append after the torn tail isolates the fragment on its own
        # line; the new record and the old one both survive.
        victim = SolveStore(tmp_path, shards=1)
        victim.put("second", {"x": 2})
        final = SolveStore(tmp_path, shards=1)
        assert final.get("second") == {"x": 2}
        assert final.get("first") == {"x": 1}

    def test_gc_drops_oldest_records(self, tmp_path):
        store = SolveStore(tmp_path, shards=1)
        for n in range(12):
            store.put(f"k{n}", {"n": n, "pad": "x" * 64})
        budget = store.record_bytes() // 3
        dropped = store.gc(max_bytes=budget)
        assert dropped > 0
        assert store.record_bytes() <= budget
        # Newest records survive, oldest go first.
        assert store.get("k11") == {"n": 11, "pad": "x" * 64}
        assert store.get("k0") is None

    def test_gc_under_warm_reader(self, tmp_path):
        writer = SolveStore(tmp_path, shards=1)
        reader = SolveStore(tmp_path, shards=1)
        for n in range(12):
            writer.put(f"k{n}", {"n": n, "pad": "x" * 64})
        assert reader.get("k0") == {"n": 0, "pad": "x" * 64}  # warm index
        writer.gc(max_bytes=writer.record_bytes() // 3)
        # The reader's stat-validated index notices the rewrite: dropped
        # records read as misses, survivors still hit.
        assert reader.get("k0") is None
        assert reader.get("k11") == {"n": 11, "pad": "x" * 64}

    def test_artifact_round_trip(self, tmp_path):
        import numpy as np

        store = SolveStore(tmp_path)
        arrays = {"a": np.arange(6, dtype=np.int64).reshape(2, 3),
                  "b": np.array([1.5, 2.5])}
        assert store.put_arrays("prep-test", arrays)
        assert not store.put_arrays("prep-test", arrays)  # already there
        out = SolveStore(tmp_path).get_arrays("prep-test")
        assert out is not None
        assert np.array_equal(out["a"], arrays["a"])
        assert np.array_equal(out["b"], arrays["b"])

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        import numpy as np

        store = SolveStore(tmp_path)
        store.put_arrays("prep-bad", {"a": np.arange(3)})
        path = store._artifact_path("prep-bad")
        path.write_bytes(b"\x00" * 16)
        fresh = SolveStore(tmp_path)
        assert fresh.get_arrays("prep-bad") is None
        assert fresh.stats["corrupt"] >= 1

    def test_summary_is_json_safe(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put("k", {"x": 1})
        store.get("k")
        store.get("missing")
        summary = store.summary()
        assert json.dumps(summary)
        assert summary["writes"] == 1
        assert summary["hits"] == 1
        assert summary["misses"] == 1


# ----------------------------------------------------------------------
# Sweep integration: hits replay bit-identically
# ----------------------------------------------------------------------

class TestSweepIntegration:
    def test_second_run_hits_and_is_identical(
        self, tmp_path, ring_context, ring_scenarios, ring_serial
    ):
        cold = parallel_sweep(
            ring_context, ring_scenarios, FAST_ALGORITHMS,
            max_workers=1, store=SolveStore(tmp_path),
        )
        assert_sweeps_identical(ring_serial, cold)
        warm = parallel_sweep(
            ring_context, ring_scenarios, FAST_ALGORITHMS,
            max_workers=1, store=SolveStore(tmp_path),
        )
        assert_sweeps_identical(ring_serial, warm)
        summary = store_summary(warm)
        assert summary["hits"] == len(ring_scenarios) * len(FAST_ALGORITHMS)
        assert summary["misses"] == 0
        for result in warm:
            stamp = result.meta["store"]
            assert sorted(stamp["hits"]) == sorted(FAST_ALGORITHMS)
            assert stamp["misses"] == []
            assert len(stamp["fingerprint"]) == 32

    def test_store_provenance_on_cold_run(
        self, tmp_path, ring_context, ring_scenarios
    ):
        cold = parallel_sweep(
            ring_context, ring_scenarios, FAST_ALGORITHMS,
            max_workers=1, store=SolveStore(tmp_path),
        )
        summary = store_summary(cold)
        assert summary["hits"] == 0
        assert summary["misses"] == len(ring_scenarios) * len(FAST_ALGORITHMS)
        assert store_summary([]) is None

    def test_no_store_means_no_stamps(self, ring_serial):
        assert store_summary(ring_serial) is None

    def test_exact_solver_hits_are_identical(self, tmp_path, small_context):
        scenarios = tuple(
            FailureScenario(frozenset({c})) for c in CONTROLLERS
        )
        algorithms = ("optimal", "pm")
        serial = parallel_sweep(
            small_context, scenarios, algorithms,
            max_workers=1, optimal_time_limit_s=30.0,
        )
        cold = parallel_sweep(
            small_context, scenarios, algorithms,
            max_workers=1, optimal_time_limit_s=30.0,
            store=SolveStore(tmp_path),
        )
        warm = parallel_sweep(
            small_context, scenarios, algorithms,
            max_workers=1, optimal_time_limit_s=30.0,
            store=SolveStore(tmp_path),
        )
        assert_sweeps_identical(serial, cold)
        assert_sweeps_identical(serial, warm)
        assert store_summary(warm)["hits"] == len(scenarios) * len(algorithms)

    def test_hits_replay_under_validation(
        self, tmp_path, ring_context, ring_scenarios, ring_serial
    ):
        parallel_sweep(
            ring_context, ring_scenarios, FAST_ALGORITHMS,
            max_workers=1, store=SolveStore(tmp_path),
        )
        # validate=True routes every hit through the independent
        # validator (the policy fresh solves get): all hits survive.
        warm = parallel_sweep(
            ring_context, ring_scenarios, FAST_ALGORITHMS,
            max_workers=1, store=SolveStore(tmp_path), validate=True,
        )
        assert_sweeps_identical(ring_serial, warm)
        summary = store_summary(warm)
        assert summary["hits"] == len(ring_scenarios) * len(FAST_ALGORITHMS)
        assert summary["misses"] == 0

    def test_symmetric_scenarios_dedupe_to_one_solve(self, tmp_path):
        context = twin_star_context()
        scenarios = tuple(
            FailureScenario(frozenset({c})) for c in (0, 1, 4)
        )
        serial = parallel_sweep(context, scenarios, FAST_ALGORITHMS, max_workers=1)
        deduped = parallel_sweep(
            context, scenarios, FAST_ALGORITHMS,
            max_workers=1, store=SolveStore(tmp_path),
        )
        assert_sweeps_identical(serial, deduped)
        summary = store_summary(deduped)
        assert summary["dedup"] == 1
        stamps = {r.name: r.meta["store"] for r in deduped}
        assert stamps["(4)"]["dedup_of"] == "(1)"
        assert "dedup_of" not in stamps["(1)"]

    def test_chaos_bypasses_the_store(
        self, tmp_path, ring_context, ring_scenarios
    ):
        store = SolveStore(tmp_path)
        # An armed-but-never-firing plan still marks the run chaotic.
        with chaos.inject(Fault("sweep.task", "raise-error", at_call=10**9)):
            results = parallel_sweep(
                ring_context, ring_scenarios, FAST_ALGORITHMS,
                max_workers=1, store=store,
            )
        assert all("store" not in r.meta for r in results)
        assert store.record_bytes() == 0
        assert store.stats["writes"] == 0

    def test_different_time_limits_do_not_cross_hit(
        self, tmp_path, small_context
    ):
        scenarios = (FailureScenario(frozenset({3})),)
        first = parallel_sweep(
            small_context, scenarios, ("optimal",),
            max_workers=1, optimal_time_limit_s=30.0,
            store=SolveStore(tmp_path),
        )
        second = parallel_sweep(
            small_context, scenarios, ("optimal",),
            max_workers=1, optimal_time_limit_s=29.0,
            store=SolveStore(tmp_path),
        )
        assert store_summary(first)["misses"] == 1
        assert store_summary(second)["misses"] == 1  # distinct solve keys

    @settings(
        max_examples=4, deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow, HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        failed=st.lists(
            st.sets(st.sampled_from(CONTROLLERS), min_size=1, max_size=2),
            min_size=1, max_size=3, unique_by=lambda s: frozenset(s),
        ),
        algorithms=st.sets(
            st.sampled_from(FAST_ALGORITHMS), min_size=1, max_size=4
        ),
    )
    def test_property_hits_equal_cold_solves(
        self, ring_context, failed, algorithms
    ):
        scenarios = tuple(FailureScenario(frozenset(f)) for f in failed)
        algorithms = tuple(sorted(algorithms))
        with tempfile.TemporaryDirectory() as root:
            cold = parallel_sweep(
                ring_context, scenarios, algorithms,
                max_workers=1, store=SolveStore(root),
            )
            warm = parallel_sweep(
                ring_context, scenarios, algorithms,
                max_workers=1, store=SolveStore(root),
            )
        assert_sweeps_identical(cold, warm)
        assert store_summary(warm)["misses"] == 0


# ----------------------------------------------------------------------
# Concurrency: parent processes racing on one store directory
# ----------------------------------------------------------------------

_CHILD_SWEEP = """
import json, sys
from repro.control.failures import FailureScenario
from repro.experiments.scenarios import custom_context
from repro.perf.store import SolveStore
from repro.perf.sweep import parallel_sweep, store_summary
from repro.topology.generators import ring_topology

context = custom_context(
    ring_topology(10, chords=5, seed=7),
    controller_sites=(0, 3, 7), capacity=160,
)
scenarios = tuple(FailureScenario(frozenset({c})) for c in (0, 3, 7))
store = SolveStore(sys.argv[1])
results = parallel_sweep(
    context, scenarios, ("pm", "retroflow", "pg", "nearest"),
    max_workers=1, store=store,
)
print(json.dumps({
    "summary": store_summary(results),
    "loads": {
        r.name: sorted(r.evaluations["pm"].controller_load.items())
        for r in results
    },
}))
"""


def _spawn_child(root):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD_SWEEP, str(root)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )


class TestConcurrency:
    def test_two_parents_share_one_store(self, tmp_path, ring_serial):
        first = _spawn_child(tmp_path)
        second = _spawn_child(tmp_path)
        outs = []
        for child in (first, second):
            out, err = child.communicate(timeout=300)
            assert child.returncode == 0, err
            outs.append(json.loads(out.splitlines()[-1]))
        # Both children saw identical answers through the shared store.
        assert outs[0]["loads"] == outs[1]["loads"]
        # No duplicate records despite the race: every key is unique.
        store = SolveStore(tmp_path)
        keys = []
        for shard in range(store.shards):
            keys.extend(store._shard_records(shard))
        assert len(keys) == len(set(keys))
        # A third parent gets pure hits.
        third = _spawn_child(tmp_path)
        out, err = third.communicate(timeout=300)
        assert third.returncode == 0, err
        summary = json.loads(out.splitlines()[-1])["summary"]
        assert summary["misses"] == 0
        assert summary["hits"] == 12

    def test_racing_writers_never_duplicate_keys(self, tmp_path):
        script = """
import sys
from repro.perf.store import SolveStore
store = SolveStore(sys.argv[1], shards=2)
for n in range(60):
    store.put(f"key-{n}", {"n": n})
store.put_many([(f"batch-{n}", {"n": n}) for n in range(60)])
print(store.stats["writes"])
"""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        children = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                env=env, text=True,
            )
            for _ in range(2)
        ]
        for child in children:
            out, err = child.communicate(timeout=120)
            assert child.returncode == 0, err
        store = SolveStore(tmp_path, shards=2)
        keys = []
        for shard in range(store.shards):
            keys.extend(store._shard_records(shard))
        assert sorted(keys) == sorted(
            [f"key-{n}" for n in range(60)] + [f"batch-{n}" for n in range(60)]
        )


# ----------------------------------------------------------------------
# Decoded-object cache: LRU bound, stats, sweep visibility
# ----------------------------------------------------------------------

class TestDecodedCache:
    def _record(self, instance, canon):
        solution = get_algorithm("pm")(instance)
        return {"solution": canonical_solution(solution, canon)}

    def test_lru_evicts_past_cap_and_counts(self):
        from conftest import make_tiny_instance
        from repro.perf.store import (
            decode_record,
            decoded_cache_stats,
            set_decoded_cache_cap,
        )

        # A fresh instance: its canonical form starts with an empty
        # decoded cache, so the counter deltas are exact.
        instance = make_tiny_instance()
        canon = canonical_instance(instance)
        record = self._record(instance, canon)
        old_cap = set_decoded_cache_cap(2)
        before = decoded_cache_stats()
        try:
            for sha in ("a", "b", "c"):  # third insert evicts "a"
                decode_record(record, canon, instance, "pm", sha=sha)
            decode_record(record, canon, instance, "pm", sha="b")  # hit
            decode_record(record, canon, instance, "pm", sha="a")  # miss
        finally:
            set_decoded_cache_cap(old_cap)
        delta = {
            k: decoded_cache_stats()[k] - before[k] for k in before
        }
        assert delta == {"hits": 1, "misses": 4, "evictions": 2}

    def test_cap_clamps_to_one(self):
        from repro.perf.store import DECODED_CACHE_CAP, set_decoded_cache_cap

        old_cap = set_decoded_cache_cap(0)
        try:
            from repro.perf import store as store_mod

            assert store_mod.DECODED_CACHE_CAP == 1
        finally:
            set_decoded_cache_cap(old_cap)

    def test_hits_return_independent_clones(self):
        from conftest import make_tiny_instance
        from repro.perf.store import decode_record

        instance = make_tiny_instance()
        canon = canonical_instance(instance)
        record = self._record(instance, canon)
        first, _ = decode_record(record, canon, instance, "pm", sha="x")
        second, _ = decode_record(record, canon, instance, "pm", sha="x")
        assert first is not second
        assert first.mapping is not second.mapping
        first.mapping[999] = 999
        assert 999 not in second.mapping

    def test_sweep_surfaces_decoded_counters(
        self, tmp_path, ring_context, ring_scenarios
    ):
        """A hot replay stamps the per-sweep decoded-cache delta (with a
        cap of 1, forced evictions) on every scenario and in the
        sweep-level summary."""
        from repro.perf.store import set_decoded_cache_cap

        parallel_sweep(
            ring_context, ring_scenarios, FAST_ALGORITHMS,
            max_workers=1, store=SolveStore(tmp_path),
        )
        old_cap = set_decoded_cache_cap(1)
        try:
            warm = parallel_sweep(
                ring_context, ring_scenarios, FAST_ALGORITHMS,
                max_workers=1, store=SolveStore(tmp_path),
            )
        finally:
            set_decoded_cache_cap(old_cap)
        summary = store_summary(warm)
        decoded = summary["decoded"]
        assert decoded["evictions"] > 0
        assert decoded["misses"] > 0
        for result in warm:
            assert result.meta["store"]["decoded"] == decoded
