"""Tests for flow tables and entries."""

from __future__ import annotations

import pytest

from repro.dataplane.tables import FlowEntry, FlowTable
from repro.exceptions import DataPlaneError


class TestFlowEntry:
    def test_defaults(self):
        entry = FlowEntry(flow_id=(0, 5), next_hop=2)
        assert entry.priority == 10

    def test_zero_priority_reserved_for_table_miss(self):
        with pytest.raises(DataPlaneError, match="priority"):
            FlowEntry(flow_id=(0, 5), next_hop=2, priority=0)

    def test_frozen(self):
        entry = FlowEntry(flow_id=(0, 5), next_hop=2)
        with pytest.raises(AttributeError):
            entry.next_hop = 3  # type: ignore[misc]


class TestFlowTable:
    def test_install_and_lookup(self):
        table = FlowTable(switch=1)
        table.install(FlowEntry(flow_id=(0, 5), next_hop=2))
        entry = table.lookup((0, 5))
        assert entry is not None and entry.next_hop == 2

    def test_miss_returns_none(self):
        table = FlowTable(switch=1)
        assert table.lookup((9, 9)) is None

    def test_replace_same_priority_allowed(self):
        table = FlowTable(switch=1)
        table.install(FlowEntry(flow_id=(0, 5), next_hop=2))
        table.install(FlowEntry(flow_id=(0, 5), next_hop=3))
        assert table.lookup((0, 5)).next_hop == 3

    def test_higher_priority_wins(self):
        table = FlowTable(switch=1)
        table.install(FlowEntry(flow_id=(0, 5), next_hop=2, priority=20))
        with pytest.raises(DataPlaneError, match="higher-priority"):
            table.install(FlowEntry(flow_id=(0, 5), next_hop=3, priority=10))

    def test_remove(self):
        table = FlowTable(switch=1)
        table.install(FlowEntry(flow_id=(0, 5), next_hop=2))
        table.remove((0, 5))
        assert table.lookup((0, 5)) is None

    def test_remove_missing_raises(self):
        table = FlowTable(switch=1)
        with pytest.raises(DataPlaneError, match="no entry"):
            table.remove((0, 5))

    def test_entries_sorted(self):
        table = FlowTable(switch=1)
        table.install(FlowEntry(flow_id=(3, 4), next_hop=2))
        table.install(FlowEntry(flow_id=(0, 5), next_hop=2))
        assert [e.flow_id for e in table.entries()] == [(0, 5), (3, 4)]

    def test_len(self):
        table = FlowTable(switch=1)
        assert len(table) == 0
        table.install(FlowEntry(flow_id=(0, 5), next_hop=2))
        assert len(table) == 1
