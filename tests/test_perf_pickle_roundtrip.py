"""Core objects must survive pickle — the parallel sweep ships them to workers.

These are regression tests for the process-pool contract: if any of these
types grows an unpicklable member (a lambda default, an open handle, a
module-level closure), the parallel sweep silently degrades to serial.
Catch that here instead.
"""

from __future__ import annotations

import pickle

import pytest

from repro.control.failures import FailureScenario
from repro.fmssm.evaluation import evaluate_solution
from repro.perf.coefficients import CoefficientTable
from repro.perf.sweep import SweepPlan
from repro.pm.algorithm import solve_pm


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


@pytest.fixture(scope="module")
def scenario():
    return FailureScenario(frozenset({13, 20}))


class TestInstanceRoundTrip:
    def test_fmssm_instance(self, att_context, scenario):
        instance = att_context.instance(scenario)
        clone = roundtrip(instance)
        assert clone.switches == instance.switches
        assert clone.controllers == instance.controllers
        assert clone.spare == instance.spare
        assert clone.pbar == instance.pbar
        assert clone.gamma == instance.gamma
        assert clone.delay == instance.delay
        assert clone.ideal_delay_ms == instance.ideal_delay_ms
        # Derived views precomputed in __post_init__ must survive too.
        assert clone.pairs == instance.pairs
        assert clone.recoverable_flows == instance.recoverable_flows
        assert clone.total_iterations == instance.total_iterations

    def test_clone_is_solvable(self, att_context, scenario):
        instance = att_context.instance(scenario)
        original = solve_pm(instance)
        from_clone = solve_pm(roundtrip(instance))
        assert from_clone.mapping == original.mapping
        assert from_clone.sdn_pairs == original.sdn_pairs


class TestSolutionRoundTrip:
    def test_recovery_solution(self, att_context, scenario):
        instance = att_context.instance(scenario)
        solution = solve_pm(instance)
        clone = roundtrip(solution)
        assert clone == solution
        assert clone.algorithm == solution.algorithm
        assert clone.mapping == solution.mapping
        assert clone.sdn_pairs == solution.sdn_pairs

    def test_evaluation(self, att_context, scenario):
        instance = att_context.instance(scenario)
        evaluation = evaluate_solution(instance, solve_pm(instance))
        clone = roundtrip(evaluation)
        assert clone.programmability == evaluation.programmability
        assert clone.controller_load == evaluation.controller_load
        assert clone.objective == evaluation.objective


class TestSweepPayloadRoundTrip:
    def test_coefficient_table(self, att_context):
        table = att_context.materialize_table()
        clone = roundtrip(table)
        assert clone.n_pairs == table.n_pairs
        flow = table.flows[0]
        for switch in table.programmable_switches(flow):
            assert clone.pbar(flow, switch) == table.pbar(flow, switch)
        switches = {s for f in table.flows for s in f.transit_switches}
        for switch in sorted(switches):
            assert [f.flow_id for f in clone.flows_programmable_at(switch)] == [
                f.flow_id for f in table.flows_programmable_at(switch)
            ]

    def test_sweep_plan(self, att_context):
        from repro.control.failures import enumerate_failure_scenarios

        att_context.materialize_table()
        scenarios = tuple(enumerate_failure_scenarios(att_context.plane, 1))
        plan = roundtrip(SweepPlan(context=att_context, scenarios=scenarios))
        assert plan.scenarios == scenarios
        # The revived context must ground instances identical to the parent's.
        instance = plan.context.instance(plan.scenarios[0])
        assert instance.pbar == att_context.instance(scenarios[0]).pbar
