"""CoefficientTable must agree exactly with the lazy ProgrammabilityModel."""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario
from repro.exceptions import FlowError
from repro.flows.demands import all_pairs_flows
from repro.fmssm.build import build_instance
from repro.perf.coefficients import CoefficientTable
from repro.routing.path_count import LoopFreeAlternateCounter
from repro.routing.programmability import ProgrammabilityModel
from repro.topology.generators import grid_topology


@pytest.fixture(scope="module")
def grid_pair():
    grid = grid_topology(3, 3)
    flows = all_pairs_flows(grid, weight="hops")
    model = ProgrammabilityModel(LoopFreeAlternateCounter(grid, slack=1), flows)
    return model, CoefficientTable.from_model(model)


class TestAgainstModel:
    def test_coefficients_identical(self, grid_pair):
        model, table = grid_pair
        for flow in model.flows:
            for switch in flow.path:
                assert table.p(flow, switch) == model.p(flow, switch)
                assert table.beta(flow, switch) == model.beta(flow, switch)
                assert table.pbar(flow, switch) == model.pbar(flow, switch)

    def test_aggregates_identical(self, grid_pair):
        model, table = grid_pair
        for flow in model.flows:
            assert table.max_programmability(flow) == model.max_programmability(flow)
            assert table.programmable_switches(flow) == model.programmable_switches(flow)

    def test_inverted_index_matches_scan(self, grid_pair):
        model, table = grid_pair
        for switch in range(9):
            scanned = tuple(f for f in model.flows if model.beta(f, switch))
            assert table.flows_programmable_at(switch) == scanned

    def test_accepts_flow_ids(self, grid_pair):
        model, table = grid_pair
        flow = model.flows[0]
        switch = flow.transit_switches[0]
        assert table.p(flow.flow_id, switch) == table.p(flow, switch)
        assert table.max_programmability(flow.flow_id) == table.max_programmability(flow)

    def test_flow_lookup(self, grid_pair):
        _, table = grid_pair
        assert table.flow((0, 8)).flow_id == (0, 8)
        with pytest.raises(FlowError):
            table.flow((123, 456))

    def test_duplicate_flows_rejected(self):
        grid = grid_topology(2, 2)
        from repro.flows.flow import Flow

        with pytest.raises(FlowError, match="duplicate"):
            CoefficientTable.from_counter(
                LoopFreeAlternateCounter(grid), [Flow(0, 1, (0, 1)), Flow(0, 1, (0, 1))]
            )


class TestModelIntegration:
    def test_model_table_is_cached(self, grid_pair):
        model, _ = grid_pair
        assert model.table() is model.table()

    def test_model_flows_programmable_at_uses_index(self, grid_pair):
        model, table = grid_pair
        assert model.flows_programmable_at(0) == table.flows_programmable_at(0)

    def test_max_programmability_cache_consistent(self, grid_pair):
        model, _ = grid_pair
        flow = model.flows[0]
        first = model.max_programmability(flow)
        assert model.max_programmability(flow) == first  # served from cache


class TestInstanceGrounding:
    def test_build_instance_same_from_table_and_model(self, att_context):
        """Grounding from the table must be indistinguishable."""
        scenario = FailureScenario(frozenset({2, 22}))
        table = att_context.programmability.table()
        from_model = build_instance(
            att_context.plane,
            att_context.flows,
            att_context.programmability,
            scenario,
            delay_model=att_context.delay_model,
        )
        from_table = build_instance(
            att_context.plane,
            att_context.flows,
            table,
            scenario,
            delay_model=att_context.delay_model,
        )
        assert from_table.pbar == from_model.pbar
        assert from_table.switches == from_model.switches
        assert from_table.controllers == from_model.controllers
        assert from_table.spare == from_model.spare
        assert from_table.gamma == from_model.gamma
        assert from_table.lam == from_model.lam
        assert from_table.ideal_delay_ms == from_model.ideal_delay_ms

    def test_materialize_table_idempotent(self, att_context):
        assert att_context.materialize_table() is att_context.materialize_table()


class TestFlowsProgrammableAtCache:
    def test_repeated_queries_return_same_tuple(self, grid_pair):
        _, table = grid_pair
        switch = next(iter(table._programmable_at))
        first = table.flows_programmable_at(switch)
        assert table.flows_programmable_at(switch) is first

    def test_unknown_switch_cached_as_empty(self, grid_pair):
        _, table = grid_pair
        assert table.flows_programmable_at(999_999) == ()
        assert table.flows_programmable_at(999_999) is table.flows_programmable_at(999_999)

    def test_cache_survives_pickling(self, grid_pair):
        import pickle

        _, table = grid_pair
        switch = next(iter(table._programmable_at))
        table.flows_programmable_at(switch)
        clone = pickle.loads(pickle.dumps(table))
        assert clone.flows_programmable_at(switch) == table.flows_programmable_at(switch)


class TestCoefficientArrays:
    def test_round_trip_rebuilds_equal_table(self, grid_pair):
        from repro.perf.coefficients import CoefficientArrays

        _, table = grid_pair
        rebuilt = CoefficientArrays.from_table(table).to_table()
        assert rebuilt._flows == table._flows
        assert list(rebuilt._flows) == list(table._flows)  # same order
        assert rebuilt._p == table._p
        assert rebuilt._pbar == table._pbar
        assert rebuilt._programmable_at == table._programmable_at
        assert rebuilt._max_pro == table._max_pro

    def test_round_trip_yields_python_ints(self, grid_pair):
        from repro.perf.coefficients import CoefficientArrays

        _, table = grid_pair
        rebuilt = CoefficientArrays.from_table(table).to_table()
        for flow in rebuilt.flows:
            assert all(type(node) is int for node in flow.path)
        for (switch, _), value in rebuilt._pbar.items():
            assert type(switch) is int and type(value) is int

    def test_non_integer_node_ids_rejected(self):
        from repro.flows.flow import Flow
        from repro.perf.coefficients import CoefficientArrays

        table = CoefficientTable(
            flows={("a", "b"): Flow("a", "b", ("a", "m", "b"))},
            p={},
            pbar={},
            programmable_at={},
            max_pro={},
        )
        with pytest.raises(TypeError):
            CoefficientArrays.from_table(table)

    def test_grounding_from_rebuilt_table_identical(self, att_context):
        from repro.perf.coefficients import CoefficientArrays

        scenario = FailureScenario(frozenset({2, 22}))
        table = att_context.programmability.table()
        rebuilt = CoefficientArrays.from_table(table).to_table()
        a = build_instance(
            att_context.plane, att_context.flows, table, scenario,
            delay_model=att_context.delay_model,
        )
        b = build_instance(
            att_context.plane, list(rebuilt.flows), rebuilt, scenario,
            delay_model=att_context.delay_model,
        )
        assert a.pbar == b.pbar
        assert a.flows == b.flows
        assert a.gamma == b.gamma
        assert a.ideal_delay_ms == b.ideal_delay_ms
