"""CoefficientTable must agree exactly with the lazy ProgrammabilityModel."""

from __future__ import annotations

import pytest

from repro.control.failures import FailureScenario
from repro.exceptions import FlowError
from repro.flows.demands import all_pairs_flows
from repro.fmssm.build import build_instance
from repro.perf.coefficients import CoefficientTable
from repro.routing.path_count import LoopFreeAlternateCounter
from repro.routing.programmability import ProgrammabilityModel
from repro.topology.generators import grid_topology


@pytest.fixture(scope="module")
def grid_pair():
    grid = grid_topology(3, 3)
    flows = all_pairs_flows(grid, weight="hops")
    model = ProgrammabilityModel(LoopFreeAlternateCounter(grid, slack=1), flows)
    return model, CoefficientTable.from_model(model)


class TestAgainstModel:
    def test_coefficients_identical(self, grid_pair):
        model, table = grid_pair
        for flow in model.flows:
            for switch in flow.path:
                assert table.p(flow, switch) == model.p(flow, switch)
                assert table.beta(flow, switch) == model.beta(flow, switch)
                assert table.pbar(flow, switch) == model.pbar(flow, switch)

    def test_aggregates_identical(self, grid_pair):
        model, table = grid_pair
        for flow in model.flows:
            assert table.max_programmability(flow) == model.max_programmability(flow)
            assert table.programmable_switches(flow) == model.programmable_switches(flow)

    def test_inverted_index_matches_scan(self, grid_pair):
        model, table = grid_pair
        for switch in range(9):
            scanned = tuple(f for f in model.flows if model.beta(f, switch))
            assert table.flows_programmable_at(switch) == scanned

    def test_accepts_flow_ids(self, grid_pair):
        model, table = grid_pair
        flow = model.flows[0]
        switch = flow.transit_switches[0]
        assert table.p(flow.flow_id, switch) == table.p(flow, switch)
        assert table.max_programmability(flow.flow_id) == table.max_programmability(flow)

    def test_flow_lookup(self, grid_pair):
        _, table = grid_pair
        assert table.flow((0, 8)).flow_id == (0, 8)
        with pytest.raises(FlowError):
            table.flow((123, 456))

    def test_duplicate_flows_rejected(self):
        grid = grid_topology(2, 2)
        from repro.flows.flow import Flow

        with pytest.raises(FlowError, match="duplicate"):
            CoefficientTable.from_counter(
                LoopFreeAlternateCounter(grid), [Flow(0, 1, (0, 1)), Flow(0, 1, (0, 1))]
            )


class TestModelIntegration:
    def test_model_table_is_cached(self, grid_pair):
        model, _ = grid_pair
        assert model.table() is model.table()

    def test_model_flows_programmable_at_uses_index(self, grid_pair):
        model, table = grid_pair
        assert model.flows_programmable_at(0) == table.flows_programmable_at(0)

    def test_max_programmability_cache_consistent(self, grid_pair):
        model, _ = grid_pair
        flow = model.flows[0]
        first = model.max_programmability(flow)
        assert model.max_programmability(flow) == first  # served from cache


class TestInstanceGrounding:
    def test_build_instance_same_from_table_and_model(self, att_context):
        """Grounding from the table must be indistinguishable."""
        scenario = FailureScenario(frozenset({2, 22}))
        table = att_context.programmability.table()
        from_model = build_instance(
            att_context.plane,
            att_context.flows,
            att_context.programmability,
            scenario,
            delay_model=att_context.delay_model,
        )
        from_table = build_instance(
            att_context.plane,
            att_context.flows,
            table,
            scenario,
            delay_model=att_context.delay_model,
        )
        assert from_table.pbar == from_model.pbar
        assert from_table.switches == from_model.switches
        assert from_table.controllers == from_model.controllers
        assert from_table.spare == from_model.spare
        assert from_table.gamma == from_model.gamma
        assert from_table.lam == from_model.lam
        assert from_table.ideal_delay_ms == from_model.ideal_delay_ms

    def test_materialize_table_idempotent(self, att_context):
        assert att_context.materialize_table() is att_context.materialize_table()
