"""Tests for the HiGHS adapter and the branch-and-bound solver.

Both backends run the same cases; agreement between them is the
cross-validation for the library-owned branch-and-bound.
"""

from __future__ import annotations

import pytest

from repro.lp import LinExpr, Model, SolveStatus, solve
from repro.exceptions import SolverError

SOLVERS = ("highs", "bnb")


def knapsack_model() -> tuple[Model, float]:
    """A small knapsack with known optimum 14 (items 0, 1 and 3)."""
    m = Model("knapsack")
    values = [6, 7, 6, 1]
    weights = [3, 4, 4, 1]
    xs = [m.add_var(f"x{i}", binary=True) for i in range(4)]
    m.add_constraint(LinExpr.total(zip(map(float, weights), xs)) <= 8)
    m.set_objective(LinExpr.total(zip(map(float, values), xs)), sense="max")
    return m, 14.0


@pytest.mark.parametrize("solver", SOLVERS)
class TestBothSolvers:
    def test_pure_lp(self, solver):
        m = Model()
        x = m.add_var("x", ub=4)
        y = m.add_var("y", ub=4)
        m.add_constraint(x + y <= 6)
        m.set_objective(x + 2 * y, sense="max")
        result = solve(m, solver=solver)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(10.0)
        assert result.value("y") == pytest.approx(4.0)

    def test_knapsack_optimum(self, solver):
        m, best = knapsack_model()
        result = solve(m, solver=solver)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(best)

    def test_integrality_enforced(self, solver):
        m = Model()
        x = m.add_var("x", integer=True, ub=10)
        m.add_constraint(2 * x <= 7)
        m.set_objective(x, sense="max")
        result = solve(m, solver=solver)
        assert result.objective == pytest.approx(3.0)
        assert result.value("x") == pytest.approx(3.0)

    def test_infeasible(self, solver):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constraint(1 * x >= 2)
        m.set_objective(x)
        assert solve(m, solver=solver).status is SolveStatus.INFEASIBLE

    def test_equality_constraints(self, solver):
        m = Model()
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constraint(x + y == 7)
        m.set_objective(x - y, sense="max")
        result = solve(m, solver=solver)
        assert result.objective == pytest.approx(7.0)

    def test_minimization(self, solver):
        m = Model()
        x = m.add_var("x", lb=2, ub=9)
        m.set_objective(3 * x, sense="min")
        result = solve(m, solver=solver)
        assert result.objective == pytest.approx(6.0)

    def test_objective_with_constant(self, solver):
        m = Model()
        x = m.add_var("x", ub=5)
        m.set_objective(x + 100, sense="max")
        result = solve(m, solver=solver)
        assert result.objective == pytest.approx(105.0)


class TestCrossValidation:
    def test_random_milps_agree(self):
        import random

        rng = random.Random(42)
        for trial in range(8):
            m = Model(f"rand{trial}")
            n = rng.randint(3, 7)
            xs = [m.add_var(f"x{i}", binary=True) for i in range(n)]
            for _ in range(rng.randint(1, 4)):
                coefficients = [(float(rng.randint(1, 9)), x) for x in xs]
                m.add_constraint(
                    LinExpr.total(coefficients) <= rng.randint(5, 25)
                )
            m.set_objective(
                LinExpr.total((float(rng.randint(1, 9)), x) for x in xs), sense="max"
            )
            a = solve(m, solver="highs")
            b = solve(m, solver="bnb")
            assert a.status is SolveStatus.OPTIMAL
            assert b.status is SolveStatus.OPTIMAL
            assert a.objective == pytest.approx(b.objective)


class TestResultSemantics:
    def test_value_without_incumbent_raises(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constraint(1 * x >= 2)
        m.set_objective(x)
        result = solve(m)
        with pytest.raises(SolverError):
            result.value("x")

    def test_unknown_variable_raises(self):
        m = Model()
        m.add_var("x", ub=1)
        result = solve(m)
        with pytest.raises(SolverError, match="unknown variable"):
            result.value("zzz")

    def test_unknown_solver_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ValueError, match="unknown solver"):
            solve(m, solver="gurobi")

    def test_bnb_time_limit_returns_incumbent_or_timeout(self):
        m, _ = knapsack_model()
        result = solve(m, solver="bnb", time_limit_s=0.0)
        assert result.status in (
            SolveStatus.TIMEOUT,
            SolveStatus.FEASIBLE,
            SolveStatus.OPTIMAL,
        )

    def test_bnb_reports_nodes(self):
        m, _ = knapsack_model()
        result = solve(m, solver="bnb")
        assert result.nodes is not None and result.nodes >= 1

    def test_repr(self):
        m, _ = knapsack_model()
        assert "optimal" in repr(solve(m))
