"""Equivalence tests for the vectorized heuristic kernels.

The contract (DESIGN.md §10): for every non-exact algorithm,
``kernel="array"`` must produce a solution *bit-identical* to
``kernel="dict"`` — same ``mapping``, ``sdn_pairs``, ``pair_controller``
and accounting, hence the same objective — on any instance.  The array
route is not "approximately the same heuristic"; it is the same
algorithm with the same tie-breaking, expressed over dense views.

Three layers of evidence:

* a seeded ATT scenario matrix (every 1-failure case plus sampled 2-
  and 3-failure cases) over all seven solver variants;
* a synthetic Waxman matrix with a different controller placement;
* hypothesis properties over (a) random end-to-end contexts and (b)
  hand-built tie-heavy instances whose small integer delays force the
  tie-break paths, plus ``evaluate_batch`` ≡ per-solution
  ``evaluate_solution``.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.baselines.nearest import solve_nearest
from repro.baselines.pg import solve_pg
from repro.baselines.retroflow import solve_retroflow
from repro.control.failures import (
    FailureScenario,
    enumerate_failure_scenarios,
    sample_failure_scenarios,
)
from repro.experiments.scenarios import custom_context
from repro.flows.flow import Flow
from repro.fmssm.evaluation import evaluate_batch, evaluate_solution
from repro.fmssm.instance import FMSSMInstance
from repro.perf.kernels import (
    DEFAULT_KERNEL,
    dict_kernel_reference,
    instance_arrays,
    prepare_instance,
    resolve_kernel,
)
from repro.pm.algorithm import solve_pm
from repro.topology.generators import waxman_topology

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.fixture(autouse=True)
def _dict_route_is_the_reference_here():
    """These are the cross-validation tests: opt out of the dict-route
    deprecation warning explicitly, as the warning's docs instruct."""
    with dict_kernel_reference():
        yield


def _pm_variant(phase2_order: str, enforce_delay: bool):
    def run(instance, kernel):
        return solve_pm(
            instance,
            phase2_order=phase2_order,
            enforce_delay=enforce_delay,
            kernel=kernel,
        )

    return run


#: Every routed solver variant: (id, callable(instance, kernel)).
SOLVERS = (
    ("pm", _pm_variant("paper", False)),
    ("pm-greedy", _pm_variant("greedy", False)),
    ("pm-strict", _pm_variant("paper", True)),
    ("pm-strict-greedy", _pm_variant("greedy", True)),
    ("pg", lambda instance, kernel: solve_pg(instance, kernel=kernel)),
    ("retroflow", lambda instance, kernel: solve_retroflow(instance, kernel=kernel)),
    ("nearest", lambda instance, kernel: solve_nearest(instance, kernel=kernel)),
)
SOLVER_IDS = tuple(name for name, _ in SOLVERS)


def assert_same_solution(array_solution, dict_solution):
    """Bit-identical on every answer-bearing field (``meta`` is free-form)."""
    assert array_solution.algorithm == dict_solution.algorithm
    assert array_solution.feasible == dict_solution.feasible
    assert array_solution.mapping == dict_solution.mapping
    assert array_solution.sdn_pairs == dict_solution.sdn_pairs
    assert array_solution.pair_controller == dict_solution.pair_controller
    assert array_solution.load_override == dict_solution.load_override
    assert array_solution.extra_overhead_ms == dict_solution.extra_overhead_ms


def assert_same_evaluation(a, b):
    """Identical metrics; ``solve_time_s`` is a wall clock and excluded."""
    assert a.algorithm == b.algorithm
    assert a.feasible == b.feasible
    assert a.programmability == b.programmability
    assert a.least_programmability == b.least_programmability
    assert a.total_programmability == b.total_programmability
    assert a.recovered_flows == b.recovered_flows
    assert a.recoverable_flows == b.recoverable_flows
    assert a.offline_flows == b.offline_flows
    assert a.recovered_switches == b.recovered_switches
    assert a.offline_switches == b.offline_switches
    assert a.controller_load == b.controller_load
    assert a.total_delay_ms == b.total_delay_ms
    assert a.ideal_delay_ms == b.ideal_delay_ms
    assert a.per_flow_overhead_ms == b.per_flow_overhead_ms
    assert a.objective == b.objective


def _assert_routes_agree(instance, solver):
    array_solution = solver(instance, "array")
    dict_solution = solver(instance, "dict")
    assert_same_solution(array_solution, dict_solution)
    assert array_solution.meta.get("kernel") == "array"
    assert_same_evaluation(
        evaluate_solution(instance, array_solution),
        evaluate_solution(instance, dict_solution),
    )


def _matrix_scenarios(plane):
    scenarios = list(enumerate_failure_scenarios(plane, 1))
    scenarios += list(sample_failure_scenarios(plane, 2, 6, seed=11))
    scenarios += list(sample_failure_scenarios(plane, 3, 4, seed=23))
    return scenarios


class TestKernelRouting:
    def test_default_is_array(self):
        assert DEFAULT_KERNEL == "array"
        assert resolve_kernel(None) == "array"
        assert resolve_kernel("array") == "array"
        assert resolve_kernel("dict") == "dict"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("simd")

    def test_dict_route_warns_outside_reference_block(self, monkeypatch):
        from repro.perf import kernels

        # Undo this module's autouse opt-out to observe the default.
        monkeypatch.setattr(kernels, "_DICT_REFERENCE_DEPTH", [0])
        with pytest.warns(DeprecationWarning, match="cross-validation"):
            assert resolve_kernel("dict") == "dict"
        monkeypatch.undo()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel("array") == "array"
            assert resolve_kernel("dict") == "dict"  # opted out here

    def test_prepare_instance_returns_cached_view(self, tiny_instance):
        arrays = prepare_instance(tiny_instance)
        assert prepare_instance(tiny_instance) is arrays
        assert instance_arrays(tiny_instance) is arrays
        assert "seq_lists" in arrays.cache


class TestAttMatrix:
    """Seeded ATT failure matrix: array ≡ dict on every variant."""

    @pytest.mark.parametrize(("name", "solver"), SOLVERS, ids=SOLVER_IDS)
    def test_array_matches_dict(self, att_context, name, solver):
        for scenario in _matrix_scenarios(att_context.plane):
            _assert_routes_agree(att_context.instance(scenario), solver)


class TestSyntheticMatrix:
    """Waxman topology with a different placement than ATT's."""

    @pytest.fixture(scope="class")
    def synthetic_context(self):
        topology = waxman_topology(24, alpha=0.6, beta=0.35, seed=5)
        return custom_context(
            topology, controller_sites=(0, 5, 11, 17), capacity=900
        )

    @pytest.mark.parametrize(("name", "solver"), SOLVERS, ids=SOLVER_IDS)
    def test_array_matches_dict(self, synthetic_context, name, solver):
        for scenario in enumerate_failure_scenarios(synthetic_context.plane, 1):
            _assert_routes_agree(synthetic_context.instance(scenario), solver)


@st.composite
def recovery_instances(draw):
    """Random end-to-end SD-WAN instances (topology → plane → failure)."""
    n = draw(st.integers(min_value=6, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=30))
    topology = waxman_topology(n, alpha=0.7, beta=0.4, seed=seed)
    nodes = topology.nodes
    n_sites = draw(st.integers(min_value=2, max_value=min(4, n - 1)))
    sites = nodes[:n_sites]
    capacity = draw(st.integers(min_value=40, max_value=400))
    try:
        context = custom_context(topology, controller_sites=sites, capacity=capacity)
        context.plane.spare_capacity(context.flows)
    except Exception:
        # Mis-provisioned draw (capacity below baseline load): skip.
        assume(False)
    failed = draw(st.sampled_from(sites))
    return context.instance(FailureScenario(frozenset({failed})))


@st.composite
def tie_heavy_instances(draw):
    """Hand-built instances with tiny integer delays that force ties.

    Random topologies rarely produce equal geodesic delays; the
    tie-break rules in the kernels (lowest switch id, lowest controller
    id, first-in-``pairs``-order) only get exercised when keys collide.
    Delays drawn from {1, 2, 3} and small spares guarantee collisions
    on every code path, including budget-exhaustion mid-scan.
    """
    n_switches = draw(st.integers(min_value=2, max_value=5))
    n_controllers = draw(st.integers(min_value=2, max_value=3))
    switches = tuple(range(n_switches))
    controllers = tuple(range(100, 100 + n_controllers))
    delay = {
        (s, c): float(draw(st.integers(min_value=1, max_value=3)))
        for s in switches
        for c in controllers
    }
    spare = {c: draw(st.integers(min_value=0, max_value=10)) for c in controllers}
    n_flows = draw(st.integers(min_value=1, max_value=6))
    flows = {}
    for index in range(n_flows):
        src, dst = 200 + index, 300 + index
        flows[(src, dst)] = Flow(src=src, dst=dst, path=(src, dst))
    pbar = {}
    for s in switches:
        for flow_id in flows:
            if draw(st.booleans()):
                pbar[(s, flow_id)] = draw(st.integers(min_value=2, max_value=4))
    gamma = {s: draw(st.integers(min_value=1, max_value=4)) for s in switches}
    nearest = {
        s: min(controllers, key=lambda c: (delay[(s, c)], c)) for s in switches
    }
    return FMSSMInstance(
        switches=switches,
        controllers=controllers,
        spare=spare,
        delay=delay,
        flows=flows,
        pbar=pbar,
        gamma=gamma,
        ideal_delay_ms=float(draw(st.integers(min_value=0, max_value=3))),
        lam=0.001,
        nearest=nearest,
    )


class TestKernelProperties:
    @SETTINGS
    @given(instance=recovery_instances())
    def test_array_matches_dict_on_random_contexts(self, instance):
        for _, solver in SOLVERS:
            assert_same_solution(solver(instance, "array"), solver(instance, "dict"))

    @SETTINGS
    @given(instance=tie_heavy_instances())
    def test_array_matches_dict_on_tie_heavy_instances(self, instance):
        for _, solver in SOLVERS:
            assert_same_solution(solver(instance, "array"), solver(instance, "dict"))

    @SETTINGS
    @given(instance=recovery_instances())
    def test_objectives_match_across_routes(self, instance):
        array_solutions = [solver(instance, "array") for _, solver in SOLVERS]
        dict_solutions = [solver(instance, "dict") for _, solver in SOLVERS]
        for a, d in zip(
            evaluate_batch(instance, array_solutions),
            evaluate_batch(instance, dict_solutions),
        ):
            assert_same_evaluation(a, d)

    @SETTINGS
    @given(instance=tie_heavy_instances())
    def test_evaluate_batch_matches_per_solution(self, instance):
        solutions = [solver(instance, "array") for _, solver in SOLVERS]
        batch = evaluate_batch(instance, solutions)
        assert len(batch) == len(solutions)
        for solution, batched in zip(solutions, batch):
            assert_same_evaluation(batched, evaluate_solution(instance, solution))


class TestEvaluateBatchAtt:
    """``evaluate_batch`` ≡ per-solution evaluation on the paper's case."""

    def test_batch_matches_single(self, att_instance_13_20):
        instance = att_instance_13_20
        solutions = [solver(instance, "array") for _, solver in SOLVERS]
        for solution, batched in zip(
            solutions, evaluate_batch(instance, solutions)
        ):
            assert_same_evaluation(batched, evaluate_solution(instance, solution))

    def test_batch_respects_verify_flag(self, att_instance_13_20):
        instance = att_instance_13_20
        solutions = [solve_pm(instance), solve_retroflow(instance)]
        unverified = evaluate_batch(instance, solutions, verify=False)
        verified = evaluate_batch(instance, solutions)
        for a, b in zip(unverified, verified):
            assert_same_evaluation(a, b)
