"""Tests for Controller and ControllerState."""

from __future__ import annotations

import pytest

from repro.control.controller import Controller, ControllerState
from repro.exceptions import CapacityError, ControlPlaneError


def make(capacity=10, load=0, failed=False) -> ControllerState:
    return ControllerState(Controller(1, site=1, capacity=capacity), load=load, failed=failed)


class TestController:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ControlPlaneError):
            Controller(1, site=1, capacity=-1)

    def test_frozen(self):
        controller = Controller(1, site=1, capacity=5)
        with pytest.raises(AttributeError):
            controller.capacity = 9  # type: ignore[misc]


class TestControllerState:
    def test_available_is_capacity_minus_load(self):
        state = make(capacity=10, load=3)
        assert state.available == 7

    def test_consume_and_release(self):
        state = make(capacity=5)
        state.consume(3)
        assert state.load == 3
        state.release(2)
        assert state.load == 1

    def test_consume_beyond_capacity_raises(self):
        state = make(capacity=2)
        with pytest.raises(CapacityError):
            state.consume(3)

    def test_release_beyond_load_raises(self):
        state = make()
        with pytest.raises(ControlPlaneError):
            state.release(1)

    def test_initial_load_beyond_capacity_rejected(self):
        with pytest.raises(CapacityError):
            make(capacity=2, load=3)

    def test_negative_load_rejected(self):
        with pytest.raises(ControlPlaneError):
            make(load=-1)

    def test_failed_controller_has_no_availability(self):
        state = make(capacity=10)
        state.fail()
        assert state.failed
        assert state.available == 0

    def test_failed_controller_cannot_consume(self):
        state = make()
        state.fail()
        with pytest.raises(ControlPlaneError, match="failed"):
            state.consume(1)

    def test_recover_restores_availability(self):
        state = make(capacity=10, load=4)
        state.fail()
        state.recover()
        assert state.available == 6

    def test_negative_units_rejected(self):
        state = make()
        with pytest.raises(ControlPlaneError):
            state.consume(-1)
        with pytest.raises(ControlPlaneError):
            state.release(-1)

    def test_repr_shows_status(self):
        state = make()
        assert "active" in repr(state)
        state.fail()
        assert "failed" in repr(state)
