"""Tests for the PM heuristic (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.fmssm.evaluation import evaluate_solution, verify_solution
from repro.fmssm.optimal import solve_optimal
from repro.pm.algorithm import ProgrammabilityMedic, solve_pm
from conftest import make_tiny_instance


class TestTinyInstance:
    def test_pm_matches_optimal_when_resources_ample(self, tiny_instance):
        pm = evaluate_solution(tiny_instance, solve_pm(tiny_instance))
        optimal = evaluate_solution(tiny_instance, solve_optimal(tiny_instance))
        assert pm.least_programmability == optimal.least_programmability == 2
        assert pm.total_programmability == optimal.total_programmability == 11

    def test_solution_verifies(self, tiny_instance):
        verify_solution(tiny_instance, solve_pm(tiny_instance), enforce_delay=False)

    def test_scarce_budget_prioritizes_least_flows(self):
        """With one unit per controller, PM still gives every flow a pair
        before doubling up (balanced recovery)."""
        instance = make_tiny_instance(spare={100: 2, 200: 1})
        evaluation = evaluate_solution(instance, solve_pm(instance))
        assert evaluation.recovered_flows == 3

    def test_zero_budget_recovers_nothing(self):
        instance = make_tiny_instance(spare={100: 0, 200: 0})
        evaluation = evaluate_solution(instance, solve_pm(instance))
        assert evaluation.total_programmability == 0
        assert evaluation.recovered_flows == 0

    def test_phase2_orders_equivalent_here(self, tiny_instance):
        paper = evaluate_solution(tiny_instance, solve_pm(tiny_instance, phase2_order="paper"))
        greedy = evaluate_solution(tiny_instance, solve_pm(tiny_instance, phase2_order="greedy"))
        assert paper.total_programmability == greedy.total_programmability

    def test_invalid_phase2_order(self, tiny_instance):
        with pytest.raises(ValueError, match="phase2_order"):
            ProgrammabilityMedic(tiny_instance, phase2_order="random")

    def test_meta_records_iterations(self, tiny_instance):
        solution = solve_pm(tiny_instance)
        assert solution.meta["total_iterations"] == tiny_instance.total_iterations

    def test_runner_reusable(self, tiny_instance):
        runner = ProgrammabilityMedic(tiny_instance)
        first = runner.run()
        second = runner.run()
        assert first.sdn_pairs == second.sdn_pairs
        assert first.mapping == second.mapping


class TestAttInstances:
    def test_feasibility_on_flagship_case(self, att_instance_13_20):
        solution = solve_pm(att_instance_13_20)
        verify_solution(att_instance_13_20, solution, enforce_delay=False)

    def test_balanced_least_programmability(self, att_instance_13_20):
        """The paper: the least programmability is recovered to 2."""
        evaluation = evaluate_solution(att_instance_13_20, solve_pm(att_instance_13_20))
        assert evaluation.least_programmability == 2
        assert evaluation.recovery_fraction == 1.0

    def test_hub_switch_recovered_per_flow(self, att_instance_13_20):
        """Switch 13's gamma exceeds every controller's spare, yet PM
        recovers flows there by altering the per-flow control cost —
        the paper's case (13, 20) narrative."""
        instance = att_instance_13_20
        assert instance.gamma[13] > max(instance.spare.values())
        solution = solve_pm(instance)
        assert 13 in solution.mapping
        sdn_at_13 = [p for p in solution.sdn_pairs if p[0] == 13]
        assert sdn_at_13  # flows run in SDN mode at the unmappable-whole switch
        assert len(sdn_at_13) < instance.gamma[13]  # but not all of them

    def test_every_offline_switch_mapped_when_capacity_allows(self, att_instance_13_20):
        solution = solve_pm(att_instance_13_20)
        assert set(solution.mapping) == set(att_instance_13_20.switches)

    def test_capacity_never_exceeded(self, att_instance_5_13_20):
        instance = att_instance_5_13_20
        evaluation = evaluate_solution(instance, solve_pm(instance))
        for controller, load in evaluation.controller_load.items():
            assert load <= instance.spare[controller]

    def test_tight_case_uses_entire_budget(self, att_instance_5_13_20):
        """When recoverable flows exceed total spare, PM saturates it."""
        instance = att_instance_5_13_20
        assert len(instance.recoverable_flows) > instance.total_spare
        evaluation = evaluate_solution(instance, solve_pm(instance))
        assert sum(evaluation.controller_load.values()) == instance.total_spare

    def test_strict_delay_variant_respects_g(self, att_instance_13_20):
        instance = att_instance_13_20
        evaluation = evaluate_solution(
            instance, solve_pm(instance, enforce_delay=True), enforce_delay=True
        )
        assert evaluation.total_delay_ms <= instance.ideal_delay_ms + 1e-6

    def test_strict_never_more_programmability(self, att_instance_13_20):
        instance = att_instance_13_20
        strict = evaluate_solution(instance, solve_pm(instance, enforce_delay=True))
        loose = evaluate_solution(instance, solve_pm(instance))
        assert strict.total_programmability <= loose.total_programmability

    def test_deterministic(self, att_instance_13_20):
        a = solve_pm(att_instance_13_20)
        b = solve_pm(att_instance_13_20)
        assert a.sdn_pairs == b.sdn_pairs and a.mapping == b.mapping

    def test_runs_fast(self, att_instance_5_13_20):
        solution = solve_pm(att_instance_5_13_20)
        assert solution.solve_time_s < 1.0
