"""Tests for FMSSMInstance validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from conftest import make_tiny_instance


class TestDerived:
    def test_dimensions(self, tiny_instance):
        assert tiny_instance.n_switches == 2
        assert tiny_instance.n_controllers == 2
        assert tiny_instance.n_flows == 3

    def test_pairs_sorted(self, tiny_instance):
        assert tiny_instance.pairs == (
            (1, (10, 11)),
            (1, (10, 12)),
            (2, (10, 12)),
            (2, (11, 12)),
        )

    def test_pairs_at_and_of(self, tiny_instance):
        assert tiny_instance.pairs_at[1] == ((10, 11), (10, 12))
        assert tiny_instance.pairs_of[(10, 12)] == (1, 2)

    def test_all_flows_recoverable_in_tiny(self, tiny_instance):
        assert tiny_instance.recoverable_flows == ((10, 11), (10, 12), (11, 12))
        assert tiny_instance.unrecoverable_flows == ()

    def test_max_programmability(self, tiny_instance):
        assert tiny_instance.max_programmability((10, 12)) == 5
        assert tiny_instance.max_programmability((10, 11)) == 2

    def test_total_max_programmability(self, tiny_instance):
        assert tiny_instance.total_max_programmability() == 11

    def test_total_iterations_is_max_offline_switches_per_flow(self, tiny_instance):
        assert tiny_instance.total_iterations == 2

    def test_total_spare(self, tiny_instance):
        assert tiny_instance.total_spare == 4

    def test_describe(self, tiny_instance):
        text = tiny_instance.describe()
        assert "N=2" in text and "M=2" in text and "L=3" in text


class TestValidation:
    def test_missing_delay_rejected(self):
        with pytest.raises(ModelError, match="missing delay"):
            instance = make_tiny_instance()
            from repro.fmssm.instance import FMSSMInstance

            FMSSMInstance(
                switches=instance.switches,
                controllers=instance.controllers,
                spare=instance.spare,
                delay={(1, 100): 1.0},
                flows=instance.flows,
                pbar=instance.pbar,
                gamma=instance.gamma,
                ideal_delay_ms=instance.ideal_delay_ms,
                lam=instance.lam,
                nearest=instance.nearest,
            )

    def test_negative_spare_rejected(self):
        with pytest.raises(ModelError, match="negative spare"):
            make_tiny_instance(spare={100: -1, 200: 2})

    def test_pbar_below_two_rejected(self):
        instance = make_tiny_instance()
        from repro.fmssm.instance import FMSSMInstance

        bad_pbar = dict(instance.pbar)
        bad_pbar[(1, (10, 11))] = 1
        with pytest.raises(ModelError, match="pbar"):
            FMSSMInstance(
                switches=instance.switches,
                controllers=instance.controllers,
                spare=instance.spare,
                delay=instance.delay,
                flows=instance.flows,
                pbar=bad_pbar,
                gamma=instance.gamma,
                ideal_delay_ms=instance.ideal_delay_ms,
                lam=instance.lam,
                nearest=instance.nearest,
            )

    def test_negative_lambda_rejected(self):
        with pytest.raises(ModelError, match="lambda"):
            make_tiny_instance(lam=-0.1)

    def test_unknown_pbar_switch_rejected(self):
        instance = make_tiny_instance()
        from repro.fmssm.instance import FMSSMInstance

        bad_pbar = dict(instance.pbar)
        bad_pbar[(7, (10, 11))] = 2
        with pytest.raises(ModelError, match="non-offline"):
            FMSSMInstance(
                switches=instance.switches,
                controllers=instance.controllers,
                spare=instance.spare,
                delay=instance.delay,
                flows=instance.flows,
                pbar=bad_pbar,
                gamma=instance.gamma,
                ideal_delay_ms=instance.ideal_delay_ms,
                lam=instance.lam,
                nearest=instance.nearest,
            )

    def test_att_instance_sane(self, att_instance_13_20):
        instance = att_instance_13_20
        assert instance.n_switches == 7
        assert instance.n_controllers == 4
        assert instance.n_flows > 300
        assert instance.total_iterations >= 2
        # Every pair references an offline switch and an offline flow.
        for switch, flow_id in instance.pairs:
            assert switch in instance.switches
            assert flow_id in instance.flows
