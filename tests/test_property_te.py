"""Property-based tests for the traffic-engineering layer (hypothesis)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flows.demands import all_pairs_flows
from repro.flows.flow import Flow
from repro.te.capacity import link_loads, max_link_utilization, uniform_capacities
from repro.te.engineer import TrafficEngineer
from repro.topology.generators import waxman_topology

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def te_cases(draw):
    n = draw(st.integers(min_value=6, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=25))
    topology = waxman_topology(n, alpha=0.7, beta=0.4, seed=seed)
    demand_seed = draw(st.integers(min_value=0, max_value=10))
    import random

    rng = random.Random(demand_seed)
    flows = {}
    for flow in all_pairs_flows(topology, weight="hops"):
        flows[flow.flow_id] = Flow(
            flow.src, flow.dst, flow.path, demand=float(rng.randint(1, 5))
        )
    capacity = draw(st.integers(min_value=30, max_value=120))
    programmable = {
        fid: frozenset(f.transit_switches) for fid, f in flows.items()
    }
    return topology, flows, uniform_capacities(topology, float(capacity)), programmable


class TestTeProperties:
    @SETTINGS
    @given(te_cases())
    def test_mlu_never_increases(self, case):
        topology, flows, capacities, programmable = case
        engineer = TrafficEngineer(topology, capacities)
        result = engineer.relieve(flows, programmable, max_actions=15)
        assert result.mlu_after <= result.mlu_before + 1e-9

    @SETTINGS
    @given(te_cases())
    def test_flows_remain_valid(self, case):
        topology, flows, capacities, programmable = case
        engineer = TrafficEngineer(topology, capacities)
        result = engineer.relieve(flows, programmable, max_actions=15)
        assert set(result.flows) == set(flows)
        for flow_id, flow in result.flows.items():
            assert flow.flow_id == flow_id
            assert flow.demand == flows[flow_id].demand  # demand conserved
            for u, v in zip(flow.path, flow.path[1:]):
                assert topology.has_edge(u, v)

    @SETTINGS
    @given(te_cases())
    def test_deviations_only_at_programmable_switches(self, case):
        topology, flows, capacities, programmable = case
        engineer = TrafficEngineer(topology, capacities)
        result = engineer.relieve(flows, programmable, max_actions=15)
        for action in result.actions:
            assert action.at_switch in programmable[action.flow_id]
            # The path is unchanged up to the deviation switch.
            idx = action.old_path.index(action.at_switch)
            assert action.new_path[: idx + 1] == action.old_path[: idx + 1]

    @SETTINGS
    @given(te_cases())
    def test_total_demand_conserved_per_flow_count(self, case):
        topology, flows, capacities, programmable = case
        engineer = TrafficEngineer(topology, capacities)
        result = engineer.relieve(flows, programmable, max_actions=15)
        before = sum(f.demand for f in flows.values())
        after = sum(f.demand for f in result.flows.values())
        assert after == before

    @SETTINGS
    @given(te_cases())
    def test_pinned_network_is_identity(self, case):
        topology, flows, capacities, _ = case
        engineer = TrafficEngineer(topology, capacities)
        result = engineer.relieve(flows, {}, max_actions=15)
        assert result.flows == flows
        assert result.mlu_after == result.mlu_before

    @SETTINGS
    @given(te_cases())
    def test_loads_consistent_with_paths(self, case):
        topology, flows, capacities, programmable = case
        engineer = TrafficEngineer(topology, capacities)
        result = engineer.relieve(flows, programmable, max_actions=10)
        loads = link_loads(topology, result.flows.values())
        recomputed = 0.0
        for flow in result.flows.values():
            recomputed += flow.demand * flow.hop_count
        assert sum(loads.values()) == recomputed
        assert max_link_utilization(
            topology, result.flows.values(), capacities
        ) == result.mlu_after
