"""Seeded chaos soak: a supervised campaign under compound injected faults.

The acceptance bar for the supervision layer (docs/robustness.md): a
``kill-worker`` + ``hang`` + ``corrupt-solution`` chaos schedule over a
multi-sweep campaign must complete with results *bit-identical* to the
fault-free run, every fault that fired accounted for in
``ScenarioResult.meta`` / the supervisor summary, and the campaign's
write-ahead journal must resume bit-identically after a hard kill.

The schedule is seeded per sweep rather than one flat plan: chaos call
counters are per *process*, and both ``kill-worker`` and a preempted
``hang`` end the process that would have advanced the counter — a fault
positioned "after" one of those in the same plan can never fire, it
just respawns into a fresh counter.  One fault family per sweep keeps
every injected fault reachable and the whole soak deterministic.

Bit-identity under chaos is not luck — each fault composes with
machinery that provably converges back to the fault-free answer:

* ``kill-worker``/``hang`` only fire in pool workers; preemption and
  quarantine re-run the charged scenarios serially in the parent, where
  both actions are no-ops by construction.
* ``raise-timeout`` on the first exact solve of a process demotes the
  primary rung; ``corrupt-solution`` then poisons the model rung's
  HiGHS vector, which the independent validator rejects (Eq. 3) —
  landing on the pure-Python B&B rung.  The soak's scenarios are chosen
  so every rung on that demotion path returns the same optimal recovery
  plan; whichever path chaos forces, the answer is the fault-free one.
  (Scenario ``fail(7)`` is excluded: with controller 7's tiny capacity
  gone, an all-on corrupted vector stays feasible and the validator
  rightly accepts it — validators certify feasibility, not optimality.)

This file is the CI ``chaos-soak`` job's payload; it stays seeded and
bounded so it can also ride in tier-1.
"""

from __future__ import annotations

import json
import random
import warnings

import pytest

from test_perf_parallel_sweep import assert_sweeps_identical

from repro.control.failures import FailureScenario
from repro.exceptions import ChaosError, DegradedResultWarning
from repro.experiments.scenarios import custom_context
from repro.perf import shm
from repro.perf.executor import (
    SweepExecutor,
    campaign_summary,
    close_default_executor,
    run_campaign,
)
from repro.perf.sweep import parallel_sweep
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan, Fault
from repro.resilience.degradation import default_ladder
from repro.resilience.supervisor import SupervisorPolicy, SweepSupervisor
from repro.topology.generators import ring_topology

#: One exact algorithm so the ladder, validator and breakers all engage.
SOAK_ALGORITHMS = ("pm", "retroflow", "optimal")

SOAK_SEED = 2026


@pytest.fixture(scope="module")
def soak_context():
    """Controller 7 is capacity-starved: corrupting a HiGHS vector while
    7 is *up* violates Eq. 3, so the validator catches the corruption."""
    return custom_context(
        ring_topology(10, chords=5, seed=7),
        controller_sites=(0, 3, 7),
        capacity={0: 200, 3: 200, 7: 30},
    )


@pytest.fixture(scope="module")
def soak_sweeps():
    fail = lambda *c: FailureScenario(frozenset(c))  # noqa: E731
    return [
        (fail(0), fail(3)),
        (fail(0, 3),),
        (fail(0), fail(0, 3)),
    ]


@pytest.fixture(scope="module")
def soak_ladder():
    # retries=0 keeps the demotion chain (timeout -> corrupt -> bnb)
    # deterministic: every rung is attempted exactly once per process.
    return default_ladder(time_limit_s=30.0, retries=0)


@pytest.fixture(scope="module")
def soak_reference(soak_context, soak_sweeps, soak_ladder):
    """The fault-free answers, computed serially."""
    return [
        parallel_sweep(
            soak_context, sweep, SOAK_ALGORITHMS,
            optimal_time_limit_s=30.0, ladder=soak_ladder,
        )
        for sweep in soak_sweeps
    ]


@pytest.fixture(autouse=True)
def _no_leaks():
    yield
    chaos.uninstall()
    close_default_executor()
    leaked = shm.active_segments()
    shm.release_all()
    assert leaked == (), f"leaked shared-memory segments: {leaked}"


#: The exact-solver faults ride every sweep: each process's first exact
#: solve times out (demoting the primary rung), after which every HiGHS
#: vector is corrupted — the validator rejects it and B&B answers.
_SOLVER_FAULTS = (
    Fault("optimal.solve", "raise-timeout", at_call=1, count=1),
    Fault("highs.solve.x", "corrupt-solution", count=None),
)


def soak_schedule(seed: int = SOAK_SEED) -> list[ChaosPlan]:
    """Per-sweep fault plans: kill sweep, hang sweep, corrupt sweep."""
    rng = random.Random(seed)
    return [
        ChaosPlan((
            Fault("sweep.task", "kill-worker", at_call=rng.randint(1, 3),
                  count=1),
            *_SOLVER_FAULTS,
        )),
        ChaosPlan((
            Fault("sweep.task", "hang", at_call=rng.randint(1, 2), count=1,
                  seconds=20.0),
            *_SOLVER_FAULTS,
        )),
        ChaosPlan(_SOLVER_FAULTS),
    ]


def _soak_policy() -> SupervisorPolicy:
    return SupervisorPolicy(
        task_deadline_s=4.0, poll_interval_s=0.1, max_task_retries=1,
    )


def _run_soak_campaign(context, sweeps, ladder, directory, supervisor, plans):
    """Drive the campaign sweep by sweep, installing that sweep's plan."""
    collected = {}
    with SweepExecutor(max_workers=2) as executor:
        stream = run_campaign(
            context, sweeps, SOAK_ALGORITHMS,
            executor=executor, max_workers=2, min_parallel_tasks=0,
            optimal_time_limit_s=30.0, ladder=ladder, reorder=False,
            checkpoint_dir=directory, supervisor=supervisor,
        )
        try:
            for plan in plans:
                chaos.install(plan)
                index, results = next(stream)
                collected[index] = results
            chaos.uninstall()
            for index, results in stream:  # drain (compacts the journal)
                collected[index] = results
        finally:
            chaos.uninstall()
    return collected


class TestChaosSoak:
    def test_campaign_under_compound_chaos_is_bit_identical(
        self, soak_context, soak_sweeps, soak_ladder, soak_reference, tmp_path
    ):
        supervisor = SweepSupervisor(_soak_policy())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            collected = _run_soak_campaign(
                soak_context, soak_sweeps, soak_ladder, tmp_path / "chaos",
                supervisor, soak_schedule(),
            )

        # 1. Bit-identical to the fault-free run, sweep by sweep.
        assert sorted(collected) == [0, 1, 2]
        for index, reference in enumerate(soak_reference):
            assert_sweeps_identical(reference, collected[index])

        # 2. Every injected fault family is accounted for.
        stats = supervisor.stats
        assert stats["supervised_sweeps"] == len(soak_sweeps)
        assert stats["pool_crashes"] >= 1, "kill-worker must surface"
        assert stats["preemptions"] >= 1, "hang must trip the watchdog"
        assert stats["quarantined"] >= 1, "repeat offenders must quarantine"
        meta_actions = {
            event["action"]
            for _, results in collected.items()
            for result in results
            for event in result.meta.get("supervisor", {}).get("events", ())
        }
        assert "pool-crash" in meta_actions
        assert "preempted" in meta_actions
        assert "quarantine" in meta_actions
        # The timeout + corruption demotions are on the ladder trail of
        # at least one result (whichever scenario each process hit first).
        demoted_rungs = {
            event.rung
            for _, results in collected.items()
            for result in results
            for event in result.degradation.events
            if event.action == "demote"
        }
        assert "sparse+warm" in demoted_rungs, "injected timeout must show"
        assert "model" in demoted_rungs, "rejected corruption must show"

        # 3. The campaign summary rolls all of it up, JSON-safe.
        summary = campaign_summary(collected, supervisor=supervisor)
        assert summary["sweeps"] == len(soak_sweeps)
        assert summary["quarantined"] >= 1
        assert summary["supervisor"]["stats"]["pool_crashes"] >= 1
        assert json.dumps(summary)

    def test_soaked_campaign_resumes_bit_identically_after_hard_kill(
        self, soak_context, soak_sweeps, soak_ladder, soak_reference, tmp_path
    ):
        directory = tmp_path / "chaos-resume"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            first = _run_soak_campaign(
                soak_context, soak_sweeps, soak_ladder, directory,
                SweepSupervisor(_soak_policy()), soak_schedule(),
            )
        # Hard kill after two committed sweeps: drop the final journal line.
        journal = directory / "campaign.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:3]))
        # The rerun faces the same chaos schedule (fresh counters, as a
        # fresh process would); committed sweeps replay, the lost one
        # re-runs under its sweep's plan.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            resumed = _run_soak_campaign(
                soak_context, soak_sweeps, soak_ladder, directory,
                SweepSupervisor(_soak_policy()), soak_schedule(),
            )
        for index, reference in enumerate(soak_reference):
            assert_sweeps_identical(reference, first[index])
            assert_sweeps_identical(reference, resumed[index])
        restored = [
            index
            for index, results in resumed.items()
            if any(
                e.action == "restore"
                for r in results
                for e in r.degradation.events
            )
        ]
        assert len(restored) == 2


class TestLadderInsideWarmExecutor:
    """Satellite: ladder demotions + quarantine + resume, one scenario set."""

    def test_ladder_demotes_and_quarantines_under_kill_and_hang(
        self, soak_context, soak_ladder
    ):
        """Two chaotic sweeps on one warm executor: a hang sweep (the
        watchdog preempts) then a kill sweep (the pool crashes), both
        with the injected-timeout ladder demotion in the mix, both
        resolving through quarantine to the fault-free answers."""
        scenarios = (
            FailureScenario(frozenset({0})),
            FailureScenario(frozenset({3})),
        )
        reference = parallel_sweep(
            soak_context, scenarios, SOAK_ALGORITHMS,
            optimal_time_limit_s=30.0, ladder=soak_ladder,
        )
        faults = {
            "hang": Fault("sweep.task", "hang", at_call=1, count=1,
                          seconds=20.0),
            "kill": Fault("sweep.task", "kill-worker", at_call=1, count=1),
        }
        supervisors = {kind: SweepSupervisor(_soak_policy()) for kind in faults}
        with SweepExecutor(max_workers=2) as executor:
            for kind, fault in faults.items():
                with chaos.inject(
                    fault,
                    Fault("optimal.solve", "raise-timeout", at_call=1,
                          count=1),
                ), warnings.catch_warnings():
                    warnings.simplefilter("ignore", DegradedResultWarning)
                    chaotic = parallel_sweep(
                        soak_context, scenarios, SOAK_ALGORITHMS,
                        optimal_time_limit_s=30.0, ladder=soak_ladder,
                        max_workers=2, min_parallel_tasks=0,
                        executor=executor, supervisor=supervisors[kind],
                    )
                assert_sweeps_identical(reference, chaotic)
                assert any(
                    result.meta.get("supervisor", {}).get("quarantined")
                    for result in chaotic
                ), f"{kind} sweep must quarantine its poisoned scenarios"
                assert any(
                    event.action == "demote"
                    for result in chaotic
                    for event in result.degradation.events
                ), f"{kind} sweep must carry the ladder demotion trail"
            assert supervisors["hang"].stats["preemptions"] >= 1
            assert supervisors["kill"].stats["pool_crashes"] >= 1

            # Known-poison scenarios bypass the pool in later sweeps of
            # the same supervisor: with the kill fault still armed, the
            # re-run quarantines upfront and nothing ever reaches a
            # worker — no further pool crash.
            survivor = supervisors["kill"]
            crashes_before = survivor.stats["pool_crashes"]
            with chaos.inject(faults["kill"]), warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedResultWarning)
                rerun = parallel_sweep(
                    soak_context, scenarios, SOAK_ALGORITHMS,
                    optimal_time_limit_s=30.0, ladder=soak_ladder,
                    max_workers=2, min_parallel_tasks=0,
                    executor=executor, supervisor=survivor,
                )
            assert_sweeps_identical(reference, rerun)
            assert survivor.stats["pool_crashes"] == crashes_before
            assert all(
                result.meta["supervisor"]["quarantined"] for result in rerun
            )

    def test_interrupted_chaotic_sweep_resumes_bit_identically(
        self, soak_context, soak_ladder, tmp_path
    ):
        """A supervised chaotic sweep killed mid-run (checkpoint chaos)
        resumes from its checkpoint and completes fault-free."""
        scenarios = (
            FailureScenario(frozenset({0})),
            FailureScenario(frozenset({3})),
        )
        reference = parallel_sweep(
            soak_context, scenarios, SOAK_ALGORITHMS,
            optimal_time_limit_s=30.0, ladder=soak_ladder,
        )
        path = tmp_path / "ladder-chaos.json"
        supervisor = SweepSupervisor(_soak_policy())
        with SweepExecutor(max_workers=2) as executor:
            with chaos.inject(
                Fault("sweep.task", "kill-worker", at_call=1, count=1),
                Fault("sweep.checkpoint", "raise-error", at_call=2),
            ), warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedResultWarning)
                with pytest.raises(ChaosError):
                    parallel_sweep(
                        soak_context, scenarios, SOAK_ALGORITHMS,
                        optimal_time_limit_s=30.0, ladder=soak_ladder,
                        max_workers=2, min_parallel_tasks=0,
                        executor=executor, supervisor=supervisor,
                        checkpoint_path=path, checkpoint_every=1,
                    )
            assert path.exists()
            resumed = parallel_sweep(
                soak_context, scenarios, SOAK_ALGORITHMS,
                optimal_time_limit_s=30.0, ladder=soak_ladder,
                max_workers=2, min_parallel_tasks=0,
                executor=executor, supervisor=supervisor,
                checkpoint_path=path, checkpoint_every=1,
            )
        assert_sweeps_identical(reference, resumed)
        assert any(
            event.action == "restore"
            for result in resumed
            for event in result.degradation.events
        )
        assert not path.exists()


class TestEvictionTelemetry:
    """Satellite: layered-LRU eviction counters surface end to end."""

    def test_worker_cache_stats_shape(self):
        from repro.perf.executor import worker_cache_stats

        stats = worker_cache_stats()
        assert set(stats["evictions"]) == {"context", "plan", "chaos_nonce"}
        assert all(count >= 0 for count in stats["evictions"].values())

    def test_fanout_meta_omits_zero_eviction_counters(
        self, soak_context, soak_sweeps, soak_ladder
    ):
        with SweepExecutor(max_workers=2) as executor:
            results = parallel_sweep(
                soak_context, soak_sweeps[0], SOAK_ALGORITHMS,
                optimal_time_limit_s=30.0, ladder=soak_ladder,
                max_workers=2, min_parallel_tasks=0, executor=executor,
            )
        for result in results:
            fanout = result.meta.get("fanout")
            assert fanout is not None
            # Warm workers with room to spare evict nothing — the dict is
            # omitted entirely rather than reported as zeros.
            evictions = fanout.get("evictions", {})
            assert all(count > 0 for count in evictions.values())

    def test_chaos_nonce_eviction_counted_across_chaotic_sweeps(
        self, soak_context, soak_sweeps
    ):
        """Two chaotic sweeps on one warm pool: the second sweep's plan
        install replaces the first's chaos slot, which is an eviction."""
        scenarios = soak_sweeps[0]
        benign = ChaosPlan((
            Fault("sweep.task", "raise-error", at_call=10**9),
        ))
        with SweepExecutor(max_workers=2) as executor:
            for _ in range(2):
                chaos.install(benign)
                try:
                    results = parallel_sweep(
                        soak_context, scenarios, ("pm", "retroflow"),
                        max_workers=2, min_parallel_tasks=0,
                        executor=executor,
                    )
                finally:
                    chaos.uninstall()
            evictions = results[0].meta["fanout"].get("evictions", {})
        assert evictions.get("chaos_nonce", 0) >= 1

    def test_campaign_summary_folds_eviction_telemetry(
        self, soak_context, soak_sweeps, soak_ladder
    ):
        with SweepExecutor(max_workers=2) as executor:
            collected = dict(run_campaign(
                soak_context, soak_sweeps, SOAK_ALGORITHMS,
                executor=executor, max_workers=2, min_parallel_tasks=0,
                optimal_time_limit_s=30.0, ladder=soak_ladder,
            ))
        summary = campaign_summary(collected)
        assert "evictions" in summary
        assert all(count > 0 for count in summary["evictions"].values())
