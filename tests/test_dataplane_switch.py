"""Tests for the per-switch pipeline (Fig. 2 modes)."""

from __future__ import annotations

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.switch import SwitchDataPlane, SwitchMode
from repro.dataplane.tables import FlowEntry
from repro.exceptions import DataPlaneError, TableMissError
from repro.routing.ospf import LegacyRoutingTable


@pytest.fixture
def legacy():
    return LegacyRoutingTable(switch=1, next_hops={5: 2, 7: 3})


class TestModes:
    def test_sdn_mode_uses_flow_table(self, legacy):
        switch = SwitchDataPlane(1, SwitchMode.SDN, legacy)
        switch.install_flow(FlowEntry(flow_id=(0, 5), next_hop=4))
        assert switch.next_hop(Packet(0, 5)) == 4

    def test_sdn_mode_miss_raises(self, legacy):
        switch = SwitchDataPlane(1, SwitchMode.SDN, legacy)
        with pytest.raises(TableMissError):
            switch.next_hop(Packet(0, 5))

    def test_legacy_mode_ignores_flow_table(self, legacy):
        switch = SwitchDataPlane(1, SwitchMode.LEGACY, legacy)
        switch.install_flow(FlowEntry(flow_id=(0, 5), next_hop=4))
        assert switch.next_hop(Packet(0, 5)) == 2  # legacy route wins

    def test_hybrid_prefers_flow_table(self, legacy):
        switch = SwitchDataPlane(1, SwitchMode.HYBRID, legacy)
        switch.install_flow(FlowEntry(flow_id=(0, 5), next_hop=4))
        assert switch.next_hop(Packet(0, 5)) == 4

    def test_hybrid_falls_through_to_legacy(self, legacy):
        """The paper's table-miss entry: unmatched packets use OSPF."""
        switch = SwitchDataPlane(1, SwitchMode.HYBRID, legacy)
        assert switch.next_hop(Packet(0, 5)) == 2
        assert switch.next_hop(Packet(9, 7)) == 3

    def test_sdn_only_switch_without_legacy_table(self):
        switch = SwitchDataPlane(1, SwitchMode.SDN)
        switch.install_flow(FlowEntry(flow_id=(0, 5), next_hop=4))
        assert switch.next_hop(Packet(0, 5)) == 4


class TestConfiguration:
    def test_legacy_mode_requires_table(self):
        with pytest.raises(DataPlaneError, match="legacy table"):
            SwitchDataPlane(1, SwitchMode.LEGACY)
        with pytest.raises(DataPlaneError, match="legacy table"):
            SwitchDataPlane(1, SwitchMode.HYBRID)

    def test_wrong_switch_table_rejected(self, legacy):
        with pytest.raises(DataPlaneError, match="switch"):
            SwitchDataPlane(2, SwitchMode.HYBRID, legacy)

    def test_set_mode(self, legacy):
        switch = SwitchDataPlane(1, SwitchMode.HYBRID, legacy)
        switch.set_mode(SwitchMode.SDN)
        assert switch.mode is SwitchMode.SDN

    def test_set_mode_needs_legacy_table(self):
        switch = SwitchDataPlane(1, SwitchMode.SDN)
        with pytest.raises(DataPlaneError):
            switch.set_mode(SwitchMode.HYBRID)


class TestPacket:
    def test_packet_flow_id(self):
        assert Packet(3, 7).flow_id == (3, 7)

    def test_same_endpoints_rejected(self):
        with pytest.raises(DataPlaneError):
            Packet(3, 3)

    def test_trace_and_delivery(self):
        packet = Packet(0, 2)
        assert not packet.delivered
        packet.visit(0)
        packet.visit(1)
        packet.visit(2)
        assert packet.delivered
        assert packet.current == 2
        assert packet.trace == [0, 1, 2]

    def test_current_before_entry_raises(self):
        with pytest.raises(DataPlaneError):
            Packet(0, 2).current
