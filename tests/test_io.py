"""Tests for result serialization and the export CLI command."""

from __future__ import annotations

import csv
import json
import math

import pytest

from repro.exceptions import ReproError
from repro.io.serialize import dumps_json, figure_to_csv, to_jsonable, write_csv, write_json
from repro.metrics.summary import summarize


class TestToJsonable:
    def test_primitives_pass_through(self):
        assert to_jsonable({"a": 1, "b": "x", "c": None, "d": True}) == {
            "a": 1,
            "b": "x",
            "c": None,
            "d": True,
        }

    def test_tuples_become_lists(self):
        assert to_jsonable((1, 2, (3,))) == [1, 2, [3]]

    def test_dataclasses_become_dicts(self):
        summary = summarize([1, 2, 3])
        data = to_jsonable(summary)
        assert data["median"] == 2.0
        assert data["count"] == 3

    def test_nonfinite_floats_become_none(self):
        assert to_jsonable(float("inf")) is None
        assert to_jsonable(float("nan")) is None

    def test_dict_keys_stringified(self):
        assert to_jsonable({(1, 2): 3}) == {"(1, 2)": 3}

    def test_unserializable_rejected(self):
        with pytest.raises(ReproError, match="serialize"):
            to_jsonable(object())

    def test_dumps_round_trips(self):
        text = dumps_json({"x": [1.5, 2.5]})
        assert json.loads(text) == {"x": [1.5, 2.5]}


@pytest.fixture(scope="module")
def fig_data(att_context):
    from repro.experiments.figures import failure_figure_data

    return failure_figure_data(att_context, 1, ("retroflow", "pm"))


class TestFigureCsv:
    def test_one_row_per_case_algorithm(self, fig_data):
        rows = list(csv.reader(figure_to_csv(fig_data).splitlines()))
        header, body = rows[0], rows[1:]
        assert header[:3] == ["n_failures", "case", "algorithm"]
        assert len(body) == 6 * 2

    def test_values_parse_back(self, fig_data):
        rows = list(csv.DictReader(figure_to_csv(fig_data).splitlines()))
        for row in rows:
            assert int(row["n_failures"]) == 1
            assert float(row["recovered_flows_pct"]) == pytest.approx(100.0)
            assert not math.isnan(float(row["total_programmability"]))

    def test_write_files(self, fig_data, tmp_path):
        json_path = tmp_path / "fig.json"
        csv_path = tmp_path / "fig.csv"
        write_json(str(json_path), fig_data)
        write_csv(str(csv_path), fig_data)
        loaded = json.loads(json_path.read_text())
        assert loaded["n_failures"] == 1
        assert csv_path.read_text().startswith("n_failures,case,algorithm")


class TestExportCommand:
    def test_export_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig1.json"
        code = main(
            ["export", "--failures", "1", "--algorithms", "retroflow,pm", "--out", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert len(data["cases"]) == 6

    def test_export_csv(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "fig1.csv"
        code = main(
            ["export", "--failures", "1", "--algorithms", "pm", "--out", str(out)]
        )
        assert code == 0
        assert out.read_text().count("\n") == 7  # header + 6 cases

    def test_export_bad_extension(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["export", "--failures", "1", "--algorithms", "pm", "--out", str(tmp_path / "x.txt")]
        )
        assert code == 2
