"""Tests for the P′ IP formulation."""

from __future__ import annotations

import pytest

from repro.fmssm.formulation import build_fmssm_model
from repro.lp import SolveStatus, solve
from conftest import make_tiny_instance


class TestModelShape:
    def test_variable_counts(self, tiny_instance):
        model, handles = build_fmssm_model(tiny_instance)
        n_pairs = len(tiny_instance.pairs)
        assert len(handles.x) == 2 * 2
        assert len(handles.y) == n_pairs
        assert len(handles.w) == n_pairs * 2
        assert model.n_vars == 4 + n_pairs + 2 * n_pairs + 1  # + r

    def test_constraint_counts(self, tiny_instance):
        model, handles = build_fmssm_model(tiny_instance)
        n_pairs = len(tiny_instance.pairs)
        expected = (
            2                    # Eq. (2) per switch
            + 3 * len(handles.w)  # McCormick
            + 2                  # Eq. (12) per controller
            + 3                  # Eq. (13) per recoverable flow
            + 1                  # Eq. (14)
        )
        assert model.n_constraints == expected

    def test_delay_constraint_optional(self, tiny_instance):
        with_delay, _ = build_fmssm_model(tiny_instance, enforce_delay=True)
        without, _ = build_fmssm_model(tiny_instance, enforce_delay=False)
        assert with_delay.n_constraints == without.n_constraints + 1

    def test_full_recovery_sets_r_lower_bound(self, tiny_instance):
        model, handles = build_fmssm_model(tiny_instance, require_full_recovery=True)
        assert handles.r is not None
        assert handles.r.lb == 1.0


class TestSolvedSemantics:
    def test_tiny_optimum(self, tiny_instance):
        """With spare {2, 2} everything is affordable: all four pairs on.

        pro(a)=2, pro(b)=5, pro(c)=4 -> r=2, total=11.
        """
        model, handles = build_fmssm_model(tiny_instance)
        result = solve(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.value("r") == pytest.approx(2.0)
        total = sum(
            tiny_instance.pbar[(s, f)] * result.value(var.name)
            for (s, c, f), var in handles.w.items()
        )
        assert total == pytest.approx(11.0)

    def test_mccormick_consistency(self, tiny_instance):
        model, handles = build_fmssm_model(tiny_instance)
        result = solve(model)
        for (switch, controller, flow_id), w_var in handles.w.items():
            w = result.value(w_var.name)
            x = result.value(handles.x[(switch, controller)].name)
            y = result.value(handles.y[(switch, flow_id)].name)
            assert w == pytest.approx(x * y, abs=1e-6)

    def test_single_mapping_per_switch(self, tiny_instance):
        model, handles = build_fmssm_model(tiny_instance)
        result = solve(model)
        for switch in tiny_instance.switches:
            total = sum(
                result.value(handles.x[(switch, c)].name)
                for c in tiny_instance.controllers
            )
            assert total <= 1 + 1e-6

    def test_capacity_respected_when_scarce(self):
        instance = make_tiny_instance(spare={100: 1, 200: 1})
        model, handles = build_fmssm_model(instance)
        result = solve(model)
        assert result.status is SolveStatus.OPTIMAL
        for controller in instance.controllers:
            load = sum(
                result.value(handles.w[(s, controller, f)].name)
                for (s, f) in instance.pairs
            )
            assert load <= instance.spare[controller] + 1e-6

    def test_infeasible_when_full_recovery_impossible(self):
        # One unit of spare cannot give all three flows a pair.
        instance = make_tiny_instance(spare={100: 1, 200: 0})
        model, _ = build_fmssm_model(instance, require_full_recovery=True)
        result = solve(model)
        assert result.status is SolveStatus.INFEASIBLE

    def test_zero_budget_still_feasible_without_requirement(self):
        instance = make_tiny_instance(spare={100: 0, 200: 0})
        model, _ = build_fmssm_model(instance)
        result = solve(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(0.0)
