"""Tests for flow/path utilities (including the gamma counts)."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError, TopologyError
from repro.flows.flow import Flow
from repro.flows.paths import (
    flows_by_id,
    flows_through,
    path_delay_ms,
    switch_flow_counts,
    validate_path,
)
from repro.topology.generators import grid_topology


@pytest.fixture(scope="module")
def grid():
    return grid_topology(3, 3)


class TestValidatePath:
    def test_valid_path(self, grid):
        validate_path(grid, (0, 1, 2, 5))

    def test_missing_link_rejected(self, grid):
        with pytest.raises(TopologyError, match="missing link"):
            validate_path(grid, (0, 8))

    def test_repeated_node_rejected(self, grid):
        with pytest.raises(FlowError, match="revisits"):
            validate_path(grid, (0, 1, 0))

    def test_unknown_node_rejected(self, grid):
        with pytest.raises(TopologyError, match="unknown node"):
            validate_path(grid, (0, 99))

    def test_single_node_rejected(self, grid):
        with pytest.raises(FlowError):
            validate_path(grid, (0,))


class TestPathDelay:
    def test_sum_of_link_delays(self, grid):
        path = (0, 1, 2)
        expected = grid.link_delay_ms(0, 1) + grid.link_delay_ms(1, 2)
        assert path_delay_ms(grid, path) == pytest.approx(expected)

    def test_longer_paths_cost_more(self, grid):
        assert path_delay_ms(grid, (0, 1, 2)) > path_delay_ms(grid, (0, 1))


class TestFlowIndexes:
    flows = [
        Flow(0, 2, (0, 1, 2)),
        Flow(2, 0, (2, 1, 0)),
        Flow(0, 1, (0, 1)),
    ]

    def test_flows_by_id(self):
        index = flows_by_id(self.flows)
        assert index[(0, 2)].path == (0, 1, 2)
        assert len(index) == 3

    def test_flows_by_id_duplicate_rejected(self):
        with pytest.raises(FlowError, match="duplicate"):
            flows_by_id(self.flows + [Flow(0, 2, (0, 1, 2))])

    def test_flows_through_includes_destination_by_default(self):
        through_1 = flows_through(self.flows, 1)
        assert {f.flow_id for f in through_1} == {(0, 2), (2, 0), (0, 1)}

    def test_flows_through_transit_only(self):
        through_1 = flows_through(self.flows, 1, include_destination=False)
        assert {f.flow_id for f in through_1} == {(0, 2), (2, 0)}

    def test_switch_flow_counts_destination_included(self):
        gamma = switch_flow_counts(self.flows)
        assert gamma[1] == 3
        assert gamma[0] == 3  # src of two, dst of one
        assert gamma[2] == 2

    def test_switch_flow_counts_transit_only(self):
        gamma = switch_flow_counts(self.flows, include_destination=False)
        assert gamma[1] == 2
        assert gamma[2] == 1

    def test_counts_sum_to_path_lengths(self):
        gamma = switch_flow_counts(self.flows)
        assert sum(gamma.values()) == sum(len(f.path) for f in self.flows)
