"""Tests for the Optimal solver (exact P′)."""

from __future__ import annotations

import pytest

from repro.fmssm.evaluation import evaluate_solution, verify_solution
from repro.fmssm.optimal import solve_optimal
from conftest import make_tiny_instance


class TestTinyOptimal:
    def test_optimum_matches_formulation(self, tiny_instance):
        solution = solve_optimal(tiny_instance)
        assert solution.feasible
        verify_solution(tiny_instance, solution, enforce_delay=True)
        evaluation = evaluate_solution(tiny_instance, solution)
        assert evaluation.least_programmability == 2
        assert evaluation.total_programmability == 11

    def test_bnb_backend_agrees(self, tiny_instance):
        highs = evaluate_solution(tiny_instance, solve_optimal(tiny_instance, solver="highs"))
        bnb = evaluate_solution(tiny_instance, solve_optimal(tiny_instance, solver="bnb"))
        assert highs.least_programmability == bnb.least_programmability
        assert highs.total_programmability == bnb.total_programmability

    def test_infeasible_full_recovery(self):
        instance = make_tiny_instance(spare={100: 1, 200: 0})
        solution = solve_optimal(instance, require_full_recovery=True)
        assert not solution.feasible
        assert solution.mapping == {}
        assert solution.meta["status"] == "infeasible"

    def test_relaxed_recovery_always_feasible(self):
        instance = make_tiny_instance(spare={100: 1, 200: 0})
        solution = solve_optimal(instance, require_full_recovery=False)
        assert solution.feasible
        evaluation = evaluate_solution(instance, solution)
        # One unit of budget buys the most valuable pair: switch 2 maps to
        # controller 100 and flow c gains p̄ = 4 there.
        assert evaluation.total_programmability == 4

    def test_capacity_binding(self):
        instance = make_tiny_instance(spare={100: 1, 200: 1})
        solution = solve_optimal(instance, require_full_recovery=False)
        evaluation = evaluate_solution(instance, solution)
        assert sum(evaluation.controller_load.values()) <= 2

    def test_delay_constraint_binds(self):
        """With a tight G the optimum activates fewer pairs."""
        loose = make_tiny_instance(ideal_delay_ms=100.0)
        tight = make_tiny_instance(ideal_delay_ms=3.0)
        loose_total = evaluate_solution(
            loose, solve_optimal(loose, require_full_recovery=False)
        ).total_programmability
        tight_total = evaluate_solution(
            tight, solve_optimal(tight, require_full_recovery=False)
        ).total_programmability
        assert tight_total < loose_total

    def test_solution_respects_delay_budget(self, tiny_instance):
        solution = solve_optimal(tiny_instance)
        evaluation = evaluate_solution(tiny_instance, solution)
        assert evaluation.total_delay_ms <= tiny_instance.ideal_delay_ms + 1e-6


class TestSmallNetworkOptimal:
    def test_small_context_solves(self, small_context, small_instance):
        solution = solve_optimal(small_instance, time_limit_s=60)
        assert solution.feasible
        verify_solution(small_instance, solution, enforce_delay=True)
        evaluation = evaluate_solution(small_instance, solution)
        assert evaluation.recovery_fraction == 1.0

    def test_optimal_dominates_pm_objective(self, small_instance):
        """On instances where Optimal exists, its combined objective is
        at least PM's restricted to the same (delay-feasible) space."""
        from repro.pm import solve_pm

        optimal = evaluate_solution(small_instance, solve_optimal(small_instance, time_limit_s=60))
        pm_strict = evaluate_solution(
            small_instance, solve_pm(small_instance, enforce_delay=True)
        )
        assert optimal.objective >= pm_strict.objective - 1e-9
