"""Fault-injection tests: sweeps must survive chaos with correct results.

Every test here follows the same shape: run a clean baseline sweep, run
the same sweep under an installed :class:`~repro.resilience.chaos.ChaosPlan`,
and assert that (a) the sweep completes, (b) the merged results are
identical to the baseline, and (c) the degradation reports name what
actually happened.
"""

from __future__ import annotations

import warnings

import pytest

from repro.control.failures import FailureScenario
from repro.exceptions import ChaosError, DegradedResultWarning, SolverTimeoutError
from repro.experiments.scenarios import custom_context
from repro.perf.sweep import parallel_sweep
from repro.resilience import chaos
from repro.resilience.degradation import default_ladder
from repro.topology.generators import ring_topology

ALGORITHMS = ("optimal", "pm", "retroflow")


@pytest.fixture(scope="module")
def sweep_context():
    return custom_context(
        ring_topology(10, chords=5, seed=7),
        controller_sites=(0, 3, 7),
        capacity=160,
    )


@pytest.fixture(scope="module")
def sweep_scenarios():
    return tuple(FailureScenario(frozenset({c})) for c in (0, 3, 7))


@pytest.fixture(scope="module")
def baseline(sweep_context, sweep_scenarios):
    return parallel_sweep(
        sweep_context, sweep_scenarios, ALGORITHMS,
        max_workers=1, optimal_time_limit_s=60.0,
    )


def assert_same_solutions(expected, actual):
    assert len(expected) == len(actual)
    for exp, act in zip(expected, actual):
        assert exp.scenario == act.scenario
        assert sorted(exp.solutions) == sorted(act.solutions)
        for name in exp.solutions:
            assert exp.solutions[name].mapping == act.solutions[name].mapping, name
            assert exp.solutions[name].sdn_pairs == act.solutions[name].sdn_pairs, name
            assert exp.evaluations[name].total_programmability == (
                act.evaluations[name].total_programmability
            ), name


class TestHarness:
    def test_fault_fires_window(self):
        fault = chaos.Fault("sweep.task", "raise-error", at_call=3, count=2)
        assert [fault.fires(n) for n in range(1, 7)] == [
            False, False, True, True, False, False,
        ]

    def test_open_ended_fault(self):
        fault = chaos.Fault("sweep.task", "raise-error", at_call=2, count=None)
        assert not fault.fires(1)
        assert all(fault.fires(n) for n in (2, 50, 5000))

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            chaos.Fault("sweep.task", "explode")

    def test_at_call_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            chaos.Fault("sweep.task", "raise-error", at_call=0)

    def test_check_is_noop_without_plan(self):
        chaos.uninstall()
        chaos.check("sweep.task")  # must not raise, must not count

    def test_inject_installs_and_uninstalls(self):
        assert chaos.active_plan() is None
        with chaos.inject(chaos.Fault("sweep.task", "raise-error")):
            assert chaos.active_plan() is not None
            with pytest.raises(ChaosError):
                chaos.check("sweep.task")
        assert chaos.active_plan() is None

    def test_raise_timeout_action(self):
        with chaos.inject(chaos.Fault("optimal.solve", "raise-timeout")):
            with pytest.raises(SolverTimeoutError):
                chaos.check("optimal.solve")

    def test_counters_are_per_site(self):
        with chaos.inject(
            chaos.Fault("optimal.solve", "raise-error", at_call=2)
        ):
            chaos.check("optimal.solve")       # call 1: clean
            chaos.check("highs.solve")          # other site, no effect
            with pytest.raises(ChaosError):
                chaos.check("optimal.solve")   # call 2: fires

    def test_corrupt_payload_flips_byte(self):
        with chaos.inject(chaos.Fault("sweep.payload", "corrupt-payload")):
            out = chaos.transform("sweep.payload", b"abcdef")
        assert out != b"abcdef"
        assert len(out) == 6

    def test_corrupt_solution_activates_everything(self):
        import numpy as np

        with chaos.inject(chaos.Fault("highs.solve.x", "corrupt-solution")):
            out = chaos.transform("highs.solve.x", np.array([0.0, 1.0, 0.3]))
        assert list(out) == [1.0, 1.0, 1.0]

    def test_transform_passthrough_without_plan(self):
        chaos.uninstall()
        assert chaos.transform("sweep.payload", b"abc") == b"abc"


class TestSweepUnderChaos:
    def test_corrupt_payload_degrades_to_serial(
        self, sweep_context, sweep_scenarios, baseline
    ):
        """A poisoned worker payload breaks the pool; the sweep must fall
        back to the serial path with identical results and say so."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with chaos.inject(chaos.Fault("sweep.payload", "corrupt-payload")):
                results = parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=2, optimal_time_limit_s=60.0,
                )
        assert_same_solutions(baseline, results)
        degraded = [
            w for w in caught if issubclass(w.category, DegradedResultWarning)
        ]
        assert degraded, "serial fallback must warn, not be silent"
        assert "serially" in str(degraded[0].message)
        for result in results:
            assert result.degradation.degraded
            assert any(
                e.action == "serial-fallback" for e in result.degradation.events
            )

    def test_killed_worker_degrades_to_serial(
        self, sweep_context, sweep_scenarios, baseline
    ):
        """kill-worker terminates a pool worker mid-task (the parent is
        immune); completed results are kept and the rest finish serially."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with chaos.inject(
                chaos.Fault("sweep.task", "kill-worker", at_call=1)
            ):
                results = parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=2, optimal_time_limit_s=60.0,
                )
        assert_same_solutions(baseline, results)
        assert any(
            issubclass(w.category, DegradedResultWarning) for w in caught
        )

    def test_nth_call_timeout_degrades_one_scenario(
        self, sweep_context, sweep_scenarios, baseline
    ):
        """Three injected timeouts at the solve_optimal entry exhaust both
        HiGHS rungs for the first scenario only; it lands on B&B while the
        other scenarios stay on the primary rung — and every merged result
        is still correct (B&B proves the same optimum)."""
        ladder = default_ladder(time_limit_s=60.0, retries=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with chaos.inject(
                chaos.Fault("optimal.solve", "raise-timeout", at_call=1, count=3)
            ):
                results = parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=1, ladder=ladder,
                )
        assert_same_solutions(baseline, results)
        assert results[0].degradation.rung_used == "bnb"
        assert results[0].degradation.degraded
        assert results[0].solutions["optimal"].meta["ladder_rung"] == "bnb"
        for result in results[1:]:
            assert result.degradation.rung_used == "sparse+warm"
            assert not any(
                e.action == "demote" for e in result.degradation.events
            )

    def test_sweep_task_chaos_error_propagates_without_ladder(
        self, sweep_context, sweep_scenarios
    ):
        """Without a ladder there is nothing to absorb a task-level bug:
        it must propagate, exactly as the serial sweep would raise it."""
        with chaos.inject(chaos.Fault("sweep.task", "raise-error", at_call=1)):
            with pytest.raises(ChaosError):
                parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=1, optimal_time_limit_s=60.0,
                )

    def test_corrupt_solution_absorbed_by_ladder(self):
        """A lying solver vector is caught by the validator and demoted
        past, so the sweep still completes with a correct answer."""
        context = custom_context(
            ring_topology(10, chords=5, seed=7),
            controller_sites=(0, 3, 7),
            capacity={0: 200, 3: 200, 7: 30},
        )
        scenarios = (FailureScenario(frozenset({3})),)
        baseline = parallel_sweep(
            context, scenarios, ("optimal",), max_workers=1,
            optimal_time_limit_s=60.0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with chaos.inject(
                chaos.Fault("optimal.solve", "raise-timeout", at_call=1, count=1),
                chaos.Fault("highs.solve.x", "corrupt-solution", count=None),
            ):
                results = parallel_sweep(
                    context, scenarios, ("optimal",), max_workers=1,
                    ladder=default_ladder(time_limit_s=60.0, retries=0),
                )
        assert results[0].degradation.rung_used == "bnb"
        assert any(
            "eq3-capacity" in e.reason
            for e in results[0].degradation.demotions
        )
        solution = results[0].solutions["optimal"]
        expected = baseline[0].solutions["optimal"]
        assert solution.meta["objective"] == expected.meta["objective"]


class TestShmUnderChaos:
    """The shared-memory segment must never leak, whatever chaos does."""

    def test_shm_sweep_clean_run_releases_segment(
        self, sweep_context, sweep_scenarios, baseline
    ):
        from repro.perf import shm

        results = parallel_sweep(
            sweep_context, sweep_scenarios, ALGORITHMS,
            max_workers=2, optimal_time_limit_s=60.0, transport="shm",
        )
        assert_same_solutions(baseline, results)
        assert shm.active_segments() == ()
        assert results[0].meta["fanout"]["transport"] == "shm"

    def test_shm_sweep_killed_worker_releases_segment(
        self, sweep_context, sweep_scenarios, baseline
    ):
        from repro.perf import shm

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with chaos.inject(chaos.Fault("sweep.task", "kill-worker", at_call=1)):
                results = parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=2, optimal_time_limit_s=60.0, transport="shm",
                )
        assert_same_solutions(baseline, results)
        assert shm.active_segments() == ()
        assert any(issubclass(w.category, DegradedResultWarning) for w in caught)

    def test_shm_corrupt_inband_degrades_to_serial(
        self, sweep_context, sweep_scenarios, baseline
    ):
        from repro.perf import shm

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with chaos.inject(chaos.Fault("sweep.payload", "corrupt-payload")):
                results = parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=2, optimal_time_limit_s=60.0, transport="shm",
                )
        assert_same_solutions(baseline, results)
        assert shm.active_segments() == ()
        assert any(
            issubclass(w.category, DegradedResultWarning) for w in caught
        ), "serial fallback must warn, not be silent"
        for result in results:
            assert any(
                e.action == "serial-fallback" for e in result.degradation.events
            )

    def test_incremental_sweep_survives_killed_worker(
        self, sweep_context, sweep_scenarios, baseline
    ):
        from repro.perf import shm

        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            with chaos.inject(chaos.Fault("sweep.task", "kill-worker", at_call=1)):
                results = parallel_sweep(
                    sweep_context, sweep_scenarios, ALGORITHMS,
                    max_workers=2, optimal_time_limit_s=60.0,
                    transport="shm", incremental=True,
                )
        assert_same_solutions(baseline, results)
        assert shm.active_segments() == ()
