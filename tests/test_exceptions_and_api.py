"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in exceptions.__all__:
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError), name

    @pytest.mark.parametrize(
        "child,parent",
        [
            (exceptions.ParseError, exceptions.TopologyError),
            (exceptions.TableMissError, exceptions.DataPlaneError),
            (exceptions.ForwardingLoopError, exceptions.DataPlaneError),
            (exceptions.CapacityError, exceptions.ControlPlaneError),
            (exceptions.ScenarioError, exceptions.ControlPlaneError),
            (exceptions.InfeasibleError, exceptions.SolverError),
            (exceptions.UnboundedError, exceptions.SolverError),
            (exceptions.SolverTimeoutError, exceptions.SolverError),
            (exceptions.RungTimeoutError, exceptions.SolverTimeoutError),
            (exceptions.ValidationError, exceptions.SolutionError),
            (exceptions.ChaosError, exceptions.ReproError),
            (exceptions.CheckpointError, exceptions.ReproError),
            (exceptions.DegradedResultWarning, exceptions.ReproError),
        ],
    )
    def test_specializations(self, child, parent):
        assert issubclass(child, parent)

    def test_degraded_result_warning_is_a_warning(self):
        """It must be issuable through ``warnings.warn``."""
        assert issubclass(exceptions.DegradedResultWarning, UserWarning)

    def test_rung_timeout_carries_context(self):
        err = exceptions.RungTimeoutError(
            "rung timed out", elapsed_s=1.5, rung="sparse+warm", fallback="model"
        )
        assert err.elapsed_s == 1.5
        assert err.rung == "sparse+warm"
        assert err.fallback == "model"

    def test_catching_base_catches_everything(self):
        from repro.topology.graph import Topology

        with pytest.raises(exceptions.ReproError):
            Topology("t", {}, [])


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert major.isdigit() and minor.isdigit() and patch.isdigit()

    def test_module_docstring_quickstart_runs(self):
        """The usage snippet in the package docstring must stay valid."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_paper_algorithm_names_exported(self):
        registered = repro.list_algorithms()
        for name in ("pm", "optimal", "retroflow", "pg"):
            assert name in registered

    def test_haversine_doctest(self):
        import doctest

        from repro.geo import haversine as haversine_module

        results = doctest.testmod(haversine_module, verbose=False)
        assert results.failed == 0

    def test_att_doctest(self):
        import doctest

        from repro.topology import att as att_module

        results = doctest.testmod(att_module, verbose=False)
        assert results.failed == 0
