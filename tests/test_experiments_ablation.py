"""Unit tests for the cheaper ablation functions (the expensive lambda
sweep runs in benchmarks only)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import (
    capacity_sweep,
    counter_strategy_comparison,
    delay_constraint_ablation,
    phase2_ablation,
)


class TestPhase2Ablation:
    @pytest.fixture(scope="class")
    def rows(self, att_context):
        return phase2_ablation(att_context)

    def test_three_variants(self, rows):
        assert {r["variant"] for r in rows} == {
            "pm (paper order)",
            "pm (greedy order)",
            "pm (no phase 2)",
        }

    def test_phase2_only_affects_total(self, rows):
        by_variant = {r["variant"]: r for r in rows}
        assert (
            by_variant["pm (no phase 2)"]["least"]
            == by_variant["pm (paper order)"]["least"]
        )
        assert (
            by_variant["pm (no phase 2)"]["total"]
            < by_variant["pm (paper order)"]["total"]
        )

    def test_no_phase2_uses_less_resource(self, rows):
        by_variant = {r["variant"]: r for r in rows}
        assert (
            by_variant["pm (no phase 2)"]["resource_used"]
            <= by_variant["pm (paper order)"]["resource_used"]
        )


class TestDelayAblation:
    def test_strict_within_budget(self, att_context):
        rows = delay_constraint_ablation(att_context)
        by_variant = {r["variant"]: r for r in rows}
        strict = by_variant["pm-strict"]
        assert strict["total_delay_ms"] <= strict["ideal_delay_ms"] + 1e-6
        assert by_variant["pm"]["total"] >= strict["total"]


class TestCapacitySweep:
    def test_monotone_recovery(self):
        rows = capacity_sweep(capacities=(450, 550), algorithms=("pm",))
        fractions = [r["recovered_pct"] for r in rows]
        assert fractions[0] <= fractions[1]

    def test_all_algorithms_reported(self):
        rows = capacity_sweep(capacities=(500,), algorithms=("pm", "retroflow"))
        assert {r["algorithm"] for r in rows} == {"pm", "retroflow"}


class TestCounterComparison:
    def test_orders_preserved_across_strategies(self):
        rows = counter_strategy_comparison(
            strategies=("lfa", "dag"), algorithms=("pm", "retroflow")
        )
        by_key = {(r["strategy"], r["algorithm"]): r for r in rows}
        for strategy in ("lfa", "dag"):
            assert (
                by_key[(strategy, "pm")]["total"]
                > by_key[(strategy, "retroflow")]["total"]
            )
