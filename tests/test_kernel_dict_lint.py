"""Lint: the deprecated ``kernel="dict"`` route has no src/ call sites.

The dict kernels survive only as the cross-validation reference the
array kernels are bit-checked against (DESIGN §10); production code
must never select them.  This test AST-walks every module under
``src/`` and fails on any call passing ``kernel="dict"`` — the only
sanctioned uses live in tests and benchmarks, wrapped in
:func:`repro.perf.kernels.dict_kernel_reference`.
"""

from __future__ import annotations

import ast
import os
import warnings
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"


def _dict_kernel_call_sites(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    sites = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if (
                keyword.arg == "kernel"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value == "dict"
            ):
                sites.append(f"{path.relative_to(SRC)}:{node.lineno}")
    return sites


def test_no_dict_kernel_call_sites_in_src():
    offenders = []
    for root, _dirs, files in os.walk(SRC):
        for name in sorted(files):
            if name.endswith(".py"):
                offenders.extend(_dict_kernel_call_sites(Path(root) / name))
    assert offenders == [], (
        'deprecated kernel="dict" call sites in src/ (use the array route, '
        "or move the reference invocation into a test wrapped in "
        f"dict_kernel_reference()): {offenders}"
    )


def test_dict_route_warns_outside_reference_block():
    from repro.perf.kernels import dict_kernel_reference, resolve_kernel

    with pytest.warns(DeprecationWarning, match="cross-validation reference"):
        assert resolve_kernel("dict") == "dict"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with dict_kernel_reference():
            assert resolve_kernel("dict") == "dict"
        assert resolve_kernel(None) == "array"
