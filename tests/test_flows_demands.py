"""Tests for workload generation."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError, RoutingError
from repro.flows.demands import (
    all_pairs_flows,
    flows_from_pairs,
    gravity_demands,
    random_pairs_flows,
    shortest_path,
)
from repro.topology.generators import grid_topology, ring_topology


@pytest.fixture(scope="module")
def grid():
    return grid_topology(3, 3)


class TestShortestPath:
    def test_endpoints(self, grid):
        path = shortest_path(grid, 0, 8)
        assert path[0] == 0 and path[-1] == 8

    def test_hops_metric_minimizes_hops(self, grid):
        path = shortest_path(grid, 0, 8, weight="hops")
        assert len(path) == 5  # 4 hops across a 3x3 grid

    def test_unknown_weight_rejected(self, grid):
        with pytest.raises(ValueError, match="weight"):
            shortest_path(grid, 0, 8, weight="bananas")

    def test_unknown_endpoint_rejected(self, grid):
        with pytest.raises(RoutingError):
            shortest_path(grid, 0, 99)

    def test_deterministic(self, grid):
        assert shortest_path(grid, 0, 8) == shortest_path(grid, 0, 8)


class TestAllPairs:
    def test_count_is_n_times_n_minus_1(self, grid):
        flows = all_pairs_flows(grid)
        assert len(flows) == 9 * 8

    def test_att_workload_size(self, att):
        assert len(all_pairs_flows(att, weight="hops")) == 600

    def test_unique_flow_ids(self, grid):
        flows = all_pairs_flows(grid)
        assert len({f.flow_id for f in flows}) == len(flows)

    def test_paths_are_shortest_in_hops(self, grid):
        import networkx as nx

        lengths = dict(nx.all_pairs_shortest_path_length(grid.graph))
        for flow in all_pairs_flows(grid, weight="hops"):
            assert flow.hop_count == lengths[flow.src][flow.dst]

    def test_demand_applied(self, grid):
        flows = all_pairs_flows(grid, demand=5.0)
        assert all(f.demand == 5.0 for f in flows)


class TestRandomPairs:
    def test_requested_count(self, grid):
        flows = random_pairs_flows(grid, 10, seed=1)
        assert len(flows) == 10
        assert len({f.flow_id for f in flows}) == 10

    def test_deterministic_for_seed(self, grid):
        a = [f.flow_id for f in random_pairs_flows(grid, 12, seed=4)]
        b = [f.flow_id for f in random_pairs_flows(grid, 12, seed=4)]
        assert a == b

    def test_too_many_rejected(self, grid):
        with pytest.raises(FlowError, match="n_flows"):
            random_pairs_flows(grid, 9 * 8 + 1)

    def test_zero_rejected(self, grid):
        with pytest.raises(FlowError):
            random_pairs_flows(grid, 0)


class TestGravity:
    def test_total_demand_respected(self, grid):
        flows = gravity_demands(grid, total_demand=1000.0)
        assert sum(f.demand for f in flows) == pytest.approx(1000.0)

    def test_high_degree_nodes_attract_more(self):
        topo = ring_topology(8, chords=0, seed=0)
        flows = gravity_demands(topo, total_demand=800.0)
        # Uniform degrees -> uniform demands on a plain ring.
        demands = {f.demand for f in flows}
        assert max(demands) == pytest.approx(min(demands))

    def test_custom_population(self, grid):
        population = {n: 1.0 for n in grid.nodes}
        population[0] = 100.0
        flows = gravity_demands(grid, total_demand=100.0, population=population)
        # From node 0: 8 pairs each with weight 100.  From node 1: weight
        # 100 toward node 0 plus 7 unit-weight pairs = 107.
        from_zero = sum(f.demand for f in flows if f.src == 0)
        from_one = sum(f.demand for f in flows if f.src == 1)
        assert from_zero == pytest.approx(from_one * 800 / 107)

    def test_nonpositive_total_rejected(self, grid):
        with pytest.raises(FlowError):
            gravity_demands(grid, total_demand=0.0)

    def test_nonpositive_mass_rejected(self, grid):
        population = {n: 1.0 for n in grid.nodes}
        population[3] = 0.0
        with pytest.raises(FlowError, match="mass"):
            gravity_demands(grid, population=population)


class TestFlowsFromPairs:
    def test_explicit_pairs(self, grid):
        flows = flows_from_pairs(grid, [(0, 8), (8, 0)])
        assert [f.flow_id for f in flows] == [(0, 8), (8, 0)]

    def test_duplicates_rejected(self, grid):
        with pytest.raises(FlowError, match="duplicate"):
            flows_from_pairs(grid, [(0, 8), (0, 8)])
