"""Incremental cross-scenario solving must never change an answer.

Covers :mod:`repro.perf.incremental` (chain ordering, segmentation,
neighbor repair), the :class:`~repro.fmssm.optimal.WarmChain` threading
through ``solve_optimal``, the combinatorial pre-certificate, and the
headline guarantee: an incremental sweep is bit-identical to independent
per-scenario solves.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.failures import FailureScenario, enumerate_failure_scenarios
from repro.experiments.scenarios import custom_context
from repro.fmssm.optimal import WarmChain, _combinatorial_bound, solve_optimal
from repro.lp.highs import solve_form_relaxation
from repro.perf.compile import compile_fmssm
from repro.perf.incremental import chain_segments, hamming_chain, repair_solution
from repro.perf.sweep import parallel_sweep
from repro.pm.algorithm import solve_pm
from repro.resilience.validate import validate_solution
from repro.topology.generators import ring_topology


def _scenarios(sets):
    return [FailureScenario(frozenset(s)) for s in sets]


class TestHammingChain:
    def test_is_permutation_starting_at_zero(self):
        scenarios = _scenarios([{1}, {2}, {1, 2}, {3}, {1, 3}])
        order = hamming_chain(scenarios)
        assert sorted(order) == list(range(5))
        assert order[0] == 0

    def test_prefers_nearest_neighbor(self):
        # From {1}: {1,2} is distance 1, {3,4} is distance 3.
        scenarios = _scenarios([{1}, {3, 4}, {1, 2}])
        assert hamming_chain(scenarios) == [0, 2, 1]

    def test_tie_breaks_by_index(self):
        scenarios = _scenarios([{1}, {1, 3}, {1, 2}])
        # Both neighbors are at distance 1; the lower index wins.
        assert hamming_chain(scenarios) == [0, 1, 2]

    def test_deterministic_and_total(self):
        scenarios = _scenarios([{a, b} for a in range(4) for b in range(4, 7)])
        assert hamming_chain(scenarios) == hamming_chain(scenarios)

    def test_empty_and_singleton(self):
        assert hamming_chain([]) == []
        assert hamming_chain(_scenarios([{5}])) == [0]

    def test_adjacent_distance_never_beaten_by_skipped_candidate(self):
        scenarios = _scenarios([{a} for a in range(6)] + [{a, a + 1} for a in range(5)])
        order = hamming_chain(scenarios)
        sets = [s.failed for s in scenarios]
        for here, after in zip(order, order[1:]):
            remaining_at_step = order[order.index(after):]
            best = min(len(sets[here] ^ sets[i]) for i in remaining_at_step)
            assert len(sets[here] ^ sets[after]) == best


class TestChainSegments:
    def test_balanced_contiguous(self):
        assert chain_segments([5, 3, 8, 1, 9, 2, 7], 3) == [[5, 3, 8], [1, 9], [2, 7]]

    def test_fewer_items_than_parts(self):
        assert chain_segments([4, 2], 5) == [[4], [2]]

    def test_single_part(self):
        assert chain_segments([1, 2, 3], 1) == [[1, 2, 3]]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            chain_segments([1], 0)

    def test_concatenation_preserves_order(self):
        order = list(range(17))
        segments = chain_segments(order, 4)
        assert [i for seg in segments for i in seg] == order


@pytest.fixture(scope="module")
def chain_context():
    return custom_context(
        ring_topology(10, chords=5, seed=7),
        controller_sites=(0, 3, 7),
        capacity=160,
    )


class TestRepairSolution:
    def test_repaired_solution_is_feasible(self, chain_context):
        a = chain_context.instance(FailureScenario(frozenset({3})))
        b = chain_context.instance(FailureScenario(frozenset({7})))
        neighbor = solve_pm(a)
        repaired = repair_solution(b, neighbor)
        assert repaired is not None
        assert repaired.algorithm == "chain-repair"
        report = validate_solution(b, repaired, enforce_delay=True)
        assert report.ok, report.summary()

    def test_repair_within_same_instance_keeps_pairs(self, chain_context):
        instance = chain_context.instance(FailureScenario(frozenset({3})))
        neighbor = solve_pm(instance)
        repaired = repair_solution(instance, neighbor)
        assert repaired is not None
        # Same scenario: every neighbor pair survives the repair.
        assert set(neighbor.active_pairs()) <= set(repaired.active_pairs())

    def test_infeasible_neighbor_gives_no_seed(self, chain_context):
        from repro.fmssm.solution import RecoverySolution

        instance = chain_context.instance(FailureScenario(frozenset({3})))
        assert repair_solution(instance, RecoverySolution("x", feasible=False)) is None

    def test_repair_respects_delay_bound(self, chain_context):
        import dataclasses as dc

        a = chain_context.instance(FailureScenario(frozenset({3})))
        b = chain_context.instance(FailureScenario(frozenset({7})))
        tight = dc.replace(b, ideal_delay_ms=b.ideal_delay_ms / 4)
        repaired = repair_solution(tight, solve_pm(a))
        assert repaired is not None
        report = validate_solution(tight, repaired, enforce_delay=True)
        assert report.ok, report.summary()


def _stripped(evaluation):
    return dataclasses.replace(evaluation, solve_time_s=0.0)


def _assert_bit_identical(independent, incremental):
    assert len(independent) == len(incremental)
    for a, b in zip(independent, incremental):
        assert a.scenario == b.scenario
        assert set(a.solutions) == set(b.solutions)
        for algorithm in a.solutions:
            sa, sb = a.solutions[algorithm], b.solutions[algorithm]
            assert sa.feasible == sb.feasible, (algorithm, a.name)
            assert sa.mapping == sb.mapping, (algorithm, a.name)
            assert sa.sdn_pairs == sb.sdn_pairs, (algorithm, a.name)
            assert sa.meta.get("objective") == sb.meta.get("objective")
            assert sa.meta.get("solver") == sb.meta.get("solver")
            assert _stripped(a.evaluations[algorithm]) == _stripped(
                b.evaluations[algorithm]
            )


class TestIncrementalBitIdentity:
    def test_serial_chain_matches_independent(self, chain_context):
        scenarios = enumerate_failure_scenarios(chain_context.plane, 1) + (
            enumerate_failure_scenarios(chain_context.plane, 2)
        )
        algorithms = ("pm", "optimal")
        independent = parallel_sweep(
            chain_context, scenarios, algorithms, max_workers=1
        )
        incremental = parallel_sweep(
            chain_context, scenarios, algorithms, max_workers=1, incremental=True
        )
        _assert_bit_identical(independent, incremental)
        # The validator accepts every chained answer too.
        for result in incremental:
            for algorithm, solution in result.solutions.items():
                instance = chain_context.instance(result.scenario)
                report = validate_solution(
                    instance, solution, enforce_delay=(algorithm != "pg")
                )
                assert report.ok, report.summary()

    def test_warm_chain_threads_state(self, chain_context):
        chain = WarmChain()
        for scenario in enumerate_failure_scenarios(chain_context.plane, 1):
            instance = chain_context.instance(scenario)
            solution = solve_optimal(instance, warm_chain=chain)
            assert solution.feasible
        assert chain.neighbor is not None
        assert chain.stats.get("chain_seeds", 0) >= 1

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40), n_failures=st.integers(1, 2))
    def test_property_chain_identical_across_networks(self, seed, n_failures):
        context = custom_context(
            ring_topology(8, chords=4, seed=seed),
            controller_sites=(0, 3, 6),
            capacity=120,
        )
        scenarios = enumerate_failure_scenarios(context.plane, n_failures)
        algorithms = ("pm", "optimal")
        independent = parallel_sweep(context, scenarios, algorithms, max_workers=1)
        incremental = parallel_sweep(
            context, scenarios, algorithms, max_workers=1, incremental=True
        )
        _assert_bit_identical(independent, incremental)


class TestPrecertificate:
    def test_bound_dominates_lp_relaxation(self, chain_context):
        for scenario in enumerate_failure_scenarios(chain_context.plane, 1):
            instance = chain_context.instance(scenario)
            compiled = compile_fmssm(instance, require_full_recovery=True)
            relaxation = solve_form_relaxation(compiled.form)
            if relaxation.objective is None:
                continue
            assert _combinatorial_bound(instance) >= relaxation.objective - 1e-9

    def test_precert_agrees_with_model_route(self, chain_context):
        fired = 0
        for scenario in enumerate_failure_scenarios(chain_context.plane, 2):
            instance = chain_context.instance(scenario)
            sparse = solve_optimal(instance)
            if sparse.meta.get("solver") != "precert":
                continue
            fired += 1
            model = solve_optimal(instance, compile="model")
            assert model.feasible
            assert sparse.meta["objective"] == model.meta["objective"]
        if fired == 0:
            pytest.skip("no scenario triggered the pre-certificate")


class TestBasisHintIsInert:
    def test_relaxation_ignores_basis_hint(self, chain_context):
        instance = chain_context.instance(FailureScenario(frozenset({3})))
        compiled = compile_fmssm(instance, require_full_recovery=True)
        plain = solve_form_relaxation(compiled.form)
        hinted = solve_form_relaxation(compiled.form, basis=object())
        assert hinted.status == plain.status
        assert hinted.objective == plain.objective
        assert hinted.basis is None
