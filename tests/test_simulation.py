"""Tests for the discrete-event engine and the recovery timeline."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.fmssm.solution import RecoverySolution
from repro.simulation.engine import SimulationError, Simulator
from repro.simulation.timeline import (
    TimelineParameters,
    simulate_recovery_timeline,
)
from conftest import make_tiny_instance


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(9.0, lambda: log.append("c"))
        end = sim.run()
        assert log == ["a", "b", "c"]
        assert end == 9.0

    def test_fifo_among_ties(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_actions_may_schedule_more(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(2.0, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1.0, 3.0]

    def test_run_until_stops_early(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("early"))
        sim.schedule(10.0, lambda: log.append("late"))
        end = sim.run(until_ms=5.0)
        assert log == ["early"]
        assert end == 5.0
        assert sim.pending_events == 1

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_before_now_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestTimelineParameters:
    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            TimelineParameters(detection_delay_ms=-1.0)
        with pytest.raises(ReproError):
            TimelineParameters(middle_layer_ms=-0.1)


class TestRecoveryTimeline:
    def solution(self) -> RecoverySolution:
        return RecoverySolution(
            algorithm="test",
            mapping={1: 100, 2: 200},
            sdn_pairs={(1, (10, 11)), (1, (10, 12)), (2, (11, 12))},
            solve_time_s=0.002,
        )

    def test_computation_after_detection(self, tiny_instance):
        report = simulate_recovery_timeline(tiny_instance, self.solution())
        assert report.computation_done_ms == pytest.approx(100.0 + 2.0)

    def test_computation_override(self, tiny_instance):
        params = TimelineParameters(computation_ms=50.0)
        report = simulate_recovery_timeline(tiny_instance, self.solution(), params)
        assert report.computation_done_ms == pytest.approx(150.0)

    def test_handover_costs_one_rtt(self, tiny_instance):
        params = TimelineParameters(computation_ms=0.0)
        report = simulate_recovery_timeline(tiny_instance, self.solution(), params)
        # Switch 1 -> controller 100 with D = 1.0ms: online after 2ms RTT.
        assert report.switch_online_ms[1] == pytest.approx(100.0 + 2.0)
        # Switch 2 -> controller 200 with D = 2.0ms.
        assert report.switch_online_ms[2] == pytest.approx(100.0 + 4.0)

    def test_flows_recover_after_all_pairs(self, tiny_instance):
        report = simulate_recovery_timeline(tiny_instance, self.solution())
        assert set(report.flow_recovered_ms) == {(10, 11), (10, 12), (11, 12)}
        # Installs are sequential per controller, so the second rule at
        # controller 100 lands after the first.
        assert (
            report.flow_recovered_ms[(10, 12)]
            > report.flow_recovered_ms[(10, 11)]
        )

    def test_middle_layer_slows_installation(self, tiny_instance):
        fast = simulate_recovery_timeline(
            tiny_instance, self.solution(), TimelineParameters(computation_ms=0.0)
        )
        slow = simulate_recovery_timeline(
            tiny_instance,
            self.solution(),
            TimelineParameters(computation_ms=0.0, middle_layer_ms=0.48),
        )
        assert slow.mean_flow_recovery_ms > fast.mean_flow_recovery_ms
        assert slow.completed_ms > fast.completed_ms

    def test_aggregates_ordered(self, tiny_instance):
        report = simulate_recovery_timeline(tiny_instance, self.solution())
        assert (
            report.mean_flow_recovery_ms
            <= report.p95_flow_recovery_ms
            <= report.max_flow_recovery_ms
            <= report.completed_ms
        )

    def test_infeasible_solution_rejected(self, tiny_instance):
        with pytest.raises(ReproError):
            simulate_recovery_timeline(
                tiny_instance, RecoverySolution(algorithm="x", feasible=False)
            )

    def test_empty_solution_finishes_at_computation(self, tiny_instance):
        report = simulate_recovery_timeline(
            tiny_instance, RecoverySolution(algorithm="noop", solve_time_s=0.0)
        )
        assert report.flow_recovered_ms == {}
        assert report.completed_ms == pytest.approx(100.0)

    def test_pm_timeline_on_att(self, att_instance_13_20):
        from repro.pm import solve_pm

        solution = solve_pm(att_instance_13_20)
        report = simulate_recovery_timeline(att_instance_13_20, solution)
        assert len(report.flow_recovered_ms) > 300
        # Every recovered flow comes back within seconds.
        assert report.max_flow_recovery_ms < 10_000.0
        assert report.mean_flow_recovery_ms > report.computation_done_ms
