"""Extra data-plane coverage: install_path validation and recovery edges."""

from __future__ import annotations

import pytest

from repro.dataplane.forwarding import NetworkDataPlane
from repro.dataplane.packet import Packet
from repro.dataplane.switch import SwitchMode
from repro.exceptions import DataPlaneError
from repro.flows.flow import Flow
from repro.topology.generators import grid_topology


@pytest.fixture
def plane():
    return NetworkDataPlane(grid_topology(3, 3), legacy_weight="hops")


class TestInstallPath:
    def test_installs_entries_along_path(self, plane):
        plane.install_path((0, 8), (0, 3, 4, 5, 8))
        assert plane.forward(Packet(0, 8)) == (0, 3, 4, 5, 8)

    def test_short_path_rejected(self, plane):
        with pytest.raises(DataPlaneError, match="at least 2"):
            plane.install_path((0, 8), (0,))

    def test_wrong_destination_rejected(self, plane):
        with pytest.raises(DataPlaneError, match="destination"):
            plane.install_path((0, 8), (0, 1, 2))

    def test_missing_link_rejected_atomically(self, plane):
        with pytest.raises(DataPlaneError, match="missing link"):
            plane.install_path((0, 8), (0, 8))
        # Nothing was installed: the flow still follows legacy routing.
        path = plane.forward(Packet(0, 8))
        assert len(path) == 5

    def test_partial_path_change(self, plane):
        flow = Flow(0, 8, (0, 1, 2, 5, 8))
        plane.install_flow_path(flow)
        # Change only the tail from node 2.
        plane.install_path((0, 8), (2, 5, 8))
        assert plane.forward(Packet(0, 8)) == (0, 1, 2, 5, 8)


class TestApplyRecoveryEdges:
    def test_missing_flow_object_rejected(self, att_context, att_instance_13_20):
        from repro.fmssm.solution import RecoverySolution

        plane = NetworkDataPlane(att_context.topology, legacy_weight="hops")
        ghost = RecoverySolution(
            algorithm="ghost",
            mapping={13: 2},
            sdn_pairs={(13, (99, 98))},  # not an instance flow
        )
        with pytest.raises(DataPlaneError, match="no flow object"):
            plane.apply_recovery(att_instance_13_20, ghost)

    def test_extra_flows_parameter(self, att_context, att_instance_13_20):
        from repro.fmssm.solution import RecoverySolution

        plane = NetworkDataPlane(att_context.topology, legacy_weight="hops")
        # A pair for a flow that the instance doesn't carry, supplied via
        # the flows parameter.
        extra = Flow(13, 2, tuple(next(
            f.path for f in att_context.flows if f.flow_id == (13, 2)
        )))
        solution = RecoverySolution(
            algorithm="x",
            mapping={13: 2},
            sdn_pairs=set(),
        )
        plane.apply_recovery(att_instance_13_20, solution, flows=[extra])
        # Offline switches are now hybrid.
        assert plane.switch(13).mode is SwitchMode.HYBRID

    def test_forward_from_explicit_start(self, plane):
        packet = Packet(0, 8)
        path = plane.forward(packet, start=4)
        assert path[0] == 4 and path[-1] == 8
