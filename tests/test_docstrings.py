"""Quality gate: every public module, class and function is documented."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    public = getattr(module, "__all__", None)
    if public is None:
        return
    undocumented = []
    for name in public:
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            if member.__module__ != module_name:
                continue  # re-export; documented at its home module
            if not inspect.getdoc(member):
                undocumented.append(name)
            if inspect.isclass(member):
                for method_name, method in inspect.getmembers(
                    member, inspect.isfunction
                ):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != member.__name__:
                        continue  # inherited
                    if not inspect.getdoc(method):
                        undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: undocumented public members {undocumented}"
