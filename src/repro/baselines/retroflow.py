"""RetroFlow baseline — switch-level hybrid recovery (reference [6]).

RetroFlow (Guo et al., IWQoS'19) recovers offline flows by putting a
*subset* of offline switches in legacy mode (free, unprogrammable) and
remapping the remaining switches — whole, in SDN mode — to active
controllers.  The defining property this paper compares against is the
coarse granularity: a remapped switch costs its full ``gamma_i`` (every
flow in the switch), so a hub switch whose gamma exceeds every
controller's spare capacity simply cannot be recovered (the paper's
case (13, 20) story).

Two variants are provided:

``solve_retroflow``
    Greedy: switches in decreasing recovery value, each to the nearest
    controller that can absorb its whole gamma.  This mirrors heuristic
    switch-level mapping and is the default baseline in the benchmarks.
``solve_retroflow_ip``
    Exact: a small switch-level IP (generalized assignment) solved with
    the library's LP layer, giving the best any whole-switch mapper
    could do.  Used by the ablation benchmarks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.lp import LinExpr, Model, SolveStatus, Var, solve
from repro.types import ControllerId, FlowId, NodeId

__all__ = ["solve_retroflow", "solve_retroflow_ip"]


def _switch_value(instance: FMSSMInstance, switch: NodeId) -> int:
    """Total programmability recovered by remapping ``switch`` whole.

    Dict-route reference; the array routes read the same quantity from
    one weighted bincount (:func:`_switch_values_array`).
    """
    return sum(instance.pbar[(switch, f)] for f in instance.pairs_at[switch])


def _sdn_pairs_for(
    instance: FMSSMInstance, switches: set[NodeId]
) -> set[tuple[NodeId, FlowId]]:
    return {
        (switch, flow_id)
        for switch in switches
        for flow_id in instance.pairs_at[switch]
    }


def _switch_values_array(instance: FMSSMInstance) -> dict[NodeId, int]:
    """Every switch's recovery value via the cached array view.

    One weighted bincount over the pair columns replaces N dict-walks;
    ``p̄`` is integral, so the float weights convert back exactly.
    """
    from repro.perf.kernels import instance_arrays

    arrays = instance_arrays(instance)
    n = len(arrays.switches)
    if arrays.n_pairs:
        values = np.bincount(
            arrays.pair_switch, weights=arrays.pair_pbar, minlength=n
        ).astype(np.int64)
    else:
        values = np.zeros(n, dtype=np.int64)
    return dict(zip(arrays.switches, values.tolist()))


def _sdn_pairs_array(
    instance: FMSSMInstance, switches: set[NodeId]
) -> set[tuple[NodeId, FlowId]]:
    """The programmable pairs of ``switches``, sliced from the pair CSR."""
    from repro.perf.kernels import instance_arrays

    arrays = instance_arrays(instance)
    pairs = instance.pairs
    indptr = arrays.switch_indptr
    switch_pos = arrays.switch_pos
    return {
        pairs[k]
        for switch in switches
        for k in range(indptr[switch_pos[switch]], indptr[switch_pos[switch] + 1])
    }


def solve_retroflow(
    instance: FMSSMInstance, kernel: str | None = None
) -> RecoverySolution:
    """Greedy switch-level recovery.

    Switches are processed in decreasing recovery value (total ``p̄`` of
    their programmable pairs, ties to lower id) and mapped whole to the
    nearest active controller with at least ``gamma_i`` spare resource.
    A switch no controller can absorb stays in legacy mode and all of its
    flows remain unprogrammable there.

    ``kernel`` selects the implementation: ``"array"`` (the default,
    :func:`repro.perf.kernels.solve_retroflow_array`) or ``"dict"`` —
    the body below, kept as the equivalence reference.
    """
    from repro.perf.kernels import resolve_kernel

    if resolve_kernel(kernel) == "array":
        from repro.perf.kernels import solve_retroflow_array

        return solve_retroflow_array(instance)
    start = time.perf_counter()
    available: dict[ControllerId, int] = dict(instance.spare)
    mapping: dict[NodeId, ControllerId] = {}
    load: dict[ControllerId, int] = {c: 0 for c in instance.controllers}

    order = sorted(
        instance.switches,
        key=lambda s: (-_switch_value(instance, s), s),
    )
    for switch in order:
        gamma = instance.gamma[switch]
        ordered = sorted(
            instance.controllers, key=lambda c: (instance.delay[(switch, c)], c)
        )
        for controller in ordered:
            if available[controller] >= gamma:
                available[controller] -= gamma
                load[controller] += gamma
                mapping[switch] = controller
                break

    sdn_pairs = _sdn_pairs_for(instance, set(mapping))
    return RecoverySolution(
        algorithm="retroflow",
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        load_override=load,
        solve_time_s=time.perf_counter() - start,
        feasible=True,
        meta={"variant": "greedy"},
    )


def solve_retroflow_ip(
    instance: FMSSMInstance,
    solver: str = "highs",
    time_limit_s: float | None = 120.0,
    kernel: str | None = None,
) -> RecoverySolution:
    """Exact switch-level recovery (generalized assignment IP).

    maximize    sum_i value_i * z_i  (z_i = switch i recovered)
    subject to  sum_i gamma_i * z_ij <= A_j  for every controller j
                sum_j z_ij = z_i <= 1

    This is the ceiling of *any* whole-switch mapper; the gap between it
    and PM isolates what hybrid per-flow routing buys beyond clever
    switch packing.

    ``kernel`` selects how the objective values and the output's SDN
    pairs are materialized: ``"array"`` (the default) reads them off the
    cached :class:`~repro.perf.kernels.InstanceArrays` view, ``"dict"``
    keeps the per-pair dict walks as the equivalence reference.  The IP
    itself is identical either way — values are exact integers — so the
    solution is bit-identical across kernels.
    """
    from repro.perf.kernels import resolve_kernel

    use_array = resolve_kernel(kernel) == "array"
    start = time.perf_counter()
    if use_array:
        values = _switch_values_array(instance)
        value_of = values.__getitem__
    else:
        value_of = lambda s: _switch_value(instance, s)  # noqa: E731
    model = Model("retroflow-ip")
    z: dict[tuple[NodeId, ControllerId], Var] = {}
    for switch in instance.switches:
        for controller in instance.controllers:
            z[(switch, controller)] = model.add_var(
                f"z[{switch},{controller}]", binary=True
            )
    for switch in instance.switches:
        expr = LinExpr.total((1.0, z[(switch, c)]) for c in instance.controllers)
        model.add_constraint(expr <= 1, name=f"map[{switch}]")
    for controller in instance.controllers:
        expr = LinExpr.total(
            (float(instance.gamma[s]), z[(s, controller)]) for s in instance.switches
        )
        model.add_constraint(expr <= instance.spare[controller], name=f"cap[{controller}]")
    objective = LinExpr.total(
        (float(value_of(s)), z[(s, c)])
        for s in instance.switches
        for c in instance.controllers
    )
    model.set_objective(objective, sense="max")
    result = solve(model, solver=solver, time_limit_s=time_limit_s)

    if not result.is_feasible:  # pragma: no cover - always feasible (z = 0)
        return RecoverySolution(
            algorithm="retroflow-ip",
            feasible=False,
            solve_time_s=time.perf_counter() - start,
            meta={"status": result.status.value},
        )

    mapping: dict[NodeId, ControllerId] = {}
    load: dict[ControllerId, int] = {c: 0 for c in instance.controllers}
    for (switch, controller), var in z.items():
        if result.values.get(var.name, 0.0) > 0.5:
            mapping[switch] = controller
            load[controller] += instance.gamma[switch]
    if use_array:
        sdn_pairs = _sdn_pairs_array(instance, set(mapping))
    else:
        sdn_pairs = _sdn_pairs_for(instance, set(mapping))
    return RecoverySolution(
        algorithm="retroflow-ip",
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        load_override=load,
        solve_time_s=time.perf_counter() - start,
        feasible=True,
        meta={"variant": "ip", "status": result.status.value,
              "optimal": result.status is SolveStatus.OPTIMAL},
    )
