"""Baseline recovery algorithms and the algorithm registry.

Importing this package registers the paper's four algorithms (plus the
extras) under their benchmark names:

========== ==========================================================
``pm``        ProgrammabilityMedic heuristic (Algorithm 1)
``optimal``   exact solution of P′ (HiGHS), full-recovery requirement
``retroflow`` greedy switch-level hybrid baseline [6]
``pg``        flow-level middle-layer baseline [9]
``nearest``   naive nearest-controller whole-switch remapping
``retroflow-ip`` exact switch-level ceiling (ablations)
``optimal-two-stage`` lexicographic exact solve (no weight needed)
``pm-strict``    PM honoring the delay bound Eq. 14 (ablations)
``pm-greedy``    PM with p̄-greedy phase 2 (ablations)
========== ==========================================================
"""

from repro.baselines.base import (
    RecoveryAlgorithm,
    get_algorithm,
    list_algorithms,
    register_algorithm,
)
from repro.baselines.nearest import solve_nearest
from repro.baselines.pg import solve_pg
from repro.baselines.retroflow import solve_retroflow, solve_retroflow_ip
from repro.fmssm.optimal import solve_optimal
from repro.fmssm.two_stage import solve_two_stage
from repro.pm.algorithm import solve_pm

__all__ = [
    "RecoveryAlgorithm",
    "register_algorithm",
    "get_algorithm",
    "list_algorithms",
    "solve_retroflow",
    "solve_retroflow_ip",
    "solve_pg",
    "solve_nearest",
]

register_algorithm("pm", solve_pm)
register_algorithm("optimal", solve_optimal)
register_algorithm("optimal-two-stage", solve_two_stage)
register_algorithm("retroflow", solve_retroflow)
register_algorithm("retroflow-ip", solve_retroflow_ip)
register_algorithm("pg", solve_pg)
register_algorithm("nearest", solve_nearest)
register_algorithm("pm-strict", lambda instance: solve_pm(instance, enforce_delay=True))
register_algorithm("pm-greedy", lambda instance: solve_pm(instance, phase2_order="greedy"))
