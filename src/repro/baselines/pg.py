"""ProgrammabilityGuardian (PG) baseline — flow-level recovery (ref. [9]).

PG inserts a FlowVisor-style middle layer between controllers and
switches, so each offline flow at each offline switch can be mapped to
*any* active controller independently — no single switch-controller
mapping constraint.  That makes PG the programmability ceiling among
per-unit-cost algorithms, at the price of the middle layer's processing
delay (0.48 ms per request on average, charged to the overhead metric)
and its added unreliability.

Without the switch-mapping coupling the optimization decomposes cleanly:

1. choosing *which* pairs to activate only interacts through the total
   budget ``B = sum_j A_j`` (any pair can be served by any controller
   with room — a feasible per-controller split always exists by
   water-filling);
2. the paper's objective order is applied exactly: first maximize the
   number of recovered flows, then the least programmability ``r``
   (binary search over the cheapest pair-sets reaching each level), then
   total programmability with the leftover budget;
3. finally each activated pair is assigned to the nearest controller
   with remaining capacity, greedily in decreasing delay-sensitivity, to
   keep propagation overhead low (PG also optimizes overhead).
"""

from __future__ import annotations

import time

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.types import FLOWVISOR_PROCESSING_MS, ControllerId, FlowId, NodeId

__all__ = ["solve_pg"]


def _cheapest_pairs_reaching(
    instance: FMSSMInstance, flow_id: FlowId, level: int
) -> list[tuple[NodeId, FlowId]] | None:
    """Fewest pairs lifting ``flow_id`` to programmability >= level.

    Greedy largest-``p̄``-first is optimal for minimizing the pair count
    needed to reach a threshold.  Returns ``None`` when unreachable.
    """
    switches = sorted(
        instance.pairs_of[flow_id],
        key=lambda s: (-instance.pbar[(s, flow_id)], s),
    )
    chosen: list[tuple[NodeId, FlowId]] = []
    total = 0
    for switch in switches:
        if total >= level:
            break
        chosen.append((switch, flow_id))
        total += instance.pbar[(switch, flow_id)]
    if total >= level:
        return chosen
    return None


def _pairs_for_level(
    instance: FMSSMInstance, flows: list[FlowId], level: int
) -> dict[FlowId, list[tuple[NodeId, FlowId]]] | None:
    """Cheapest per-flow pair sets reaching ``level``, or None if any fails."""
    plan: dict[FlowId, list[tuple[NodeId, FlowId]]] = {}
    for flow_id in flows:
        pairs = _cheapest_pairs_reaching(instance, flow_id, level)
        if pairs is None:
            return None
        plan[flow_id] = pairs
    return plan


def solve_pg(instance: FMSSMInstance, kernel: str | None = None) -> RecoverySolution:
    """Run the PG flow-level recovery (see module docstring).

    ``kernel`` selects the implementation: ``"array"`` (the default,
    :func:`repro.perf.kernels.solve_pg_array`) or ``"dict"`` — the body
    below, kept as the equivalence reference.  Both produce bit-identical
    solutions (``tests/test_perf_kernels.py``).
    """
    from repro.perf.kernels import resolve_kernel

    if resolve_kernel(kernel) == "array":
        from repro.perf.kernels import solve_pg_array

        return solve_pg_array(instance)
    start = time.perf_counter()
    budget = instance.total_spare
    recoverable = list(instance.recoverable_flows)

    chosen: set[tuple[NodeId, FlowId]] = set()
    if budget >= len(recoverable) and recoverable:
        # Full recovery is possible; maximize the least programmability r
        # by binary search over the water level.
        max_level = min(instance.max_programmability(f) for f in recoverable)
        lo, hi = 0, max_level
        best_plan = _pairs_for_level(instance, recoverable, 0) or {}
        while lo < hi:
            mid = (lo + hi + 1) // 2
            plan = _pairs_for_level(instance, recoverable, mid)
            if plan is not None and sum(len(p) for p in plan.values()) <= budget:
                lo = mid
                best_plan = plan
            else:
                hi = mid - 1
        for pairs in best_plan.values():
            chosen.update(pairs)
    elif recoverable:
        # Budget below one unit per flow: maximize the number of
        # recovered flows, preferring those whose single best pair buys
        # the most programmability.
        ranked = sorted(
            recoverable,
            key=lambda f: (
                -max(instance.pbar[(s, f)] for s in instance.pairs_of[f]),
                f,
            ),
        )
        for flow_id in ranked[:budget]:
            best_switch = max(
                instance.pairs_of[flow_id],
                key=lambda s: (instance.pbar[(s, flow_id)], -s),
            )
            chosen.add((best_switch, flow_id))

    # Saturate leftover budget with the highest-p̄ remaining pairs.
    leftover = budget - len(chosen)
    if leftover > 0:
        remaining = sorted(
            (pair for pair in instance.pairs if pair not in chosen),
            key=lambda pair: (-instance.pbar[pair], pair),
        )
        chosen.update(remaining[:leftover])

    # Assign each pair to the nearest controller with remaining capacity.
    # Pairs with the largest spread between their best and worst option
    # are placed first (regret order) to keep total delay low.  The
    # per-switch regret (delay spread) and delay order are computed once
    # per switch, not per pair per sort-key call.
    available: dict[ControllerId, int] = dict(instance.spare)

    regret: dict[NodeId, float] = {}
    by_delay: dict[NodeId, list[ControllerId]] = {}
    for switch in {pair[0] for pair in chosen}:
        delays = [instance.delay[(switch, c)] for c in instance.controllers]
        regret[switch] = max(delays) - min(delays)
        by_delay[switch] = sorted(
            instance.controllers,
            key=lambda c: (instance.delay[(switch, c)], c),
        )

    pair_controller: dict[tuple[NodeId, FlowId], ControllerId] = {}
    for pair in sorted(chosen, key=lambda p: (-regret[p[0]], p)):
        for controller in by_delay[pair[0]]:
            if available[controller] > 0:
                available[controller] -= 1
                pair_controller[pair] = controller
                break
        else:  # pragma: no cover - chosen is capped at the total budget
            raise AssertionError("PG budget accounting violated")

    return RecoverySolution(
        algorithm="pg",
        mapping={},
        sdn_pairs=set(pair_controller),
        pair_controller=pair_controller,
        extra_overhead_ms=FLOWVISOR_PROCESSING_MS,
        solve_time_s=time.perf_counter() - start,
        feasible=True,
        meta={"budget": budget, "middle_layer": "flowvisor"},
    )
