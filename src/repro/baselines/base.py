"""Common interface and registry for recovery algorithms.

Every algorithm — PM, Optimal, and the baselines — is exposed behind the
same callable protocol so the experiment runner treats them uniformly.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution

__all__ = ["RecoveryAlgorithm", "register_algorithm", "get_algorithm", "list_algorithms"]


class RecoveryAlgorithm(Protocol):
    """A recovery algorithm: instance in, solution out."""

    def __call__(self, instance: FMSSMInstance) -> RecoverySolution: ...


_REGISTRY: dict[str, Callable[[FMSSMInstance], RecoverySolution]] = {}


def register_algorithm(
    name: str, algorithm: Callable[[FMSSMInstance], RecoverySolution]
) -> None:
    """Register ``algorithm`` under ``name`` (overwrites silently)."""
    _REGISTRY[name] = algorithm


def get_algorithm(name: str) -> Callable[[FMSSMInstance], RecoverySolution]:
    """Look up a registered algorithm by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def list_algorithms() -> tuple[str, ...]:
    """Names of all registered algorithms, sorted."""
    return tuple(sorted(_REGISTRY))
