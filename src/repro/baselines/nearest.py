"""Naive switch-level baseline: nearest-controller whole-switch remapping.

This is the "default path programmability recovery solution originated
from OpenFlow" the paper describes (Section II-B1): each offline switch
simply asks its nearest active controller to become master.  The
controller accepts while it has spare capacity for the whole switch;
otherwise the switch stays offline.  Unlike RetroFlow it never looks past
the nearest controller, so it strands even more capacity — a useful lower
bound in ablations.
"""

from __future__ import annotations

import time

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.types import ControllerId, NodeId

__all__ = ["solve_nearest"]


def solve_nearest(instance: FMSSMInstance, kernel: str | None = None) -> RecoverySolution:
    """Map each offline switch to its nearest controller if it fits whole.

    ``kernel`` selects the implementation: ``"array"`` (the default,
    :func:`repro.perf.kernels.solve_nearest_array`) or ``"dict"`` — the
    body below, kept as the equivalence reference.
    """
    from repro.perf.kernels import resolve_kernel

    if resolve_kernel(kernel) == "array":
        from repro.perf.kernels import solve_nearest_array

        return solve_nearest_array(instance)
    start = time.perf_counter()
    available: dict[ControllerId, int] = dict(instance.spare)
    mapping: dict[NodeId, ControllerId] = {}
    load: dict[ControllerId, int] = {c: 0 for c in instance.controllers}

    for switch in instance.switches:
        controller = instance.nearest[switch]
        gamma = instance.gamma[switch]
        if available[controller] >= gamma:
            available[controller] -= gamma
            load[controller] += gamma
            mapping[switch] = controller

    sdn_pairs = {
        (switch, flow_id)
        for switch in mapping
        for flow_id in instance.pairs_at[switch]
    }
    return RecoverySolution(
        algorithm="nearest",
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        load_override=load,
        solve_time_s=time.perf_counter() - start,
        feasible=True,
    )
