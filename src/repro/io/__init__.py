"""Result serialization (JSON / CSV) for external plotting."""

from repro.io.serialize import (
    dumps_json,
    figure_to_csv,
    to_jsonable,
    write_csv,
    write_json,
)

__all__ = ["to_jsonable", "dumps_json", "figure_to_csv", "write_json", "write_csv"]
