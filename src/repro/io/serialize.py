"""Serialization of experiment results to JSON and CSV.

Figure data (from :mod:`repro.experiments.figures`) is nested dicts plus
:class:`~repro.metrics.summary.FiveNumberSummary` objects; this module
flattens them into JSON-safe structures and per-case CSV rows so the
regenerated figures can be plotted with any external tool.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import math
from typing import Any

from repro.exceptions import ReproError

__all__ = ["to_jsonable", "dumps_json", "figure_to_csv", "write_json", "write_csv"]


def to_jsonable(value: Any) -> Any:
    """Recursively convert experiment structures to JSON-safe values.

    Dataclasses become dicts, tuples become lists, non-finite floats
    become ``None`` (JSON has no ``inf``/``nan``), and dict keys are
    stringified.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    raise ReproError(f"cannot serialize {type(value).__name__}: {value!r}")


def dumps_json(value: Any, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_jsonable(value), indent=indent, sort_keys=True)


def write_json(path: str, value: Any) -> None:
    """Write ``value`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_json(value))
        handle.write("\n")


_CSV_FIELDS = (
    "fairness",
    "least_programmability",
    "total_programmability",
    "total_vs_retroflow",
    "recovered_flows_pct",
    "recovered_switches",
    "offline_switches",
    "resource_used",
    "per_flow_overhead_ms",
    "solve_time_s",
    "feasible",
)


def figure_to_csv(figure_data: dict[str, Any]) -> str:
    """Flatten a Fig. 4/5/6 dataset into CSV: one row per (case, algorithm)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(("n_failures", "case", "algorithm", *_CSV_FIELDS))
    for case in figure_data["cases"]:
        for algorithm, record in case["algorithms"].items():
            row: list[Any] = [figure_data["n_failures"], case["case"], algorithm]
            for fieldname in _CSV_FIELDS:
                value = record.get(fieldname)
                if isinstance(value, float) and not math.isfinite(value):
                    value = ""
                row.append(value)
            writer.writerow(row)
    return buffer.getvalue()


def write_csv(path: str, figure_data: dict[str, Any]) -> None:
    """Write a figure dataset to ``path`` as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(figure_to_csv(figure_data))
