"""A dense two-phase primal simplex solver, implemented from scratch.

This completes the library-owned LP stack: the modelling DSL compiles to
standard form, and this module solves small LPs without SciPy.  It is the
reference implementation the test suite cross-validates ``linprog``
against, and the teaching counterpart to the HiGHS adapter.

Method: the model is converted to

    minimize  c @ y   subject to  A @ y = b,  y >= 0

by shifting finite lower bounds to zero, splitting free variables,
turning finite upper bounds into extra rows, and adding slack variables
for inequalities.  Phase 1 drives artificial variables out of the basis;
phase 2 optimizes the true objective.  Bland's rule prevents cycling.

Intended for small instances (dense tableau, O(m^2 n) per iteration).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ModelError, SolverError
from repro.lp.model import Model
from repro.lp.solution import SolveResult, SolveStatus
from repro.lp.standard_form import to_standard_form

__all__ = ["solve_with_simplex"]

_TOL = 1e-9
_MAX_ITERATIONS = 10_000


def _simplex_phase(
    tableau: np.ndarray,
    basis: list[int],
    costs: np.ndarray,
) -> tuple[str, np.ndarray, list[int]]:
    """Run primal simplex on ``A y = b`` with basis ``basis``.

    ``tableau`` is ``[A | b]``; returns (status, tableau, basis) with
    status ``"optimal"`` or ``"unbounded"``.  Uses Bland's rule.
    """
    m, n_plus_1 = tableau.shape
    n = n_plus_1 - 1
    for _ in range(_MAX_ITERATIONS):
        # Reduced costs: c_j - c_B @ B^-1 A_j.  The tableau is kept in
        # canonical form, so B^-1 A is the tableau itself.
        basic_costs = costs[basis]
        reduced = costs[:n] - basic_costs @ tableau[:, :n]
        entering = -1
        for j in range(n):
            if reduced[j] < -_TOL:
                entering = j  # Bland: smallest index
                break
        if entering < 0:
            return "optimal", tableau, basis
        # Ratio test (Bland ties toward the smallest basis variable).
        leaving_row = -1
        best_ratio = math.inf
        for i in range(m):
            coefficient = tableau[i, entering]
            if coefficient > _TOL:
                ratio = tableau[i, n] / coefficient
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving_row < 0 or basis[i] < basis[leaving_row])
                ):
                    best_ratio = ratio
                    leaving_row = i
        if leaving_row < 0:
            return "unbounded", tableau, basis
        # Pivot.
        pivot = tableau[leaving_row, entering]
        tableau[leaving_row] /= pivot
        for i in range(m):
            if i != leaving_row and abs(tableau[i, entering]) > _TOL:
                tableau[i] -= tableau[i, entering] * tableau[leaving_row]
        basis[leaving_row] = entering
    raise SolverError(f"simplex did not converge in {_MAX_ITERATIONS} iterations")


def solve_with_simplex(model: Model) -> SolveResult:
    """Solve an LP with the library's own two-phase simplex.

    Integer markers are ignored (the relaxation is solved); pair with
    :mod:`repro.lp.branch_and_bound` semantics externally if integrality
    is needed.  Unbounded below variables are split into differences of
    non-negatives.
    """
    import time

    start = time.perf_counter()
    form = to_standard_form(model)
    n = form.n_vars

    # --- translate bounds -------------------------------------------------
    # y-variable layout: for each model variable, either one shifted
    # column (finite lb) or a +/- pair (free).
    columns: list[tuple[int, float]] = []  # (model var index, sign)
    shift = np.zeros(n)
    for j in range(n):
        lb = form.lb[j]
        if math.isfinite(lb):
            shift[j] = lb
            columns.append((j, +1.0))
        else:
            columns.append((j, +1.0))
            columns.append((j, -1.0))

    def expand_row(row: np.ndarray) -> np.ndarray:
        out = np.zeros(len(columns))
        for k, (j, sign) in enumerate(columns):
            out[k] = sign * row[j]
        return out

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[str] = []  # "le" or "eq"

    a_ub = form.a_ub.toarray() if form.a_ub.shape[0] else np.zeros((0, n))
    for i in range(a_ub.shape[0]):
        rows.append(expand_row(a_ub[i]))
        rhs.append(form.b_ub[i] - a_ub[i] @ shift)
        senses.append("le")
    a_eq = form.a_eq.toarray() if form.a_eq.shape[0] else np.zeros((0, n))
    for i in range(a_eq.shape[0]):
        rows.append(expand_row(a_eq[i]))
        rhs.append(form.b_eq[i] - a_eq[i] @ shift)
        senses.append("eq")
    # Finite upper bounds become rows y_j <= ub - lb.
    for j in range(n):
        ub = form.ub[j]
        if math.isfinite(ub):
            unit = np.zeros(n)
            unit[j] = 1.0
            rows.append(expand_row(unit))
            rhs.append(ub - shift[j])
            senses.append("le")

    n_y = len(columns)
    n_slack = sum(1 for s in senses if s == "le")
    m = len(rows)

    # Assemble [A | slack | artificial | b] and normalize b >= 0.
    total_cols = n_y + n_slack + m
    tableau = np.zeros((m, total_cols + 1))
    slack_at = 0
    artificial_index: list[int] = []
    for i, (row, b, sense) in enumerate(zip(rows, rhs, senses)):
        tableau[i, :n_y] = row
        tableau[i, -1] = b
        if sense == "le":
            tableau[i, n_y + slack_at] = 1.0
            slack_at += 1
        if tableau[i, -1] < 0:
            tableau[i, :-1] *= -1.0
            tableau[i, -1] *= -1.0
        art = n_y + n_slack + i
        tableau[i, art] = 1.0
        artificial_index.append(art)

    basis = list(artificial_index)

    # Phase 1: minimize the sum of artificials.
    phase1_costs = np.zeros(total_cols)
    for art in artificial_index:
        phase1_costs[art] = 1.0
    status, tableau, basis = _simplex_phase(tableau, basis, phase1_costs)
    if status != "optimal":  # pragma: no cover - phase 1 is always bounded
        raise SolverError("phase 1 unbounded")
    infeasibility = phase1_costs[basis] @ tableau[:, -1]
    if infeasibility > 1e-7:
        return SolveResult(
            status=SolveStatus.INFEASIBLE,
            solver="simplex",
            wall_time_s=time.perf_counter() - start,
        )
    # Drive any remaining artificials out of the basis when possible.
    for i, var in enumerate(basis):
        if var >= n_y + n_slack:
            for j in range(n_y + n_slack):
                if abs(tableau[i, j]) > _TOL:
                    pivot = tableau[i, j]
                    tableau[i] /= pivot
                    for k in range(m):
                        if k != i and abs(tableau[k, j]) > _TOL:
                            tableau[k] -= tableau[k, j] * tableau[i]
                    basis[i] = j
                    break

    # Phase 2: true objective over y (artificials cost +inf — exclude by
    # giving them a huge cost so they never re-enter).
    phase2_costs = np.zeros(total_cols)
    for k, (j, sign) in enumerate(columns):
        phase2_costs[k] = sign * form.c[j]
    for art in artificial_index:
        phase2_costs[art] = 1e12
    status, tableau, basis = _simplex_phase(tableau, basis, phase2_costs)
    if status == "unbounded":
        return SolveResult(
            status=SolveStatus.UNBOUNDED,
            solver="simplex",
            wall_time_s=time.perf_counter() - start,
        )

    # Recover model-variable values.
    y = np.zeros(total_cols)
    for i, var in enumerate(basis):
        y[var] = tableau[i, -1]
    x = shift.copy()
    for k, (j, sign) in enumerate(columns):
        x[j] += sign * y[k]
    minimized = float(form.c @ x)
    values = {name: float(v) for name, v in zip(form.var_names, x)}
    return SolveResult(
        status=SolveStatus.OPTIMAL,
        objective=form.objective_value(minimized),
        values=values,
        solver="simplex",
        wall_time_s=time.perf_counter() - start,
    )
