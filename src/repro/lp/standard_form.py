"""Compile a :class:`~repro.lp.model.Model` to matrix standard form.

The standard form used by both solvers is::

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lb <= x <= ub
                x[i] integer for i in integrality

Maximization models are negated on the way in; callers must negate the
optimal value on the way out (:func:`StandardForm.objective_value` does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError
from repro.lp.model import EQUAL, GREATER_EQUAL, LESS_EQUAL, Model

__all__ = ["StandardForm", "to_standard_form"]


@dataclass
class StandardForm:
    """Matrix form of a model (see module docstring)."""

    c: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray  # 1.0 where integer, 0.0 where continuous
    maximize: bool
    objective_constant: float
    var_names: tuple[str, ...]

    @property
    def n_vars(self) -> int:
        """Number of variables."""
        return len(self.c)

    def objective_value(self, minimized_value: float) -> float:
        """Convert the solver's ``c @ x`` value back to the model's sense.

        ``minimized_value`` excludes the objective constant (linprog/milp
        only see ``c``).  The stored constant is already negated for
        maximization, so adding it and flipping the sign restores the
        model's objective.
        """
        value = minimized_value + self.objective_constant
        return -value if self.maximize else value


def to_standard_form(model: Model) -> StandardForm:
    """Compile ``model`` into :class:`StandardForm`.

    ``>=`` rows are negated into ``<=`` rows; ``==`` rows go to the
    equality block.  The objective is negated for maximization.
    """
    n = model.n_vars
    if n == 0:
        raise ModelError("model has no variables")

    maximize = model.sense == "max"
    c = np.zeros(n)
    objective = model.objective
    for index, coefficient in objective.coefficients.items():
        c[index] = coefficient
    constant = objective.constant
    if maximize:
        c = -c
        constant = -constant

    ub_rows: list[tuple[dict[int, float], float]] = []
    eq_rows: list[tuple[dict[int, float], float]] = []
    for constraint in model.constraints:
        coefficients = dict(constraint.expr.coefficients)
        rhs = constraint.rhs
        if constraint.sense == LESS_EQUAL:
            ub_rows.append((coefficients, rhs))
        elif constraint.sense == GREATER_EQUAL:
            ub_rows.append(({i: -v for i, v in coefficients.items()}, -rhs))
        elif constraint.sense == EQUAL:
            eq_rows.append((coefficients, rhs))
        else:  # pragma: no cover - Constraint.build validates senses
            raise ModelError(f"unknown sense {constraint.sense!r}")

    def build(rows: list[tuple[dict[int, float], float]]) -> tuple[sparse.csr_matrix, np.ndarray]:
        data: list[float] = []
        row_idx: list[int] = []
        col_idx: list[int] = []
        b = np.zeros(len(rows))
        for r, (coefficients, rhs) in enumerate(rows):
            b[r] = rhs
            for col, value in coefficients.items():
                if value != 0.0:
                    data.append(value)
                    row_idx.append(r)
                    col_idx.append(col)
        matrix = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(rows), n)
        )
        return matrix, b

    a_ub, b_ub = build(ub_rows)
    a_eq, b_eq = build(eq_rows)

    lb = np.array([v.lb for v in model.variables])
    ub = np.array([v.ub for v in model.variables])
    integrality = np.array([1.0 if v.integer else 0.0 for v in model.variables])

    return StandardForm(
        c=c,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        lb=lb,
        ub=ub,
        integrality=integrality,
        maximize=maximize,
        objective_constant=constant,
        var_names=tuple(v.name for v in model.variables),
    )
