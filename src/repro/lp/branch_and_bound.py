"""A pure-Python branch-and-bound MILP solver.

This is the library-owned fallback to HiGHS: LP relaxations are solved
with :func:`scipy.optimize.linprog` and integrality is enforced by
branching on the most fractional variable.  Best-bound node selection
keeps the tree small; a time limit turns the best incumbent into a
``FEASIBLE`` result.

It is deliberately simple — correct and tested rather than fast — and is
used in the test suite to cross-validate the HiGHS results on small
FMSSM instances.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from itertools import count

import numpy as np
from scipy import optimize

from repro.lp.model import Model
from repro.lp.solution import SolveResult, SolveStatus
from repro.lp.standard_form import StandardForm, to_standard_form

__all__ = ["solve_with_bnb"]

_INT_TOL = 1e-6
_BOUND_TOL = 1e-9


@dataclass(order=True)
class _Node:
    bound: float  # LP relaxation value (minimization) — priority key
    order: int
    lb: np.ndarray = field(compare=False)
    ub: np.ndarray = field(compare=False)


def _solve_relaxation(
    form: StandardForm, lb: np.ndarray, ub: np.ndarray
) -> tuple[float, np.ndarray] | None:
    """LP relaxation under the node bounds; ``None`` when infeasible."""
    result = optimize.linprog(
        c=form.c,
        A_ub=form.a_ub if form.a_ub.shape[0] else None,
        b_ub=form.b_ub if form.a_ub.shape[0] else None,
        A_eq=form.a_eq if form.a_eq.shape[0] else None,
        b_eq=form.b_eq if form.a_eq.shape[0] else None,
        bounds=np.column_stack([lb, ub]),
        method="highs",
    )
    if result.status == 2:  # infeasible
        return None
    if result.status == 3:  # unbounded
        return (-math.inf, np.full(form.n_vars, math.nan))
    if not result.success:  # pragma: no cover - numerical trouble
        return None
    return float(result.fun), np.asarray(result.x)


def _most_fractional(x: np.ndarray, integrality: np.ndarray) -> int | None:
    """Index of the integer variable farthest from integrality, or None."""
    best_index: int | None = None
    best_frac = _INT_TOL
    for i, flag in enumerate(integrality):
        if not flag:
            continue
        frac = abs(x[i] - round(x[i]))
        distance = min(frac, 1.0 - frac) if frac > 0.5 else frac
        distance = abs(x[i] - math.floor(x[i]) - 0.5)
        score = 0.5 - distance  # 0.5 == perfectly fractional
        if score > best_frac and abs(x[i] - round(x[i])) > _INT_TOL:
            best_frac = score
            best_index = i
    if best_index is not None:
        return best_index
    # Fall back to any fractional variable above tolerance.
    for i, flag in enumerate(integrality):
        if flag and abs(x[i] - round(x[i])) > _INT_TOL:
            return i
    return None


def solve_with_bnb(
    model: Model,
    time_limit_s: float | None = None,
    max_nodes: int = 200_000,
) -> SolveResult:
    """Solve ``model`` by branch-and-bound over LP relaxations.

    Parameters
    ----------
    model:
        LP or MILP to solve.
    time_limit_s:
        Wall-clock budget; the best incumbent (if any) is returned as
        ``FEASIBLE`` when exceeded.
    max_nodes:
        Hard cap on explored nodes, a second safety valve.
    """
    form = to_standard_form(model)
    start = time.perf_counter()

    root = _solve_relaxation(form, form.lb.copy(), form.ub.copy())
    if root is None:
        return SolveResult(
            status=SolveStatus.INFEASIBLE, solver="bnb",
            wall_time_s=time.perf_counter() - start,
        )
    root_bound, root_x = root
    if math.isinf(root_bound) and root_bound < 0:
        return SolveResult(
            status=SolveStatus.UNBOUNDED, solver="bnb",
            wall_time_s=time.perf_counter() - start,
        )

    tie = count()
    heap: list[_Node] = [_Node(root_bound, next(tie), form.lb.copy(), form.ub.copy())]
    incumbent_value = math.inf  # minimized objective
    incumbent_x: np.ndarray | None = None
    nodes = 0
    timed_out = False

    while heap:
        if time_limit_s is not None and time.perf_counter() - start > time_limit_s:
            timed_out = True
            break
        if nodes >= max_nodes:
            timed_out = True
            break
        node = heapq.heappop(heap)
        if node.bound >= incumbent_value - _BOUND_TOL:
            continue  # pruned by bound
        relaxed = _solve_relaxation(form, node.lb, node.ub)
        nodes += 1
        if relaxed is None:
            continue
        value, x = relaxed
        if value >= incumbent_value - _BOUND_TOL:
            continue
        branch_var = _most_fractional(x, form.integrality)
        if branch_var is None:
            # Integral solution — new incumbent.
            incumbent_value = value
            incumbent_x = x.copy()
            continue
        floor_val = math.floor(x[branch_var] + _INT_TOL)
        # Down branch: ub[branch_var] = floor
        down_ub = node.ub.copy()
        down_ub[branch_var] = floor_val
        if form.lb[branch_var] <= floor_val:
            heapq.heappush(heap, _Node(value, next(tie), node.lb.copy(), down_ub))
        # Up branch: lb[branch_var] = floor + 1
        up_lb = node.lb.copy()
        up_lb[branch_var] = floor_val + 1
        if floor_val + 1 <= form.ub[branch_var]:
            heapq.heappush(heap, _Node(value, next(tie), up_lb, node.ub.copy()))

    elapsed = time.perf_counter() - start
    if incumbent_x is None:
        status = SolveStatus.TIMEOUT if timed_out else SolveStatus.INFEASIBLE
        return SolveResult(status=status, solver="bnb", wall_time_s=elapsed, nodes=nodes)

    # Snap near-integral values exactly.
    snapped = incumbent_x.copy()
    for i, flag in enumerate(form.integrality):
        if flag:
            snapped[i] = round(snapped[i])
    values = {name: float(v) for name, v in zip(form.var_names, snapped)}
    status = SolveStatus.FEASIBLE if timed_out and heap else SolveStatus.OPTIMAL
    return SolveResult(
        status=status,
        objective=form.objective_value(incumbent_value),
        values=values,
        solver="bnb",
        wall_time_s=elapsed,
        nodes=nodes,
    )
