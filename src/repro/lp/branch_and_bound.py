"""A pure-Python branch-and-bound MILP solver.

This is the library-owned fallback to HiGHS: LP relaxations are solved
with :func:`scipy.optimize.linprog` and integrality is enforced by
branching.  Best-bound node selection keeps the tree small; a time limit
turns the best incumbent into a ``FEASIBLE`` result.

Branching uses pseudo-cost scoring: per-variable estimates of how much
the LP bound degrades when branching up or down, initialised from the
objective coefficients and refined from observed child-node bounds (the
classic product rule).  At the root, reduced costs from the LP dual are
used to fix integer variables whose reduced cost alone exceeds the
primal/dual gap — with a warm-start incumbent (e.g. the PM heuristic
solution) this can fix most of the binaries before any branching.

It remains correct and tested rather than fast, and is used in the test
suite to cross-validate the HiGHS results on small FMSSM instances.

Two entry points mirror :mod:`repro.lp.highs`: :func:`solve_with_bnb`
takes a DSL model, :func:`solve_form_with_bnb` an already-compiled
:class:`StandardForm` plus an optional warm-start vector.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from itertools import count

import numpy as np
from scipy import optimize

from repro.lp.model import Model
from repro.lp.solution import SolveResult, SolveStatus
from repro.lp.standard_form import StandardForm, to_standard_form
from repro.resilience import chaos

__all__ = ["solve_with_bnb", "solve_form_with_bnb"]

_INT_TOL = 1e-6
_BOUND_TOL = 1e-9
_FEAS_TOL = 1e-6
_PSEUDO_EPS = 1e-4


@dataclass(order=True)
class _Node:
    bound: float  # parent LP relaxation value (minimization) — priority key
    order: int
    lb: np.ndarray = field(compare=False)
    ub: np.ndarray = field(compare=False)
    branch_var: int = field(default=-1, compare=False)
    branch_up: bool = field(default=False, compare=False)
    frac: float = field(default=0.0, compare=False)


def _solve_relaxation(
    form: StandardForm, lb: np.ndarray, ub: np.ndarray
) -> tuple[float, np.ndarray, object] | None:
    """LP relaxation under the node bounds; ``None`` when infeasible."""
    result = optimize.linprog(
        c=form.c,
        A_ub=form.a_ub if form.a_ub.shape[0] else None,
        b_ub=form.b_ub if form.a_ub.shape[0] else None,
        A_eq=form.a_eq if form.a_eq.shape[0] else None,
        b_eq=form.b_eq if form.a_eq.shape[0] else None,
        bounds=np.column_stack([lb, ub]),
        method="highs",
    )
    if result.status == 2:  # infeasible
        return None
    if result.status == 3:  # unbounded
        return (-math.inf, np.full(form.n_vars, math.nan), result)
    if not result.success:  # pragma: no cover - numerical trouble
        return None
    return float(result.fun), np.asarray(result.x), result


def validate_start(
    form: StandardForm, x: np.ndarray, tol: float = _FEAS_TOL
) -> np.ndarray | None:
    """Return ``x`` with integers snapped if it is feasible, else ``None``.

    Checks bounds, integrality, and both constraint blocks within ``tol``
    (absolute, plus relative in the row activities).  A vector that fails
    any check is rejected rather than repaired — a warm start must be a
    genuine feasible point to be used as an incumbent.
    """
    x = np.asarray(x, dtype=float)
    if x.shape != (form.n_vars,):
        return None
    if np.any(x < form.lb - tol) or np.any(x > form.ub + tol):
        return None
    ints = np.asarray(form.integrality, dtype=bool)
    snapped = x.copy()
    snapped[ints] = np.round(snapped[ints])
    if np.any(np.abs(x[ints] - snapped[ints]) > tol):
        return None
    np.clip(snapped, form.lb, form.ub, out=snapped)
    if form.a_ub.shape[0]:
        act = form.a_ub @ snapped
        if np.any(act > form.b_ub + tol * (1.0 + np.abs(form.b_ub))):
            return None
    if form.a_eq.shape[0]:
        act = form.a_eq @ snapped
        if np.any(np.abs(act - form.b_eq) > tol * (1.0 + np.abs(form.b_eq))):
            return None
    return snapped


def _reduced_cost_fixing(
    form: StandardForm,
    root_result: object,
    root_bound: float,
    incumbent_value: float,
    lb: np.ndarray,
    ub: np.ndarray,
) -> int:
    """Fix integer variables at the root via reduced costs.

    For a variable nonbasic at its lower bound with reduced cost
    ``d > 0``, every solution with the variable raised by ≥ 1 costs at
    least ``root_bound + d``; if that exceeds the incumbent the variable
    can be fixed at its bound (symmetrically at the upper bound).  Valid
    for the whole tree because every node tightens the root bounds.
    Returns the number of variables fixed.
    """
    gap = incumbent_value - root_bound
    if not math.isfinite(gap) or gap < 0:
        return 0
    lower = getattr(root_result, "lower", None)
    upper = getattr(root_result, "upper", None)
    if lower is None or upper is None:  # pragma: no cover - old scipy
        return 0
    ints = np.asarray(form.integrality, dtype=bool)
    free = ub - lb > 0.5  # only unfixed integer vars are candidates
    threshold = gap + _FEAS_TOL
    fixed = 0
    at_lb = ints & free & (np.asarray(lower.marginals) > threshold)
    at_ub = ints & free & (-np.asarray(upper.marginals) > threshold)
    if np.any(at_lb):
        ub[at_lb] = lb[at_lb]
        fixed += int(np.count_nonzero(at_lb))
    if np.any(at_ub & ~at_lb):
        sel = at_ub & ~at_lb
        lb[sel] = ub[sel]
        fixed += int(np.count_nonzero(sel))
    return fixed


class _PseudoCosts:
    """Per-variable up/down bound-degradation estimates (product rule)."""

    def __init__(self, form: StandardForm) -> None:
        # Seed from |c_j|: absent history, a variable's objective weight
        # is the best available proxy for its bound impact.
        seed = np.abs(form.c) + _PSEUDO_EPS
        self.up = seed.copy()
        self.down = seed.copy()
        self.n_up = np.zeros(form.n_vars)
        self.n_down = np.zeros(form.n_vars)

    def update(self, node: _Node, child_value: float) -> None:
        j = node.branch_var
        if j < 0 or not math.isfinite(child_value):
            return
        degradation = max(child_value - node.bound, 0.0)
        if node.branch_up:
            dist = max(1.0 - node.frac, _INT_TOL)
            n = self.n_up[j]
            self.up[j] = (self.up[j] * n + degradation / dist) / (n + 1.0)
            self.n_up[j] = n + 1.0
        else:
            dist = max(node.frac, _INT_TOL)
            n = self.n_down[j]
            self.down[j] = (self.down[j] * n + degradation / dist) / (n + 1.0)
            self.n_down[j] = n + 1.0

    def select(self, x: np.ndarray, integrality: np.ndarray) -> int | None:
        ints = np.asarray(integrality, dtype=bool)
        frac = x - np.floor(x)
        fractional = ints & (np.minimum(frac, 1.0 - frac) > _INT_TOL)
        if not np.any(fractional):
            return None
        idx = np.flatnonzero(fractional)
        f = frac[idx]
        score = np.maximum(self.down[idx] * f, _PSEUDO_EPS) * np.maximum(
            self.up[idx] * (1.0 - f), _PSEUDO_EPS
        )
        return int(idx[np.argmax(score)])


def solve_form_with_bnb(
    form: StandardForm,
    time_limit_s: float | None = None,
    max_nodes: int = 200_000,
    warm_start: np.ndarray | None = None,
) -> SolveResult:
    """Branch-and-bound over LP relaxations of a compiled form.

    Parameters
    ----------
    form:
        Standard form to solve.
    time_limit_s:
        Wall-clock budget; the best incumbent (if any) is returned as
        ``FEASIBLE`` when exceeded.
    max_nodes:
        Hard cap on explored nodes, a second safety valve.
    warm_start:
        Optional feasible point (column order of ``form``) installed as
        the initial incumbent after validation.  An infeasible vector is
        silently ignored — seeding only ever helps, never changes the
        answer.  The returned incumbent is never worse than the seed.
    """
    chaos.check("bnb.solve")
    start = time.perf_counter()

    incumbent_value = math.inf  # minimized objective
    incumbent_x: np.ndarray | None = None
    if warm_start is not None:
        seeded = validate_start(form, warm_start)
        if seeded is not None:
            incumbent_value = float(form.c @ seeded)
            incumbent_x = seeded

    root = _solve_relaxation(form, form.lb.copy(), form.ub.copy())
    if root is None:
        # The LP relaxation being infeasible proves the MILP infeasible;
        # a validated warm start and an infeasible relaxation cannot
        # coexist except through numerical tolerance — trust the LP.
        return SolveResult(
            status=SolveStatus.INFEASIBLE, solver="bnb",
            wall_time_s=time.perf_counter() - start,
        )
    root_bound, root_x, root_result = root
    if math.isinf(root_bound) and root_bound < 0:
        return SolveResult(
            status=SolveStatus.UNBOUNDED, solver="bnb",
            wall_time_s=time.perf_counter() - start,
        )

    root_lb = form.lb.copy()
    root_ub = form.ub.copy()
    if incumbent_x is not None:
        _reduced_cost_fixing(
            form, root_result, root_bound, incumbent_value, root_lb, root_ub
        )

    pseudo = _PseudoCosts(form)
    tie = count()
    heap: list[_Node] = [_Node(root_bound, next(tie), root_lb, root_ub)]
    nodes = 0
    timed_out = False

    while heap:
        if time_limit_s is not None and time.perf_counter() - start > time_limit_s:
            timed_out = True
            break
        if nodes >= max_nodes:
            timed_out = True
            break
        node = heapq.heappop(heap)
        if node.bound >= incumbent_value - _BOUND_TOL:
            continue  # pruned by bound
        relaxed = _solve_relaxation(form, node.lb, node.ub)
        nodes += 1
        if relaxed is None:
            continue
        value, x, _ = relaxed
        pseudo.update(node, value)
        if value >= incumbent_value - _BOUND_TOL:
            continue
        branch_var = pseudo.select(x, form.integrality)
        if branch_var is None:
            # Integral solution — new incumbent.
            incumbent_value = value
            incumbent_x = x.copy()
            continue
        frac = x[branch_var] - math.floor(x[branch_var])
        floor_val = math.floor(x[branch_var] + _INT_TOL)
        # Down branch: ub[branch_var] = floor
        if node.lb[branch_var] <= floor_val:
            down_ub = node.ub.copy()
            down_ub[branch_var] = floor_val
            heapq.heappush(
                heap,
                _Node(value, next(tie), node.lb.copy(), down_ub,
                      branch_var, False, frac),
            )
        # Up branch: lb[branch_var] = floor + 1
        if floor_val + 1 <= node.ub[branch_var]:
            up_lb = node.lb.copy()
            up_lb[branch_var] = floor_val + 1
            heapq.heappush(
                heap,
                _Node(value, next(tie), up_lb, node.ub.copy(),
                      branch_var, True, frac),
            )

    elapsed = time.perf_counter() - start
    if incumbent_x is None:
        status = SolveStatus.TIMEOUT if timed_out else SolveStatus.INFEASIBLE
        return SolveResult(status=status, solver="bnb", wall_time_s=elapsed, nodes=nodes)

    # Snap near-integral values exactly.
    snapped = incumbent_x.copy()
    ints = np.asarray(form.integrality, dtype=bool)
    snapped[ints] = np.round(snapped[ints])
    values = (
        {name: float(v) for name, v in zip(form.var_names, snapped)}
        if form.var_names
        else {}
    )
    status = SolveStatus.FEASIBLE if timed_out and heap else SolveStatus.OPTIMAL
    return SolveResult(
        status=status,
        objective=form.objective_value(incumbent_value),
        values=values,
        x=snapped,
        solver="bnb",
        wall_time_s=elapsed,
        nodes=nodes,
    )


def solve_with_bnb(
    model: Model,
    time_limit_s: float | None = None,
    max_nodes: int = 200_000,
    warm_start: dict[str, float] | None = None,
) -> SolveResult:
    """Solve ``model`` by branch-and-bound over LP relaxations.

    Parameters
    ----------
    model:
        LP or MILP to solve.
    time_limit_s:
        Wall-clock budget; the best incumbent (if any) is returned as
        ``FEASIBLE`` when exceeded.
    max_nodes:
        Hard cap on explored nodes, a second safety valve.
    warm_start:
        Optional name → value mapping describing a feasible point;
        variables not mentioned default to their lower bound.  Passed to
        :func:`solve_form_with_bnb` after conversion to column order.
    """
    form = to_standard_form(model)
    start_vec: np.ndarray | None = None
    if warm_start is not None:
        start_vec = form.lb.copy()
        index = {name: j for j, name in enumerate(form.var_names)}
        for name, value in warm_start.items():
            j = index.get(name)
            if j is not None:
                start_vec[j] = float(value)
    return solve_form_with_bnb(
        form, time_limit_s=time_limit_s, max_nodes=max_nodes, warm_start=start_vec
    )
