"""A small linear/mixed-integer programming modelling DSL.

The FMSSM formulation (problem P′ of the paper) is expressed through this
layer, which compiles to matrix standard form for the solvers in
:mod:`repro.lp.highs` and :mod:`repro.lp.branch_and_bound`.

Example
-------
>>> m = Model("toy")
>>> x = m.add_var("x", lb=0, ub=10)
>>> y = m.add_var("y", binary=True)
>>> _ = m.add_constraint(x + 5 * y <= 8, name="cap")
>>> m.set_objective(x + 3 * y, sense="max")
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.exceptions import ModelError

__all__ = ["Var", "LinExpr", "Constraint", "Model", "LESS_EQUAL", "GREATER_EQUAL", "EQUAL"]

LESS_EQUAL = "<="
GREATER_EQUAL = ">="
EQUAL = "=="
_SENSES = (LESS_EQUAL, GREATER_EQUAL, EQUAL)


@dataclass(frozen=True)
class Var:
    """A decision variable.  Created through :meth:`Model.add_var`."""

    name: str
    index: int
    lb: float
    ub: float
    integer: bool

    def __add__(self, other: "Var | LinExpr | float") -> "LinExpr":
        return LinExpr.from_term(self) + other

    def __radd__(self, other: float) -> "LinExpr":
        return LinExpr.from_term(self) + other

    def __sub__(self, other: "Var | LinExpr | float") -> "LinExpr":
        return LinExpr.from_term(self) - other

    def __rsub__(self, other: float) -> "LinExpr":
        return LinExpr(constant=float(other)) - LinExpr.from_term(self)

    def __mul__(self, coefficient: float) -> "LinExpr":
        return LinExpr.from_term(self, coefficient)

    def __rmul__(self, coefficient: float) -> "LinExpr":
        return LinExpr.from_term(self, coefficient)

    def __neg__(self) -> "LinExpr":
        return LinExpr.from_term(self, -1.0)

    def __le__(self, other: "Var | LinExpr | float") -> "Constraint":
        return LinExpr.from_term(self) <= other

    def __ge__(self, other: "Var | LinExpr | float") -> "Constraint":
        return LinExpr.from_term(self) >= other

    # NOTE: Var is a frozen dataclass, so __eq__ keeps identity semantics;
    # build equality constraints from LinExpr (e.g. ``1 * x == 3``).


@dataclass
class LinExpr:
    """A linear expression: ``sum(coef * var) + constant``."""

    coefficients: dict[int, float] = field(default_factory=dict)
    constant: float = 0.0
    _vars: dict[int, Var] = field(default_factory=dict)

    @classmethod
    def from_term(cls, var: Var, coefficient: float = 1.0) -> "LinExpr":
        """Build an expression from a single scaled variable."""
        return cls(
            coefficients={var.index: float(coefficient)},
            constant=0.0,
            _vars={var.index: var},
        )

    @classmethod
    def total(cls, terms: Iterable[tuple[float, Var]]) -> "LinExpr":
        """Build ``sum(coef * var)`` efficiently from ``(coef, var)`` pairs."""
        expr = cls()
        for coefficient, var in terms:
            expr._add_term(var, float(coefficient))
        return expr

    def _add_term(self, var: Var, coefficient: float) -> None:
        self.coefficients[var.index] = self.coefficients.get(var.index, 0.0) + coefficient
        self._vars[var.index] = var

    def copy(self) -> "LinExpr":
        """An independent copy."""
        return LinExpr(dict(self.coefficients), self.constant, dict(self._vars))

    def variables(self) -> list[Var]:
        """Variables appearing in the expression (any coefficient)."""
        return [self._vars[i] for i in sorted(self._vars)]

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "Var | LinExpr | float") -> "LinExpr":
        result = self.copy()
        if isinstance(other, Var):
            result._add_term(other, 1.0)
        elif isinstance(other, LinExpr):
            for index, coefficient in other.coefficients.items():
                result.coefficients[index] = result.coefficients.get(index, 0.0) + coefficient
                result._vars[index] = other._vars[index]
            result.constant += other.constant
        elif isinstance(other, (int, float)):
            result.constant += float(other)
        else:
            return NotImplemented
        return result

    def __radd__(self, other: float) -> "LinExpr":
        return self + other

    def __sub__(self, other: "Var | LinExpr | float") -> "LinExpr":
        if isinstance(other, Var):
            return self + LinExpr.from_term(other, -1.0)
        if isinstance(other, LinExpr):
            return self + (other * -1.0)
        if isinstance(other, (int, float)):
            return self + (-float(other))
        return NotImplemented

    def __rsub__(self, other: float) -> "LinExpr":
        return (self * -1.0) + float(other)

    def __mul__(self, scalar: float) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        result = self.copy()
        result.constant *= float(scalar)
        for index in result.coefficients:
            result.coefficients[index] *= float(scalar)
        return result

    def __rmul__(self, scalar: float) -> "LinExpr":
        return self * scalar

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints ---------------------------------
    def __le__(self, other: "Var | LinExpr | float") -> "Constraint":
        return Constraint.build(self, LESS_EQUAL, other)

    def __ge__(self, other: "Var | LinExpr | float") -> "Constraint":
        return Constraint.build(self, GREATER_EQUAL, other)

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return Constraint.build(self, EQUAL, other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        parts = [
            f"{coefficient:+g}*{self._vars[index].name}"
            for index, coefficient in sorted(self.coefficients.items())
            if coefficient != 0.0
        ]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


@dataclass
class Constraint:
    """``expr (sense) 0`` — the right-hand side is folded into ``expr``."""

    expr: LinExpr
    sense: str
    name: str = ""

    @classmethod
    def build(
        cls,
        left: "Var | LinExpr | float",
        sense: str,
        right: "Var | LinExpr | float",
    ) -> "Constraint":
        """Normalize ``left sense right`` into ``expr sense 0``."""
        if sense not in _SENSES:
            raise ModelError(f"unknown constraint sense {sense!r}")
        left_expr = LinExpr.from_term(left) if isinstance(left, Var) else (
            LinExpr(constant=float(left)) if isinstance(left, (int, float)) else left
        )
        diff = left_expr - right
        if not isinstance(diff, LinExpr):
            raise ModelError(f"cannot build constraint from {left!r} and {right!r}")
        if not diff.coefficients:
            raise ModelError("constraint has no variables")
        return cls(expr=diff, sense=sense)

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant over: ``-constant``."""
        return -self.expr.constant

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        body = LinExpr(dict(self.expr.coefficients), 0.0, dict(self.expr._vars))
        return f"{label}{body!r} {self.sense} {self.rhs:g}"


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._vars: list[Var] = []
        self._names: set[str] = set()
        self._constraints: list[Constraint] = []
        self._objective: LinExpr | None = None
        self._sense: str = "min"

    # -- building -------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = False,
        binary: bool = False,
    ) -> Var:
        """Add a decision variable.

        ``binary=True`` is shorthand for an integer variable in [0, 1].
        Variable names must be unique within the model.
        """
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        if binary:
            lb, ub, integer = 0.0, 1.0, True
        if lb > ub:
            raise ModelError(f"variable {name!r} has lb {lb} > ub {ub}")
        var = Var(name=name, index=len(self._vars), lb=float(lb), ub=float(ub), integer=integer)
        self._vars.append(var)
        self._names.add(name)
        return var

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                f"expected a Constraint (did the comparison degrade to bool?): "
                f"{constraint!r}"
            )
        if name:
            constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def set_objective(self, expr: "Var | LinExpr", sense: str = "min") -> None:
        """Set the objective expression and direction (``min`` or ``max``)."""
        if sense not in ("min", "max"):
            raise ModelError(f"objective sense must be 'min' or 'max': {sense!r}")
        if isinstance(expr, Var):
            expr = LinExpr.from_term(expr)
        if not isinstance(expr, LinExpr):
            raise ModelError(f"objective must be linear: {expr!r}")
        self._objective = expr.copy()
        self._sense = sense

    # -- introspection ----------------------------------------------------
    @property
    def variables(self) -> tuple[Var, ...]:
        """All variables in index order."""
        return tuple(self._vars)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        """All registered constraints."""
        return tuple(self._constraints)

    @property
    def objective(self) -> LinExpr:
        """The objective expression (zero if unset)."""
        return self._objective.copy() if self._objective is not None else LinExpr()

    @property
    def sense(self) -> str:
        """Objective direction: ``"min"`` or ``"max"``."""
        return self._sense

    @property
    def n_vars(self) -> int:
        """Number of variables."""
        return len(self._vars)

    @property
    def n_integer_vars(self) -> int:
        """Number of integer (including binary) variables."""
        return sum(1 for v in self._vars if v.integer)

    @property
    def n_constraints(self) -> int:
        """Number of constraints."""
        return len(self._constraints)

    def __repr__(self) -> str:
        return (
            f"Model(name={self.name!r}, vars={self.n_vars} "
            f"({self.n_integer_vars} int), constraints={self.n_constraints}, "
            f"sense={self._sense})"
        )
