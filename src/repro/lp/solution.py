"""Solver result types shared by the HiGHS adapter and branch-and-bound."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions import SolverError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["SolveStatus", "SolveResult"]


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # incumbent found but optimality not proven (time limit)
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIMEOUT = "timeout"  # time limit hit with no incumbent
    ERROR = "error"


@dataclass
class SolveResult:
    """Result of solving a model.

    Attributes
    ----------
    status:
        Solve outcome.
    objective:
        Objective value in the *model's* sense (``None`` unless a feasible
        point exists).
    values:
        Variable name → value for the incumbent (empty when none, or
        when the model was solved from an unnamed standard form — use
        ``x`` then).
    x:
        Raw incumbent vector in column order (``None`` when no incumbent
        exists).  Form-level callers that track their own column layout
        read this instead of the name-keyed ``values``.
    solver:
        Which backend produced the result (``"highs"`` or ``"bnb"``).
    wall_time_s:
        Wall-clock seconds spent in the solver.
    gap:
        Relative MIP gap of the incumbent when known, else ``None``.
    nodes:
        Branch-and-bound nodes processed when known.
    message:
        Free-form backend diagnostics.
    basis:
        Opaque LP basis of the optimal vertex when the backend exposes
        one (``None`` under scipy's ``linprog``, which has no basis
        API).  Incremental sweeps forward it to the next scenario's
        relaxation as a warm-start hint.
    """

    status: SolveStatus
    objective: float | None = None
    values: dict[str, float] = field(default_factory=dict)
    x: "np.ndarray | None" = None
    solver: str = ""
    wall_time_s: float = 0.0
    gap: float | None = None
    nodes: int | None = None
    message: str = ""
    basis: object | None = None

    @property
    def is_feasible(self) -> bool:
        """Whether a usable incumbent exists (optimal or not)."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def value(self, name: str) -> float:
        """Value of variable ``name`` in the incumbent.

        Raises :class:`SolverError` when no incumbent exists or the name
        is unknown.
        """
        if not self.is_feasible:
            raise SolverError(f"no incumbent available (status={self.status.value})")
        try:
            return self.values[name]
        except KeyError:
            raise SolverError(f"unknown variable {name!r}") from None

    def __repr__(self) -> str:
        obj = "None" if self.objective is None else f"{self.objective:.6g}"
        return (
            f"SolveResult(status={self.status.value}, objective={obj}, "
            f"solver={self.solver!r}, time={self.wall_time_s:.3f}s)"
        )
