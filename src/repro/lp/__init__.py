"""LP/MILP modelling DSL and solvers (HiGHS adapter + own branch-and-bound)."""

from repro.lp.branch_and_bound import solve_with_bnb
from repro.lp.highs import solve_with_highs
from repro.lp.model import EQUAL, GREATER_EQUAL, LESS_EQUAL, Constraint, LinExpr, Model, Var
from repro.lp.simplex import solve_with_simplex
from repro.lp.solution import SolveResult, SolveStatus
from repro.lp.standard_form import StandardForm, to_standard_form

__all__ = [
    "Model",
    "Var",
    "LinExpr",
    "Constraint",
    "LESS_EQUAL",
    "GREATER_EQUAL",
    "EQUAL",
    "StandardForm",
    "to_standard_form",
    "SolveResult",
    "SolveStatus",
    "solve_with_highs",
    "solve_with_bnb",
    "solve_with_simplex",
    "solve",
]


def solve(model: Model, solver: str = "highs", **kwargs: object) -> SolveResult:
    """Solve a model with the chosen backend.

    ``"highs"`` (default) and ``"bnb"`` handle MILPs; ``"simplex"`` is
    the library's own LP solver and ignores integrality markers.
    """
    if solver == "highs":
        return solve_with_highs(model, **kwargs)  # type: ignore[arg-type]
    if solver == "bnb":
        return solve_with_bnb(model, **kwargs)  # type: ignore[arg-type]
    if solver == "simplex":
        return solve_with_simplex(model, **kwargs)  # type: ignore[arg-type]
    raise ValueError(f"unknown solver {solver!r}; use 'highs', 'bnb' or 'simplex'")
