"""MILP solving through SciPy's HiGHS backend.

The paper solves problem P′ with Gurobi; offline we use
:func:`scipy.optimize.milp` (the HiGHS solver), which solves the identical
integer program to proven optimality.  See DESIGN.md for the substitution
rationale.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize, sparse

from repro.lp.model import Model
from repro.lp.solution import SolveResult, SolveStatus
from repro.lp.standard_form import to_standard_form

__all__ = ["solve_with_highs"]

# scipy.optimize.milp status codes (documented in scipy):
_MILP_OPTIMAL = 0
_MILP_ITER_OR_TIME = 1
_MILP_INFEASIBLE = 2
_MILP_UNBOUNDED = 3
_MILP_NUMERICAL = 4


def solve_with_highs(
    model: Model,
    time_limit_s: float | None = None,
    mip_rel_gap: float = 0.0,
) -> SolveResult:
    """Solve ``model`` with HiGHS via :func:`scipy.optimize.milp`.

    Parameters
    ----------
    model:
        The model to solve (LP or MILP).
    time_limit_s:
        Optional wall-clock limit.  If hit with an incumbent, the result
        status is :attr:`SolveStatus.FEASIBLE`; without one,
        :attr:`SolveStatus.TIMEOUT`.
    mip_rel_gap:
        Relative optimality gap at which HiGHS may stop early.
    """
    form = to_standard_form(model)
    constraints = []
    if form.a_ub.shape[0]:
        constraints.append(
            optimize.LinearConstraint(form.a_ub, -np.inf, form.b_ub)
        )
    if form.a_eq.shape[0]:
        constraints.append(
            optimize.LinearConstraint(form.a_eq, form.b_eq, form.b_eq)
        )
    if not constraints:
        # milp requires a constraints argument shape it can handle; give a
        # vacuous one covering all variables.
        constraints.append(
            optimize.LinearConstraint(
                sparse.csr_matrix((1, form.n_vars)), -np.inf, np.inf
            )
        )
    options: dict[str, float] = {}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    if mip_rel_gap:
        options["mip_rel_gap"] = float(mip_rel_gap)

    start = time.perf_counter()
    raw = optimize.milp(
        c=form.c,
        constraints=constraints,
        integrality=form.integrality,
        bounds=optimize.Bounds(form.lb, form.ub),
        options=options or None,
    )
    elapsed = time.perf_counter() - start

    if raw.status == _MILP_INFEASIBLE:
        status = SolveStatus.INFEASIBLE
    elif raw.status == _MILP_UNBOUNDED:
        status = SolveStatus.UNBOUNDED
    elif raw.status == _MILP_OPTIMAL and raw.x is not None:
        status = SolveStatus.OPTIMAL
    elif raw.x is not None:
        status = SolveStatus.FEASIBLE
    elif raw.status == _MILP_ITER_OR_TIME:
        status = SolveStatus.TIMEOUT
    else:
        status = SolveStatus.ERROR

    values: dict[str, float] = {}
    objective = None
    gap = None
    if raw.x is not None:
        values = {name: float(v) for name, v in zip(form.var_names, raw.x)}
        objective = form.objective_value(float(raw.fun))
        gap = getattr(raw, "mip_gap", None)

    return SolveResult(
        status=status,
        objective=objective,
        values=values,
        solver="highs",
        wall_time_s=elapsed,
        gap=gap,
        nodes=getattr(raw, "mip_node_count", None),
        message=str(getattr(raw, "message", "")),
    )
