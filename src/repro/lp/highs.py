"""MILP solving through SciPy's HiGHS backend.

The paper solves problem P′ with Gurobi; offline we use
:func:`scipy.optimize.milp` (the HiGHS solver), which solves the identical
integer program to proven optimality.  See DESIGN.md for the substitution
rationale.

Two entry points are provided: :func:`solve_with_highs` takes a DSL
:class:`~repro.lp.model.Model` and compiles it first, while
:func:`solve_form_with_highs` takes an already-compiled
:class:`~repro.lp.standard_form.StandardForm` directly — the fast path
used by :mod:`repro.perf.compile`, which skips the modelling layer
entirely.  :func:`solve_form_relaxation` solves the LP relaxation of a
form, giving the dual bound the PM-seeded certificate in
:mod:`repro.fmssm.optimal` compares against.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize, sparse

from repro.lp.model import Model
from repro.lp.solution import SolveResult, SolveStatus
from repro.lp.standard_form import StandardForm, to_standard_form
from repro.resilience import chaos

__all__ = ["solve_with_highs", "solve_form_with_highs", "solve_form_relaxation"]

# scipy.optimize.milp status codes (documented in scipy):
_MILP_OPTIMAL = 0
_MILP_ITER_OR_TIME = 1
_MILP_INFEASIBLE = 2
_MILP_UNBOUNDED = 3
_MILP_NUMERICAL = 4


def solve_form_with_highs(
    form: StandardForm,
    time_limit_s: float | None = None,
    mip_rel_gap: float = 0.0,
) -> SolveResult:
    """Solve a compiled :class:`StandardForm` with HiGHS.

    The name-keyed ``values`` dict is only populated when the form
    carries variable names; form-level callers read ``result.x``.
    """
    chaos.check("highs.solve")
    constraints = []
    if form.a_ub.shape[0]:
        constraints.append(
            optimize.LinearConstraint(form.a_ub, -np.inf, form.b_ub)
        )
    if form.a_eq.shape[0]:
        constraints.append(
            optimize.LinearConstraint(form.a_eq, form.b_eq, form.b_eq)
        )
    if not constraints:
        # milp requires a constraints argument shape it can handle; give a
        # vacuous one covering all variables.
        constraints.append(
            optimize.LinearConstraint(
                sparse.csr_matrix((1, form.n_vars)), -np.inf, np.inf
            )
        )
    options: dict[str, float] = {}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    if mip_rel_gap:
        options["mip_rel_gap"] = float(mip_rel_gap)

    start = time.perf_counter()
    raw = optimize.milp(
        c=form.c,
        constraints=constraints,
        integrality=form.integrality,
        bounds=optimize.Bounds(form.lb, form.ub),
        options=options or None,
    )
    elapsed = time.perf_counter() - start

    if raw.status == _MILP_INFEASIBLE:
        status = SolveStatus.INFEASIBLE
    elif raw.status == _MILP_UNBOUNDED:
        status = SolveStatus.UNBOUNDED
    elif raw.status == _MILP_OPTIMAL and raw.x is not None:
        status = SolveStatus.OPTIMAL
    elif raw.x is not None:
        status = SolveStatus.FEASIBLE
    elif raw.status == _MILP_ITER_OR_TIME:
        status = SolveStatus.TIMEOUT
    else:
        status = SolveStatus.ERROR

    values: dict[str, float] = {}
    x: np.ndarray | None = None
    objective = None
    gap = None
    if raw.x is not None:
        x = chaos.transform("highs.solve.x", np.asarray(raw.x))
        if form.var_names:
            values = {name: float(v) for name, v in zip(form.var_names, x)}
        objective = form.objective_value(float(raw.fun))
        gap = getattr(raw, "mip_gap", None)

    return SolveResult(
        status=status,
        objective=objective,
        values=values,
        x=x,
        solver="highs",
        wall_time_s=elapsed,
        gap=gap,
        nodes=getattr(raw, "mip_node_count", None),
        message=str(getattr(raw, "message", "")),
    )


def solve_form_relaxation(
    form: StandardForm,
    basis: object | None = None,
    method: str = "highs",
    options: dict | None = None,
) -> SolveResult:
    """Solve the LP relaxation of ``form`` (integrality dropped).

    The relaxation's objective is a *dual bound* on the MILP: no integer
    solution can beat it.  An infeasible relaxation proves the MILP
    infeasible.  Used by the PM-seeded optimality certificate.

    ``basis`` is an opaque warm-start hint from a previous (structurally
    similar) relaxation, as carried by
    :class:`repro.fmssm.optimal.WarmChain`.  scipy's ``linprog`` exposes
    no basis API, so the default backend ignores the hint and returns
    ``basis=None`` — results are identical with or without it, which the
    incremental sweep's bit-identity guarantee relies on.  A backend
    that does crossover from a basis (e.g. ``highspy``, when installed)
    may plug in here; it must still return the same optimal objective.

    ``method``/``options`` pass straight through to ``linprog``; the
    batched block-diagonal path selects the dual simplex with presolve
    off (``method="highs-ds"``), which wins on its small reduced blocks
    while the default stays optimal for full-size single solves.
    """
    chaos.check("highs.relax")
    del basis  # no basis API in scipy's linprog; accepted for interface parity
    start = time.perf_counter()
    raw = optimize.linprog(
        c=form.c,
        A_ub=form.a_ub if form.a_ub.shape[0] else None,
        b_ub=form.b_ub if form.a_ub.shape[0] else None,
        A_eq=form.a_eq if form.a_eq.shape[0] else None,
        b_eq=form.b_eq if form.a_eq.shape[0] else None,
        bounds=np.column_stack([form.lb, form.ub]),
        method=method,
        options=options,
    )
    elapsed = time.perf_counter() - start
    if raw.status == 2:
        return SolveResult(
            status=SolveStatus.INFEASIBLE, solver="highs-lp", wall_time_s=elapsed
        )
    if raw.status == 3:
        return SolveResult(
            status=SolveStatus.UNBOUNDED, solver="highs-lp", wall_time_s=elapsed
        )
    if not raw.success:
        return SolveResult(
            status=SolveStatus.ERROR,
            solver="highs-lp",
            wall_time_s=elapsed,
            message=str(getattr(raw, "message", "")),
        )
    return SolveResult(
        status=SolveStatus.OPTIMAL,
        objective=form.objective_value(float(raw.fun)),
        x=np.asarray(raw.x),
        solver="highs-lp",
        wall_time_s=elapsed,
    )


def solve_with_highs(
    model: Model,
    time_limit_s: float | None = None,
    mip_rel_gap: float = 0.0,
) -> SolveResult:
    """Solve ``model`` with HiGHS via :func:`scipy.optimize.milp`.

    Parameters
    ----------
    model:
        The model to solve (LP or MILP).
    time_limit_s:
        Optional wall-clock limit.  If hit with an incumbent, the result
        status is :attr:`SolveStatus.FEASIBLE`; without one,
        :attr:`SolveStatus.TIMEOUT`.
    mip_rel_gap:
        Relative optimality gap at which HiGHS may stop early.
    """
    return solve_form_with_highs(
        to_standard_form(model), time_limit_s=time_limit_s, mip_rel_gap=mip_rel_gap
    )
