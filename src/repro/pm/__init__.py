"""The ProgrammabilityMedic heuristic (the paper's Algorithm 1)."""

from repro.pm.algorithm import ProgrammabilityMedic, solve_pm

__all__ = ["ProgrammabilityMedic", "solve_pm"]
