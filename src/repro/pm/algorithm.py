"""ProgrammabilityMedic — the paper's Algorithm 1.

The heuristic runs in two phases:

Phase 1 (lines 2–40) — *balanced recovery*.  Repeatedly pick the untested
offline switch with the most flows sitting at the current least
programmability level ``sigma`` (lines 5–15), map it to the nearest
active controller with room for the whole switch — or, failing that, the
controller with the most spare resource (lines 17–28) — and flip flows at
or below ``sigma`` into SDN mode there while the controller has budget
(lines 31–36).  When every switch has been tested, reset the test set,
advance ``sigma`` to the new least programmability and repeat, up to
TOTAL_ITERATIONS rounds (each flow's programmability can rise once per
offline switch on its path, so more rounds cannot help).

Phase 2 (lines 42–50) — *resource saturation*.  Scan the remaining
programmable pairs on mapped switches and flip them to SDN mode while
their controller has spare budget, maximizing total programmability.

Faithfulness notes (documented deviations from the pseudo-code):

* Lines 20–24 lack a ``break``, which as written would select the
  *farthest* capable controller; the surrounding text says controllers
  are tested "following the ascending order of the propagation delay",
  so we stop at the first (nearest) capable controller.
* When no untested switch has any flow at level ``sigma`` the pseudo-code
  leaves ``i0 = NULL`` and would dereference it; we treat that as "this
  pass is exhausted" and advance to the next round.
* The pseudo-code never enforces the delay bound (Eq. 14) — PM keeps
  delay low only through its nearest-controller preference, and the
  paper's own Fig. 5(f) discussion confirms PM's total delay may exceed
  G (Optimal "can be only limited to G" while PM beats it on overhead in
  just 8 of 15 cases).  We therefore default to ``enforce_delay=False``;
  the strict variant (skip activations that would exceed G) is available
  for the ablation benchmark as "PM-strict".
"""

from __future__ import annotations

import time

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.types import ControllerId, FlowId, NodeId

__all__ = ["ProgrammabilityMedic", "solve_pm"]


class ProgrammabilityMedic:
    """Stateful runner for Algorithm 1.

    Parameters
    ----------
    instance:
        Ground FMSSM data.
    phase2_order:
        ``"paper"`` scans pairs in sorted (switch, flow) order, as the
        pseudo-code does; ``"greedy"`` scans by decreasing ``p̄`` so the
        leftover budget buys the most total programmability (used by the
        ablation benchmark).
    enforce_delay:
        Skip activations that would exceed the ideal delay ``G``
        (Eq. 14).  Off by default, matching the paper's pseudo-code (see
        module notes); the strict variant is the "PM-strict" ablation.
    """

    def __init__(
        self,
        instance: FMSSMInstance,
        phase2_order: str = "paper",
        enforce_delay: bool = False,
    ) -> None:
        if phase2_order not in ("paper", "greedy"):
            raise ValueError(f"phase2_order must be 'paper' or 'greedy': {phase2_order!r}")
        self._instance = instance
        self._phase2_order = phase2_order
        self._enforce_delay = enforce_delay
        # Mutable run state.
        self._mapping: dict[NodeId, ControllerId] = {}
        self._sdn_pairs: set[tuple[NodeId, FlowId]] = set()
        self._available: dict[ControllerId, int] = {}
        self._h: dict[FlowId, int] = {}
        self._total_delay_ms: float = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> RecoverySolution:
        """Execute Algorithm 1 and return the recovery solution."""
        start = time.perf_counter()
        instance = self._instance
        self._mapping = {}
        self._sdn_pairs = set()
        self._available = dict(instance.spare)
        self._h = {flow_id: 0 for flow_id in instance.flows}
        self._total_delay_ms = 0.0

        self._phase1()
        self._phase2()

        return RecoverySolution(
            algorithm="pm",
            mapping=dict(self._mapping),
            sdn_pairs=set(self._sdn_pairs),
            solve_time_s=time.perf_counter() - start,
            feasible=True,
            meta={
                "phase2_order": self._phase2_order,
                "total_iterations": instance.total_iterations,
            },
        )

    # ------------------------------------------------------------------
    # Phase 1: balanced recovery (lines 2-40)
    # ------------------------------------------------------------------
    def _phase1(self) -> None:
        instance = self._instance
        recoverable = set(instance.recoverable_flows)
        untested: list[NodeId] = list(instance.switches)
        sigma = 0
        test_count = 0

        while test_count < instance.total_iterations:
            switch = self._select_switch(untested, sigma)
            if switch is None:
                # No untested switch helps any least-level flow: this pass
                # is exhausted (pseudo-code leaves i0 = NULL here).
                untested = []
            else:
                controller = self._map_switch(switch)
                untested.remove(switch)
                self._recover_at(switch, controller, sigma)
            if not untested:
                untested = list(instance.switches)
                test_count += 1
                if recoverable:
                    sigma = min(self._h[f] for f in recoverable)

    def _select_switch(self, untested: list[NodeId], sigma: int) -> NodeId | None:
        """Lines 5-15: switch with the most least-programmability flows.

        Ties break toward the lower switch id (the pseudo-code's strict
        ``>`` keeps the first maximum in iteration order; we iterate
        switches sorted).
        """
        best_switch: NodeId | None = None
        best_count = 0
        for switch in sorted(untested):
            count = sum(
                1
                for flow_id in self._instance.pairs_at[switch]
                if self._h[flow_id] == sigma
            )
            if count > best_count:
                best_count = count
                best_switch = switch
        return best_switch

    def _map_switch(self, switch: NodeId) -> ControllerId:
        """Lines 17-28: reuse an existing mapping or pick a controller."""
        if switch in self._mapping:
            return self._mapping[switch]
        instance = self._instance
        gamma = instance.gamma[switch]
        ordered = sorted(
            instance.controllers,
            key=lambda c: (instance.delay[(switch, c)], c),
        )
        chosen: ControllerId | None = None
        for controller in ordered:
            if self._available[controller] >= gamma:
                chosen = controller
                break  # nearest capable controller (see module notes)
        if chosen is None:
            # Line 26: fall back to the controller with the most spare
            # resource; ties toward lower id.
            chosen = max(
                instance.controllers,
                key=lambda c: (self._available[c], -c),
            )
        self._mapping[switch] = chosen
        return chosen

    def _recover_at(self, switch: NodeId, controller: ControllerId, sigma: int) -> None:
        """Lines 31-36: flip least-level flows to SDN mode at ``switch``."""
        instance = self._instance
        for flow_id in instance.pairs_at[switch]:
            if self._h[flow_id] > sigma:
                continue
            if (switch, flow_id) in self._sdn_pairs:
                continue
            if self._available[controller] <= 0:
                break
            if not self._charge_delay(switch, controller):
                continue
            self._available[controller] -= 1
            self._h[flow_id] += instance.pbar[(switch, flow_id)]
            self._sdn_pairs.add((switch, flow_id))

    # ------------------------------------------------------------------
    # Phase 2: resource saturation (lines 42-50)
    # ------------------------------------------------------------------
    def _phase2(self) -> None:
        instance = self._instance
        pairs = list(instance.pairs)
        if self._phase2_order == "greedy":
            pairs.sort(key=lambda p: (-instance.pbar[p], p))
        for switch, flow_id in pairs:
            if (switch, flow_id) in self._sdn_pairs:
                continue
            controller = self._mapping.get(switch)
            if controller is None:
                continue
            if self._available[controller] <= 0:
                continue
            if not self._charge_delay(switch, controller):
                continue
            self._available[controller] -= 1
            self._h[flow_id] += instance.pbar[(switch, flow_id)]
            self._sdn_pairs.add((switch, flow_id))

    # ------------------------------------------------------------------
    # Delay budget
    # ------------------------------------------------------------------
    def _charge_delay(self, switch: NodeId, controller: ControllerId) -> bool:
        """Reserve Eq.-(14) delay budget for one activation, if allowed."""
        delay = self._instance.delay[(switch, controller)]
        if (
            self._enforce_delay
            and self._total_delay_ms + delay > self._instance.ideal_delay_ms + 1e-9
        ):
            return False
        self._total_delay_ms += delay
        return True


def solve_pm(
    instance: FMSSMInstance,
    phase2_order: str = "paper",
    enforce_delay: bool = False,
) -> RecoverySolution:
    """Run the PM heuristic on ``instance`` (convenience wrapper)."""
    return ProgrammabilityMedic(
        instance, phase2_order=phase2_order, enforce_delay=enforce_delay
    ).run()
