"""ProgrammabilityMedic — the paper's Algorithm 1.

The heuristic runs in two phases:

Phase 1 (lines 2–40) — *balanced recovery*.  Repeatedly pick the untested
offline switch with the most flows sitting at the current least
programmability level ``sigma`` (lines 5–15), map it to the nearest
active controller with room for the whole switch — or, failing that, the
controller with the most spare resource (lines 17–28) — and flip flows at
or below ``sigma`` into SDN mode there while the controller has budget
(lines 31–36).  When every switch has been tested, reset the test set,
advance ``sigma`` to the new least programmability and repeat, up to
TOTAL_ITERATIONS rounds (each flow's programmability can rise once per
offline switch on its path, so more rounds cannot help).

Phase 2 (lines 42–50) — *resource saturation*.  Scan the remaining
programmable pairs on mapped switches and flip them to SDN mode while
their controller has spare budget, maximizing total programmability.

Faithfulness notes (documented deviations from the pseudo-code):

* Lines 20–24 lack a ``break``, which as written would select the
  *farthest* capable controller; the surrounding text says controllers
  are tested "following the ascending order of the propagation delay",
  so we stop at the first (nearest) capable controller.
* When no untested switch has any flow at level ``sigma`` the pseudo-code
  leaves ``i0 = NULL`` and would dereference it; we treat that as "this
  pass is exhausted" and advance to the next round.
* The pseudo-code never enforces the delay bound (Eq. 14) — PM keeps
  delay low only through its nearest-controller preference, and the
  paper's own Fig. 5(f) discussion confirms PM's total delay may exceed
  G (Optimal "can be only limited to G" while PM beats it on overhead in
  just 8 of 15 cases).  We therefore default to ``enforce_delay=False``;
  the strict variant (skip activations that would exceed G) is available
  for the ablation benchmark as "PM-strict".
"""

from __future__ import annotations

import time

import numpy as np

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.types import ControllerId, FlowId, NodeId

__all__ = ["ProgrammabilityMedic", "solve_pm", "grouped_capacity_select"]


def grouped_capacity_select(groups: np.ndarray, capacity: np.ndarray) -> np.ndarray:
    """Scan positions of the first ``capacity[g]`` members of each group.

    ``groups`` lists each candidate's group id in scan order.  Because a
    candidate only consumes its *own* group's budget, the sequential
    scan "take while the group's budget lasts" selects, per group,
    exactly its first ``capacity[g]`` candidates — which this computes
    with one stable sort instead of a per-candidate loop.  The returned
    positions index into the scan order, ascending, so downstream
    bookkeeping sees the same activation set the loop would produce.
    """
    if groups.size == 0:
        return groups
    order = np.argsort(groups, kind="stable")
    sorted_groups = groups[order]
    new_group = np.empty(len(order), dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_groups[1:], sorted_groups[:-1], out=new_group[1:])
    boundaries = np.flatnonzero(new_group)
    sizes = np.empty(len(boundaries), dtype=np.int64)
    sizes[:-1] = boundaries[1:] - boundaries[:-1]
    sizes[-1] = len(order) - boundaries[-1]
    ranks = np.arange(len(order)) - np.repeat(boundaries, sizes)
    keep = ranks < capacity[sorted_groups]
    return np.sort(order[keep])


class ProgrammabilityMedic:
    """Stateful runner for Algorithm 1.

    Parameters
    ----------
    instance:
        Ground FMSSM data.
    phase2_order:
        ``"paper"`` scans pairs in sorted (switch, flow) order, as the
        pseudo-code does; ``"greedy"`` scans by decreasing ``p̄`` so the
        leftover budget buys the most total programmability (used by the
        ablation benchmark).
    enforce_delay:
        Skip activations that would exceed the ideal delay ``G``
        (Eq. 14).  Off by default, matching the paper's pseudo-code (see
        module notes); the strict variant is the "PM-strict" ablation.
    phase2:
        Run phase 2 (resource saturation).  ``False`` stops after the
        balanced-recovery phase — the paper's design-consideration-3
        ablation (least programmability unchanged, total drops).
    """

    def __init__(
        self,
        instance: FMSSMInstance,
        phase2_order: str = "paper",
        enforce_delay: bool = False,
        phase2: bool = True,
    ) -> None:
        if phase2_order not in ("paper", "greedy"):
            raise ValueError(f"phase2_order must be 'paper' or 'greedy': {phase2_order!r}")
        self._instance = instance
        self._phase2_order = phase2_order
        self._enforce_delay = enforce_delay
        self._phase2_enabled = phase2
        # Delay-ordered controller lists, hoisted out of _map_switch: the
        # instance is immutable, so the per-switch ascending-delay order
        # never changes between picks (or runs).
        self._controllers_by_delay: dict[NodeId, tuple[ControllerId, ...]] = {
            switch: tuple(
                sorted(
                    instance.controllers,
                    key=lambda c: (instance.delay[(switch, c)], c),
                )
            )
            for switch in instance.switches
        }
        # Mutable run state.
        self._mapping: dict[NodeId, ControllerId] = {}
        self._sdn_pairs: set[tuple[NodeId, FlowId]] = set()
        self._available: dict[ControllerId, int] = {}
        self._h: dict[FlowId, int] = {}
        #: Per-switch histogram of its pair-flows' current levels, kept in
        #: sync with ``_h`` so _select_switch reads counts in O(1) per
        #: switch instead of recounting all pairs on every pick.
        self._level_count: dict[NodeId, dict[int, int]] = {}
        self._total_delay_ms: float = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> RecoverySolution:
        """Execute Algorithm 1 and return the recovery solution."""
        start = time.perf_counter()
        instance = self._instance
        self._mapping = {}
        self._sdn_pairs = set()
        self._available = dict(instance.spare)
        self._h = {flow_id: 0 for flow_id in instance.flows}
        self._level_count = {
            switch: {0: len(flow_ids)} if flow_ids else {}
            for switch, flow_ids in instance.pairs_at.items()
        }
        self._total_delay_ms = 0.0

        self._phase1()
        if self._phase2_enabled:
            self._phase2()

        meta: dict[str, object] = {
            "phase2_order": self._phase2_order,
            "total_iterations": instance.total_iterations,
        }
        if not self._phase2_enabled:
            meta["phase2"] = False
        return RecoverySolution(
            algorithm="pm",
            mapping=dict(self._mapping),
            sdn_pairs=set(self._sdn_pairs),
            solve_time_s=time.perf_counter() - start,
            feasible=True,
            meta=meta,
        )

    # ------------------------------------------------------------------
    # Phase 1: balanced recovery (lines 2-40)
    # ------------------------------------------------------------------
    def _phase1(self) -> None:
        instance = self._instance
        recoverable = set(instance.recoverable_flows)
        untested: list[NodeId] = list(instance.switches)
        sigma = 0
        test_count = 0
        total_iterations = instance.total_iterations

        while test_count < total_iterations:
            switch = self._select_switch(untested, sigma)
            if switch is None:
                # No untested switch helps any least-level flow: this pass
                # is exhausted (pseudo-code leaves i0 = NULL here).
                untested = []
            else:
                controller = self._map_switch(switch)
                untested.remove(switch)
                self._recover_at(switch, controller, sigma)
            if not untested:
                untested = list(instance.switches)
                test_count += 1
                if recoverable:
                    sigma = min(self._h[f] for f in recoverable)

    def _select_switch(self, untested: list[NodeId], sigma: int) -> NodeId | None:
        """Lines 5-15: switch with the most least-programmability flows.

        Ties break toward the lower switch id (the pseudo-code's strict
        ``>`` keeps the first maximum in iteration order; we iterate
        switches sorted).  Counts come from the incrementally maintained
        per-switch level histogram — O(1) per switch versus rescanning
        every pair on every pick.
        """
        best_switch: NodeId | None = None
        best_count = 0
        level_count = self._level_count
        for switch in sorted(untested):
            count = level_count[switch].get(sigma, 0)
            if count > best_count:
                best_count = count
                best_switch = switch
        return best_switch


    def _map_switch(self, switch: NodeId) -> ControllerId:
        """Lines 17-28: reuse an existing mapping or pick a controller."""
        if switch in self._mapping:
            return self._mapping[switch]
        instance = self._instance
        gamma = instance.gamma[switch]
        chosen: ControllerId | None = None
        for controller in self._controllers_by_delay[switch]:
            if self._available[controller] >= gamma:
                chosen = controller
                break  # nearest capable controller (see module notes)
        if chosen is None:
            # Line 26: fall back to the controller with the most spare
            # resource; ties toward lower id.
            chosen = max(
                instance.controllers,
                key=lambda c: (self._available[c], -c),
            )
        self._mapping[switch] = chosen
        return chosen

    def _recover_at(self, switch: NodeId, controller: ControllerId, sigma: int) -> None:
        """Lines 31-36: flip least-level flows to SDN mode at ``switch``.

        This is the per-activation hot loop, so state lives in locals and
        the delay charge / level-bucket updates are inlined.  Every
        recovery rebuckets the flow at each switch it pairs with, keeping
        ``_level_count`` consistent with ``_h`` for ``_select_switch``.
        """
        instance = self._instance
        h = self._h
        sdn_pairs = self._sdn_pairs
        pbar = instance.pbar
        pairs_of = instance.pairs_of
        level_count = self._level_count
        enforce = self._enforce_delay
        delay_sc = instance.delay[(switch, controller)]
        budget = instance.ideal_delay_ms + 1e-9
        total_delay = self._total_delay_ms
        avail = self._available[controller]
        for flow_id in instance.pairs_at[switch]:
            old = h[flow_id]
            if old > sigma:
                continue
            if (switch, flow_id) in sdn_pairs:
                continue
            if avail <= 0:
                break
            if enforce and total_delay + delay_sc > budget:
                continue
            total_delay += delay_sc
            avail -= 1
            new = old + pbar[(switch, flow_id)]
            h[flow_id] = new
            for paired_switch in pairs_of[flow_id]:
                buckets = level_count[paired_switch]
                remaining = buckets[old] - 1
                if remaining:
                    buckets[old] = remaining
                else:
                    del buckets[old]
                buckets[new] = buckets.get(new, 0) + 1
            sdn_pairs.add((switch, flow_id))
        self._available[controller] = avail
        self._total_delay_ms = total_delay

    # ------------------------------------------------------------------
    # Phase 2: resource saturation (lines 42-50)
    # ------------------------------------------------------------------
    def _phase2(self) -> None:
        """Scan leftover pairs and spend any remaining controller budget.

        ``_select_switch`` never runs after phase 1, so the level buckets
        are not maintained here — only ``_h`` (the per-flow
        programmability the solution reports) advances.  Without the
        delay bound (the default) the scan is a pure capacity-grouped
        selection and runs through the vectorized kernel; the strict
        variant keeps the sequential loop, whose cumulative delay budget
        is order-dependent across controllers.
        """
        if not self._enforce_delay and self._instance.pairs:
            self._phase2_vectorized()
            return
        instance = self._instance
        pairs = list(instance.pairs)
        if self._phase2_order == "greedy":
            pairs.sort(key=lambda p: (-instance.pbar[p], p))
        h = self._h
        sdn_pairs = self._sdn_pairs
        available = self._available
        mapping = self._mapping
        pbar = instance.pbar
        delay = instance.delay
        enforce = self._enforce_delay
        budget = instance.ideal_delay_ms + 1e-9
        total_delay = self._total_delay_ms
        for pair in pairs:
            if pair in sdn_pairs:
                continue
            switch, flow_id = pair
            controller = mapping.get(switch)
            if controller is None:
                continue
            if available[controller] <= 0:
                continue
            pair_delay = delay[(switch, controller)]
            if enforce and total_delay + pair_delay > budget:
                continue
            total_delay += pair_delay
            available[controller] -= 1
            h[flow_id] += pbar[pair]
            sdn_pairs.add(pair)
        self._total_delay_ms = total_delay

    def _phase2_vectorized(self) -> None:
        """The saturation scan as one grouped-capacity selection.

        Bit-identical to the sequential ``_phase2`` loop (asserted by
        the oracle in ``tests/test_pm_rework_equivalence.py``): the loop
        activates, per controller, the first ``available`` candidate
        pairs in scan order, which is exactly what
        :func:`grouped_capacity_select` computes — without the per-pair
        ``pbar``/``delay``/``mapping`` dict lookups over the (mostly
        skipped) full pair population.
        """
        instance = self._instance
        arrays = instance.pair_arrays()
        pairs = instance.pairs
        n_pairs = len(pairs)
        if self._phase2_order == "greedy":
            # Stable sort on -pbar: ties keep ascending pair order, the
            # same order the tuple sort key produces.
            order = np.argsort(-arrays.pbar, kind="stable")
        else:
            order = np.arange(n_pairs)

        controllers = instance.controllers
        controller_pos = {c: i for i, c in enumerate(controllers)}
        ctrl_of_switch = np.full(len(instance.switches), -1, dtype=np.int64)
        for switch, controller in self._mapping.items():
            ctrl_of_switch[arrays.switch_pos[switch]] = controller_pos[controller]
        ctrl = ctrl_of_switch[arrays.switch_code]

        already = np.zeros(n_pairs, dtype=bool)
        pair_index = arrays.pair_index
        for pair in self._sdn_pairs:
            k = pair_index.get(pair)
            if k is not None:
                already[k] = True

        scan = order[(~already[order]) & (ctrl[order] >= 0)]
        if scan.size == 0:
            return
        capacity = np.fromiter(
            (self._available[c] for c in controllers),
            dtype=np.int64,
            count=len(controllers),
        )
        chosen = scan[grouped_capacity_select(ctrl[scan], capacity)]
        if chosen.size == 0:
            return

        h = self._h
        sdn_pairs = self._sdn_pairs
        available = self._available
        mapping = self._mapping
        delay = instance.delay
        total_delay = self._total_delay_ms
        gains = arrays.pbar[chosen].tolist()
        for k, gain in zip(chosen.tolist(), gains):
            pair = pairs[k]
            switch, flow_id = pair
            controller = mapping[switch]
            total_delay += delay[(switch, controller)]
            available[controller] -= 1
            h[flow_id] += gain
            sdn_pairs.add(pair)
        self._total_delay_ms = total_delay


def solve_pm(
    instance: FMSSMInstance,
    phase2_order: str = "paper",
    enforce_delay: bool = False,
    kernel: str | None = None,
    phase2: bool = True,
) -> RecoverySolution:
    """Run the PM heuristic on ``instance`` (convenience wrapper).

    ``kernel`` selects the implementation: ``"array"`` (the default, see
    :func:`repro.perf.kernels.solve_pm_array`) or ``"dict"`` — this
    class, kept as the pseudo-code-shaped equivalence reference.  Both
    produce bit-identical solutions (``tests/test_perf_kernels.py``).
    ``phase2=False`` stops after balanced recovery (the phase-2
    ablation), on either kernel.
    """
    from repro.perf.kernels import resolve_kernel

    if resolve_kernel(kernel) == "array":
        from repro.perf.kernels import solve_pm_array

        return solve_pm_array(
            instance,
            phase2_order=phase2_order,
            enforce_delay=enforce_delay,
            phase2=phase2,
        )
    return ProgrammabilityMedic(
        instance,
        phase2_order=phase2_order,
        enforce_delay=enforce_delay,
        phase2=phase2,
    ).run()
