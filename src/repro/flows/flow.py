"""The :class:`Flow` value object.

A flow is an origin-destination pair with a concrete forwarding path.  The
paper's workload generates "a traffic flow [for] any two nodes ... forwarded
on the shortest path" (Section VI-A); a flow is identified by its ordered
``(src, dst)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import FlowError
from repro.types import FlowId, NodeId, Path

__all__ = ["Flow"]


@dataclass(frozen=True)
class Flow:
    """A unidirectional traffic flow with its forwarding path.

    Attributes
    ----------
    src, dst:
        Endpoint node ids; must differ.
    path:
        The forwarding path as a node tuple starting at ``src`` and ending
        at ``dst`` with no repeated node.
    demand:
        Traffic volume (arbitrary units); the recovery problem does not
        consume it, but workload models and ablations do.
    """

    src: NodeId
    dst: NodeId
    path: Path
    demand: float = field(default=1.0, compare=False)

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise FlowError(f"flow endpoints must differ: {self.src!r}")
        path = tuple(self.path)
        object.__setattr__(self, "path", path)
        if len(path) < 2:
            raise FlowError(f"flow path must have at least 2 nodes: {path!r}")
        if path[0] != self.src or path[-1] != self.dst:
            raise FlowError(
                f"path {path!r} does not run from {self.src!r} to {self.dst!r}"
            )
        if len(set(path)) != len(path):
            raise FlowError(f"flow path revisits a node: {path!r}")
        if self.demand < 0:
            raise FlowError(f"flow demand must be non-negative: {self.demand!r}")

    @property
    def flow_id(self) -> FlowId:
        """The ``(src, dst)`` pair identifying this flow."""
        return (self.src, self.dst)

    @property
    def hop_count(self) -> int:
        """Number of links on the path."""
        return len(self.path) - 1

    @property
    def transit_switches(self) -> Path:
        """Switches the flow traverses where rerouting decisions happen.

        Every switch on the path except the destination: the source and
        intermediate switches each forward the flow to a next hop, while
        the destination only terminates it.
        """
        return self.path[:-1]

    def traverses(self, node: NodeId) -> bool:
        """Whether the flow's path visits ``node``."""
        return node in self.path

    def next_hop(self, node: NodeId) -> NodeId:
        """Successor of ``node`` on the path.

        Raises :class:`FlowError` when ``node`` is not a transit switch.
        """
        try:
            idx = self.path.index(node)
        except ValueError:
            raise FlowError(f"flow {self.flow_id} does not traverse {node!r}") from None
        if idx == len(self.path) - 1:
            raise FlowError(
                f"node {node!r} is the destination of flow {self.flow_id}; no next hop"
            )
        return self.path[idx + 1]

    def __str__(self) -> str:
        arrow = "->".join(str(n) for n in self.path)
        return f"Flow({self.src}->{self.dst}: {arrow})"
