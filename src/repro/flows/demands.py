"""Workload (demand) generation: which flows exist and on which paths.

The paper's default workload is *all-pairs*: one flow per ordered node pair,
routed on the shortest path (Section VI-A).  We also provide a gravity
model and random-pairs sampling for ablations and scalability studies.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

import networkx as nx

from repro.exceptions import FlowError, RoutingError
from repro.flows.flow import Flow
from repro.topology.graph import Topology
from repro.types import NodeId

__all__ = [
    "shortest_path",
    "all_pairs_flows",
    "random_pairs_flows",
    "gravity_demands",
    "flows_from_pairs",
]

_WEIGHTS = {"delay": "delay_ms", "distance": "distance_m", "hops": None}


def _weight_attr(weight: str) -> str | None:
    try:
        return _WEIGHTS[weight]
    except KeyError:
        raise ValueError(
            f"weight must be one of {sorted(_WEIGHTS)}: {weight!r}"
        ) from None


def shortest_path(
    topology: Topology,
    src: NodeId,
    dst: NodeId,
    weight: str = "delay",
) -> tuple[NodeId, ...]:
    """Deterministic shortest path from ``src`` to ``dst``.

    ``weight`` selects the metric: ``"delay"`` (propagation delay,
    default), ``"distance"`` (link length), or ``"hops"``.  Ties are broken
    deterministically by networkx's traversal order, which is fixed for a
    given topology construction order.
    """
    if src not in topology or dst not in topology:
        raise RoutingError(f"unknown endpoint: {src!r} or {dst!r}")
    try:
        path = nx.shortest_path(
            topology.graph, src, dst, weight=_weight_attr(weight)
        )
    except nx.NetworkXNoPath:  # pragma: no cover - topologies are connected
        raise RoutingError(f"no path from {src!r} to {dst!r}") from None
    return tuple(path)


def all_pairs_flows(
    topology: Topology,
    weight: str = "delay",
    demand: float = 1.0,
) -> list[Flow]:
    """One flow per ordered node pair on its shortest path.

    This is the paper's workload: for the 25-node ATT topology it yields
    ``25 * 24 = 600`` flows.
    """
    flows = []
    attr = _weight_attr(weight)
    paths = dict(nx.all_pairs_dijkstra_path(topology.graph, weight=attr or 1))
    for src in topology.nodes:
        for dst in topology.nodes:
            if src == dst:
                continue
            flows.append(Flow(src, dst, tuple(paths[src][dst]), demand=demand))
    return flows


def random_pairs_flows(
    topology: Topology,
    n_flows: int,
    weight: str = "delay",
    seed: int = 0,
    demand: float = 1.0,
) -> list[Flow]:
    """Sample ``n_flows`` distinct ordered pairs uniformly at random."""
    nodes = topology.nodes
    max_pairs = len(nodes) * (len(nodes) - 1)
    if not (0 < n_flows <= max_pairs):
        raise FlowError(
            f"n_flows must be in [1, {max_pairs}] for {len(nodes)} nodes: {n_flows!r}"
        )
    rng = random.Random(seed)
    all_pairs = [(s, d) for s in nodes for d in nodes if s != d]
    pairs = rng.sample(all_pairs, n_flows)
    return flows_from_pairs(topology, pairs, weight=weight, demand=demand)


def gravity_demands(
    topology: Topology,
    total_demand: float = 1000.0,
    weight: str = "delay",
    population: dict[NodeId, float] | None = None,
) -> list[Flow]:
    """All-pairs flows with gravity-model demands.

    Demand between ``(s, d)`` is proportional to ``m_s * m_d`` where node
    mass ``m`` defaults to ``degree + 1`` — a standard synthetic traffic
    matrix when real populations are unavailable.
    """
    if total_demand <= 0:
        raise FlowError(f"total_demand must be positive: {total_demand!r}")
    mass = population or {n: topology.degree(n) + 1.0 for n in topology.nodes}
    for node in topology.nodes:
        if mass.get(node, 0) <= 0:
            raise FlowError(f"node {node!r} needs positive mass, got {mass.get(node)!r}")
    pairs = [(s, d) for s in topology.nodes for d in topology.nodes if s != d]
    weights = [mass[s] * mass[d] for s, d in pairs]
    scale = total_demand / sum(weights)
    flows = []
    for (src, dst), w in zip(pairs, weights):
        path = shortest_path(topology, src, dst, weight=weight)
        flows.append(Flow(src, dst, path, demand=w * scale))
    return flows


def flows_from_pairs(
    topology: Topology,
    pairs: Iterable[tuple[NodeId, NodeId]] | Sequence[tuple[NodeId, NodeId]],
    weight: str = "delay",
    demand: float = 1.0,
) -> list[Flow]:
    """Build shortest-path flows for explicit ``(src, dst)`` pairs."""
    flows = []
    seen: set[tuple[NodeId, NodeId]] = set()
    for src, dst in pairs:
        if (src, dst) in seen:
            raise FlowError(f"duplicate flow pair {(src, dst)!r}")
        seen.add((src, dst))
        flows.append(Flow(src, dst, shortest_path(topology, src, dst, weight=weight), demand=demand))
    return flows
