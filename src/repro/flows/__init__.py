"""Flow model and workload generation."""

from repro.flows.demands import (
    all_pairs_flows,
    flows_from_pairs,
    gravity_demands,
    random_pairs_flows,
    shortest_path,
)
from repro.flows.flow import Flow
from repro.flows.paths import (
    flows_by_id,
    flows_through,
    path_delay_ms,
    switch_flow_counts,
    validate_path,
)

__all__ = [
    "Flow",
    "shortest_path",
    "all_pairs_flows",
    "random_pairs_flows",
    "gravity_demands",
    "flows_from_pairs",
    "validate_path",
    "path_delay_ms",
    "flows_by_id",
    "flows_through",
    "switch_flow_counts",
]
