"""Path and flow-set utilities shared by routing and metrics code."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.exceptions import FlowError, TopologyError
from repro.flows.flow import Flow
from repro.topology.graph import Topology
from repro.types import FlowId, NodeId, Path

__all__ = [
    "validate_path",
    "path_delay_ms",
    "flows_by_id",
    "flows_through",
    "switch_flow_counts",
]


def validate_path(topology: Topology, path: Sequence[NodeId]) -> None:
    """Check that ``path`` is a simple path over existing links.

    Raises :class:`TopologyError` on a missing link or unknown node, and
    :class:`FlowError` on a repeated node or a too-short path.
    """
    if len(path) < 2:
        raise FlowError(f"path must have at least 2 nodes: {tuple(path)!r}")
    if len(set(path)) != len(path):
        raise FlowError(f"path revisits a node: {tuple(path)!r}")
    for node in path:
        if node not in topology:
            raise TopologyError(f"unknown node {node!r} in path")
    for u, v in zip(path, path[1:]):
        if not topology.has_edge(u, v):
            raise TopologyError(f"path uses missing link ({u!r}, {v!r})")


def path_delay_ms(topology: Topology, path: Sequence[NodeId]) -> float:
    """Sum of link propagation delays along ``path``, in milliseconds."""
    validate_path(topology, path)
    return sum(topology.link_delay_ms(u, v) for u, v in zip(path, path[1:]))


def flows_by_id(flows: Iterable[Flow]) -> dict[FlowId, Flow]:
    """Index flows by their ``(src, dst)`` id, rejecting duplicates."""
    index: dict[FlowId, Flow] = {}
    for flow in flows:
        if flow.flow_id in index:
            raise FlowError(f"duplicate flow id {flow.flow_id!r}")
        index[flow.flow_id] = flow
    return index


def flows_through(
    flows: Iterable[Flow], node: NodeId, include_destination: bool = True
) -> list[Flow]:
    """Flows whose path visits ``node``.

    With ``include_destination=True`` (default) a flow counts at every
    switch on its path, including the one that terminates it — matching
    the paper's "number of flows in switch" (Table III), where a
    destination switch still holds state for the flow.  With ``False``
    only transit switches count (where a forwarding decision exists).
    """
    if include_destination:
        return [f for f in flows if node in f.path]
    return [f for f in flows if node in f.transit_switches]


def switch_flow_counts(
    flows: Iterable[Flow], include_destination: bool = True
) -> Counter[NodeId]:
    """Per-switch flow counts — the paper's ``gamma_i``.

    For the ATT default workload (hop-count shortest paths, destinations
    included) this regenerates the "Number of flows" row of Table III in
    shape: total ≈ 2050 vs the paper's 2055, hub switch 13 far above the
    median, leaf switches at ≈ 48 vs the paper's 49.
    """
    counts: Counter[NodeId] = Counter()
    for flow in flows:
        counts.update(flow.path if include_destination else flow.transit_switches)
    return counts
