"""Sweep supervision: deadlines, poison quarantine, circuit breakers.

The PR 3 resilience stack survives faults that *announce* themselves — a
rung that raises, a pool that breaks, a payload that will not unpickle.
This module supervises the faults that do not:

Hung-task preemption
    Every submission unit (a task, chunk or chain segment) carries a
    deadline derived from the ladder's rung budgets times
    :attr:`SupervisorPolicy.deadline_multiplier`.  The supervised wait
    loop doubles as a parent-side watchdog: a unit still running past
    its deadline gets the pool hard-killed
    (:meth:`~repro.perf.executor.SweepExecutor.preempt`), its scenarios
    stamped with a ``preempted`` event, and the unfinished work requeued
    on the respawned pool.  The clock starts when the unit is *observed
    running*, so queued work never counts as hung.

Poison quarantine
    A :class:`RetryLedger` charges each preemption or pool crash to the
    scenarios of the failed unit.  A scenario charged more than
    :attr:`SupervisorPolicy.max_task_retries` times is **quarantined**:
    pulled out of the pool entirely and solved serially in the parent
    through the degradation ladder (terminal PM rung), where
    ``kill-worker``/``hang`` chaos cannot reach.  Each decision is
    surfaced as a structured :class:`QuarantineReport`.

Circuit breakers
    Classic closed → open → half-open :class:`CircuitBreaker`\\ s guard
    the exact-solver rungs (``sparse+warm``/``model``/``bnb``) and the
    shared-memory transport.  After ``breaker_threshold`` *consecutive*
    failures the breaker opens and the supervisor routes around the
    failing component — the ladder skips straight past the rung
    (:meth:`~repro.resilience.degradation.LadderPolicy.drop_rungs`),
    the transport falls back to pickle — instead of paying the timeout
    on every scenario.  After ``breaker_cooldown_s`` the breaker
    half-opens and one trial round decides whether it closes or re-opens.
    The clock is injected (:attr:`SweepSupervisor.clock`) so tests drive
    transitions deterministically.

The supervisor holds **no execution machinery** of its own: it is the
policy + bookkeeping object that :meth:`repro.perf.sweep._SweepRunner.
run_supervised` consults, and it persists across the sweeps of a
campaign so breaker state and retry ledgers span the whole run.  When no
fault ever fires, every hook returns its input unchanged and the
supervised sweep is byte-for-byte the unsupervised one.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.resilience.degradation import LadderPolicy

__all__ = [
    "BreakerOpenState",
    "CircuitBreaker",
    "SupervisorPolicy",
    "QuarantineReport",
    "RetryLedger",
    "SweepSupervisor",
]

#: Ladder rungs guarded by a circuit breaker.  The terminal ``pm`` rung
#: is deliberately absent: it is the component the others degrade *to*.
BREAKER_RUNGS = ("sparse+warm", "model", "bnb")

#: Breaker guarding the shared-memory fan-out transport.
TRANSPORT_BREAKER = "transport:shm"


class BreakerOpenState:
    """Names for the three breaker states (string enum, JSON-friendly)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One closed/open/half-open breaker with an injected clock.

    ``record_failure``/``record_success`` feed observations;
    ``allow_request`` answers "may the guarded component be tried right
    now?" — ``True`` while closed, ``False`` while open and cooling
    down, and ``True`` again once the cooldown elapses (the half-open
    trial).  A success in half-open closes the breaker; a failure
    re-opens it for another cooldown.  All transitions append to
    :attr:`events` for the audit trail.
    """

    def __init__(
        self,
        name: str,
        threshold: int = 3,
        cooldown_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        probe_batch: int = 1,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if probe_batch < 1:
            raise ValueError("probe_batch must be >= 1")
        self.name = name
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.probe_batch = probe_batch
        self.failures = 0  # consecutive failures while closed
        self.trips = 0  # times the breaker opened
        self._opened_at: float | None = None
        self._half_open = False
        self.events: list[dict[str, object]] = []

    @property
    def state(self) -> str:
        if self._half_open:
            return BreakerOpenState.HALF_OPEN
        if self._opened_at is not None:
            return BreakerOpenState.OPEN
        return BreakerOpenState.CLOSED

    def _transition(self, state: str, reason: str) -> None:
        self.events.append({
            "breaker": self.name,
            "state": state,
            "reason": reason,
            "at": self.clock(),
        })

    def allow_request(self) -> bool:
        """Whether the guarded component may be tried now (may half-open)."""
        if self._opened_at is None:
            return True
        if self._half_open:
            return True
        if self.clock() - self._opened_at >= self.cooldown_s:
            self._half_open = True
            self._transition(
                BreakerOpenState.HALF_OPEN,
                f"cooldown of {self.cooldown_s:g}s elapsed; trial allowed",
            )
            return True
        return False

    def probe_quota(self) -> int | None:
        """How many units may *probe* the guarded component right now.

        ``None`` while closed (no limit), ``0`` while open and still
        cooling down, and :attr:`probe_batch` once a trial is due (open
        past its cooldown, or already half-open).  Pure — unlike
        :meth:`allow_request` it never transitions state, so callers can
        size a probe batch before deciding to half-open the breaker.
        """
        if self._opened_at is None:
            return None
        if self._half_open or self.clock() - self._opened_at >= self.cooldown_s:
            return self.probe_batch
        return 0

    def record_failure(self, reason: str = "") -> None:
        """One failure of the guarded component."""
        if self._half_open or (
            self._opened_at is None and self.failures + 1 >= self.threshold
        ):
            self._half_open = False
            self._opened_at = self.clock()
            self.failures = 0
            self.trips += 1
            self._transition(
                BreakerOpenState.OPEN,
                reason or f"{self.threshold} consecutive failures",
            )
        elif self._opened_at is None:
            self.failures += 1

    def record_success(self) -> None:
        """One success of the guarded component (closes a half-open trial)."""
        self.failures = 0
        if self._half_open or self._opened_at is not None:
            self._half_open = False
            self._opened_at = None
            self._transition(BreakerOpenState.CLOSED, "trial succeeded")

    def to_dict(self) -> dict[str, object]:
        """JSON-safe snapshot for summaries and result meta."""
        return {
            "name": self.name,
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
            "events": list(self.events),
        }


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of one :class:`SweepSupervisor` (picklable, immutable).

    ``task_deadline_s`` overrides the derived per-task deadline; when
    ``None`` the deadline is ``deadline_multiplier`` times the ladder's
    total rung budget (time limits × attempts, plus backoffs), or times
    the sweep's ``optimal_time_limit_s`` for ladderless sweeps, floored
    at ``min_deadline_s``.  A submission unit of *k* tasks gets *k*
    times the per-task deadline, counted from the moment the unit is
    observed running.

    Observed rung latencies tighten the derivation adaptively: each
    accepted/demoted attempt feeds an EWMA (weight ``ewma_alpha``) per
    rung, and once a rung has an estimate it replaces that rung's static
    time limit in the budget — a 300 s configured limit on solves that
    finish in 2 s no longer inflates the watchdog to minutes.  Deadlines
    stay bounded: never below ``min_deadline_s``, never above
    ``max_deadline_s`` (when set), and an explicit ``task_deadline_s``
    still wins outright.
    """

    deadline_multiplier: float = 3.0
    min_deadline_s: float = 30.0
    task_deadline_s: float | None = None
    #: EWMA weight of the newest rung-latency observation.
    ewma_alpha: float = 0.2
    #: Hard upper bound on the derived deadline (``None`` = unbounded).
    max_deadline_s: float | None = None
    #: Submission units allowed through a half-open transport trial.
    transport_probe_batch: int = 2
    #: Times a scenario may be charged (preempt/crash) before quarantine.
    max_task_retries: int = 2
    #: Pool respawns one sweep may consume before degrading to serial.
    max_pool_restarts: int = 5
    #: Consecutive failures that open a circuit breaker.
    breaker_threshold: int = 3
    #: Seconds an open breaker waits before allowing a half-open trial.
    breaker_cooldown_s: float = 60.0
    #: Watchdog granularity: how often the wait loop re-checks deadlines.
    poll_interval_s: float = 0.2


@dataclass
class QuarantineReport:
    """One quarantine decision: which scenario, why, and how it resolved."""

    scenario: str
    algorithms: tuple[str, ...]
    charges: int
    cause: str  # "preempted" | "pool-crash" | "task-fault"
    resolution: str = "serial-ladder"

    def to_dict(self) -> dict[str, object]:
        """JSON-safe form (result meta, campaign summaries)."""
        return {
            "scenario": self.scenario,
            "algorithms": list(self.algorithms),
            "charges": self.charges,
            "cause": self.cause,
            "resolution": self.resolution,
        }


class RetryLedger:
    """Per-scenario charge counts plus per-sweep pool-restart budgets."""

    def __init__(self, max_task_retries: int) -> None:
        self.max_task_retries = max_task_retries
        self.charges: dict[str, int] = {}
        self.causes: dict[str, str] = {}

    def charge(self, scenario: str, cause: str) -> int:
        """Charge one failure to ``scenario``; returns its new count."""
        count = self.charges.get(scenario, 0) + 1
        self.charges[scenario] = count
        self.causes[scenario] = cause
        return count

    def over_budget(self, scenario: str) -> bool:
        """Whether ``scenario`` has exhausted its retry budget."""
        return self.charges.get(scenario, 0) > self.max_task_retries


class SweepSupervisor:
    """Supervision state shared by the sweeps of one run or campaign.

    Construct once, pass to :func:`~repro.perf.sweep.parallel_sweep`
    (``supervisor=``) or :func:`~repro.perf.executor.run_campaign`; the
    breakers, ledger and quarantine log accumulate across every sweep it
    supervises.  ``clock`` defaults to :func:`time.monotonic`; tests
    inject a fake for deterministic breaker transitions.
    """

    def __init__(
        self,
        policy: SupervisorPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or SupervisorPolicy()
        self.clock = clock
        self.ledger = RetryLedger(self.policy.max_task_retries)
        self.quarantines: list[QuarantineReport] = []
        self.breakers: dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                name,
                threshold=self.policy.breaker_threshold,
                cooldown_s=self.policy.breaker_cooldown_s,
                clock=clock,
                probe_batch=(
                    self.policy.transport_probe_batch
                    if name == TRANSPORT_BREAKER
                    else 1
                ),
            )
            for name in (*(f"rung:{r}" for r in BREAKER_RUNGS), TRANSPORT_BREAKER)
        }
        #: EWMA of observed per-attempt latencies, keyed by rung name
        #: (``"task"`` for ladderless sweeps).
        self.latency_ewma: dict[str, float] = {}
        self.stats: dict[str, int] = {
            "preemptions": 0,
            "pool_crashes": 0,
            "task_faults": 0,
            "quarantined": 0,
            "breaker_trips": 0,
            "supervised_sweeps": 0,
        }
        #: Flat audit log of supervisor decisions, in order.
        self.events: list[dict[str, object]] = []

    # -- deadlines -----------------------------------------------------
    def observe_latency(self, rung: str, seconds: float) -> None:
        """Feed one observed per-attempt latency into the rung's EWMA."""
        if seconds <= 0:
            return
        alpha = self.policy.ewma_alpha
        previous = self.latency_ewma.get(rung)
        if previous is None:
            self.latency_ewma[rung] = seconds
        else:
            self.latency_ewma[rung] = alpha * seconds + (1.0 - alpha) * previous

    def task_deadline_s(
        self, ladder: LadderPolicy | None, optimal_time_limit_s: float
    ) -> float:
        """The per-task deadline for one sweep's submissions.

        Rungs with an observed-latency EWMA use it in place of their
        static time limit, so the watchdog tightens to how long solves
        *actually* take; unobserved rungs keep the configured budget.
        The result is clamped to ``[min_deadline_s, max_deadline_s]``.
        """
        policy = self.policy
        if policy.task_deadline_s is not None:
            return policy.task_deadline_s
        if ladder is not None:
            budget = 0.0
            for rung in ladder.rungs:
                limit = self.latency_ewma.get(rung.name)
                if limit is None:
                    limit = rung.time_limit_s
                if limit is None:
                    limit = optimal_time_limit_s
                attempts = rung.retries + 1
                budget += limit * attempts
                if rung.backoff_s:
                    budget += sum(
                        rung.backoff_s * (2.0**a) for a in range(rung.retries)
                    )
        else:
            budget = self.latency_ewma.get("task", optimal_time_limit_s)
        deadline = max(policy.min_deadline_s, policy.deadline_multiplier * budget)
        if policy.max_deadline_s is not None:
            deadline = min(deadline, policy.max_deadline_s)
        return deadline

    # -- breakers ------------------------------------------------------
    def effective_ladder(self, ladder: LadderPolicy | None) -> LadderPolicy | None:
        """``ladder`` with open-breaker rungs skipped (identity when closed)."""
        if ladder is None:
            return None
        blocked = {
            rung
            for rung in BREAKER_RUNGS
            if not self.breakers[f"rung:{rung}"].allow_request()
        }
        if not blocked:
            return ladder
        return ladder.drop_rungs(blocked)

    def effective_transport(self, transport: str) -> str:
        """``transport`` with the shm route breaker applied."""
        if transport == "pickle":
            return transport
        if not self.breakers[TRANSPORT_BREAKER].allow_request():
            return "pickle"
        return transport

    def observe_report(self, report_dict: dict | None) -> None:
        """Feed one task's degradation trail into the rung breakers.

        A ``demote`` event on a guarded rung is a failure; an ``accept``
        is a success.  Called by the supervised runner for every stored
        task row, so "N consecutive failures across scenarios" is
        literal completion order.  Accept/demote/retry events also feed
        their ``elapsed_s`` into the per-rung latency EWMA behind
        :meth:`task_deadline_s`.
        """
        if not report_dict:
            return
        for event in report_dict.get("events", ()):
            rung = event.get("rung")
            action = event.get("action")
            if rung and action in ("accept", "demote", "retry"):
                self.observe_latency(str(rung), float(event.get("elapsed_s", 0.0)))
            breaker = self.breakers.get(f"rung:{rung}")
            if breaker is None:
                continue
            if action == "demote":
                before = breaker.trips
                breaker.record_failure(str(event.get("reason", "")))
                if breaker.trips > before:
                    self.stats["breaker_trips"] += 1
                    self.events.append({
                        "action": "breaker-open",
                        "breaker": breaker.name,
                        "reason": event.get("reason", ""),
                    })
            elif action == "accept":
                if breaker.state != BreakerOpenState.CLOSED:
                    self.events.append({
                        "action": "breaker-close",
                        "breaker": breaker.name,
                    })
                breaker.record_success()

    def transport_probe_quota(self) -> int | None:
        """How many submission units may ride shm this round (pure).

        ``None`` when the transport breaker is closed (no limit), ``0``
        while it is open and cooling down, and the policy's
        ``transport_probe_batch`` when a half-open trial is due — the
        supervised runner sends only that many units over shm and routes
        the rest through pickle, so one bad trial risks a bounded slice
        of the round instead of all of it.
        """
        return self.breakers[TRANSPORT_BREAKER].probe_quota()

    def observe_transport(self, ok: bool, reason: str = "") -> None:
        """Feed one shm-route round outcome into the transport breaker."""
        breaker = self.breakers[TRANSPORT_BREAKER]
        if ok:
            if breaker.state != BreakerOpenState.CLOSED:
                self.events.append({
                    "action": "breaker-close",
                    "breaker": breaker.name,
                })
            breaker.record_success()
        else:
            before = breaker.trips
            breaker.record_failure(reason)
            if breaker.trips > before:
                self.stats["breaker_trips"] += 1
                self.events.append({
                    "action": "breaker-open",
                    "breaker": breaker.name,
                    "reason": reason,
                })

    # -- quarantine ----------------------------------------------------
    def charge(self, scenarios: Iterable[str], cause: str) -> None:
        """Charge one failure of ``cause`` to every scenario named."""
        for name in scenarios:
            self.ledger.charge(name, cause)

    def quarantine_decisions(
        self, scenario_names: Sequence[str], algorithms: Sequence[str]
    ) -> list[QuarantineReport]:
        """Quarantine every over-budget scenario in ``scenario_names``.

        Returns the *new* reports (scenarios already quarantined are not
        re-reported) and appends them to :attr:`quarantines`.
        """
        seen = {report.scenario for report in self.quarantines}
        fresh = []
        for name in scenario_names:
            if name in seen or not self.ledger.over_budget(name):
                continue
            report = QuarantineReport(
                scenario=name,
                algorithms=tuple(algorithms),
                charges=self.ledger.charges[name],
                cause=self.ledger.causes.get(name, "unknown"),
            )
            self.quarantines.append(report)
            fresh.append(report)
            self.stats["quarantined"] += 1
            self.events.append({"action": "quarantine", **report.to_dict()})
        return fresh

    def is_quarantined(self, scenario: str) -> bool:
        """Whether ``scenario`` has already been quarantined."""
        return any(report.scenario == scenario for report in self.quarantines)

    # -- summary -------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """JSON-safe account of everything the supervisor did."""
        return {
            "stats": dict(self.stats),
            "quarantines": [report.to_dict() for report in self.quarantines],
            "breakers": {
                name: breaker.to_dict() for name, breaker in self.breakers.items()
            },
            "events": list(self.events),
        }
