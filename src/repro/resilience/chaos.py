"""Fault-injection harness for sweeps and solvers.

The failure paths of a resilient system are only trustworthy if they are
exercised; this module makes them first-class tested code.  A
:class:`ChaosPlan` names *sites* (injection points threaded through
:mod:`repro.perf.sweep`, :mod:`repro.lp.highs`,
:mod:`repro.lp.branch_and_bound` and :mod:`repro.fmssm.optimal`) and the
*faults* to fire there: raise a :class:`SolverTimeoutError` or
:class:`InfeasibleError` on the Nth call, kill a pool worker, corrupt a
pickled payload, or corrupt a solver's result vector into a subtly
infeasible point.

Instrumented sites
------------------
``sweep.task``
    Entry of a sweep task body (worker or serial).  Supports
    ``kill-worker`` (terminates the *worker process* only — a no-op in
    the parent, so the post-crash serial path survives) and the
    ``raise-*`` actions.
``sweep.payload``
    Transform point over the pickled :class:`SweepPlan` bytes
    (``corrupt-payload`` flips a byte, so workers die unpickling it).
``sweep.checkpoint``
    Fires after each checkpoint write — ``raise-error`` here simulates a
    sweep killed mid-flight for resume tests.
``optimal.solve``
    Entry of :func:`repro.fmssm.optimal.solve_optimal`.
``highs.solve`` / ``highs.relax`` / ``bnb.solve``
    Entry of the corresponding solver routines; ``highs.solve.x`` is the
    transform point over the HiGHS result vector (``corrupt-solution``
    activates every pair, which the independent validator must reject).
``batch.solve``
    The stacked block-diagonal LP call in
    :func:`repro.perf.batch.solve_optimal_batch` — a check before the
    stacked solve (``raise-*`` degrades only the batch's member
    scenarios, each falling back to the scenario-at-a-time route) and a
    transform over the stacked solution vector (``corrupt-solution``
    trips the per-slice feasibility guard, again degrading only the
    corrupted members).
``executor.decode_context``
    Fires in a warm worker right before it decodes a cache-cold context
    payload (:mod:`repro.perf.executor`) — a fault here simulates a
    worker that cannot attach to or unpickle the shipped context.
``executor.plan_build``
    Fires in a warm worker right before it assembles a cache-cold
    :class:`~repro.perf.sweep.SweepPlan` from the decoded layers.
``executor.respawn``
    Fires in the *parent* when a :class:`~repro.perf.executor.
    SweepExecutor` respawns a broken pool — ``raise-error`` here
    simulates a host that cannot fork replacement workers.

The ``hang`` action sleeps for ``Fault.seconds`` — long enough to trip a
supervisor deadline — and, like ``kill-worker``, only fires in worker
processes: the parent (and therefore the supervisor's quarantine path,
which runs poisoned scenarios serially) is immune by construction.

Counters are **per process** (a worker counts its own calls) and
deliberately simple: deterministic tests install a plan, run, and
uninstall via the :func:`inject` context manager.  When no plan is
installed every hook is a single ``is None`` check — the production hot
path pays nothing measurable.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.exceptions import ChaosError, InfeasibleError, SolverTimeoutError

__all__ = [
    "Fault",
    "ChaosPlan",
    "install",
    "uninstall",
    "active_plan",
    "reset_counters",
    "check",
    "transform",
    "inject",
]

#: Actions that raise at a check site.
_RAISE_ACTIONS = {
    "raise-timeout": lambda fault, n: SolverTimeoutError(
        f"chaos: injected timeout at {fault.site} call #{n}"
    ),
    "raise-infeasible": lambda fault, n: InfeasibleError(
        f"chaos: injected infeasibility at {fault.site} call #{n}"
    ),
    "raise-error": lambda fault, n: ChaosError(
        f"chaos: injected error at {fault.site} call #{n}"
    ),
}

#: Actions that rewrite a value at a transform site.
_TRANSFORM_ACTIONS = frozenset({"corrupt-payload", "corrupt-solution"})


@dataclass(frozen=True)
class Fault:
    """One fault: fire ``action`` at ``site`` on calls ``at_call ...``.

    ``count`` is how many consecutive calls (starting at ``at_call``,
    1-based, counted per process) the fault fires on; ``None`` means
    every call from ``at_call`` onward.  ``seconds`` is how long the
    ``hang`` action sleeps (ignored by every other action).
    """

    site: str
    action: str
    at_call: int = 1
    count: int | None = 1
    seconds: float = 30.0

    def __post_init__(self) -> None:
        known = set(_RAISE_ACTIONS) | _TRANSFORM_ACTIONS | {"kill-worker", "hang"}
        if self.action not in known:
            raise ValueError(f"unknown chaos action {self.action!r}")
        if self.at_call < 1:
            raise ValueError("at_call is 1-based")
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")

    def fires(self, call: int) -> bool:
        """Whether this fault fires on the (1-based) ``call``-th call."""
        if call < self.at_call:
            return False
        return self.count is None or call < self.at_call + self.count


@dataclass(frozen=True)
class ChaosPlan:
    """A picklable set of faults, shippable to pool workers."""

    faults: tuple[Fault, ...]

    def __init__(self, faults: tuple[Fault, ...] | list[Fault]) -> None:
        faults = tuple(faults)
        for fault in faults:
            if not isinstance(fault, Fault):
                raise TypeError(
                    f"ChaosPlan takes Fault objects, got {type(fault).__name__} "
                    f"(note: inject(*faults) takes faults, not a plan)"
                )
        object.__setattr__(self, "faults", faults)

    def at(self, site: str) -> tuple[Fault, ...]:
        """The plan's faults registered for ``site``."""
        return tuple(f for f in self.faults if f.site == site)


#: The installed plan (per process) and per-site call counters.
_ACTIVE: ChaosPlan | None = None
_CALLS: dict[str, int] = {}


def install(plan: ChaosPlan) -> None:
    """Install ``plan`` in this process and reset its counters."""
    global _ACTIVE
    _ACTIVE = plan
    _CALLS.clear()


def uninstall() -> None:
    """Remove any installed plan."""
    global _ACTIVE
    _ACTIVE = None
    _CALLS.clear()


def active_plan() -> ChaosPlan | None:
    """The currently installed plan, if any (shipped to sweep workers)."""
    return _ACTIVE


def reset_counters() -> None:
    """Zero the per-site call counters without uninstalling the plan."""
    _CALLS.clear()


def _in_worker_process() -> bool:
    """True in a multiprocessing child (kill-worker must spare the parent)."""
    import multiprocessing

    return multiprocessing.parent_process() is not None


def check(site: str) -> None:
    """Count a call at ``site`` and fire any matching raise/kill fault."""
    if _ACTIVE is None:
        return
    call = _CALLS.get(site, 0) + 1
    _CALLS[site] = call
    for fault in _ACTIVE.at(site):
        if not fault.fires(call):
            continue
        if fault.action == "kill-worker":
            if _in_worker_process():
                os._exit(17)
            continue  # parent processes survive their workers' chaos
        if fault.action == "hang":
            if _in_worker_process():
                import time

                time.sleep(fault.seconds)
            continue  # parents (and quarantine reruns) never hang
        maker = _RAISE_ACTIONS.get(fault.action)
        if maker is not None:
            raise maker(fault, call)


def transform(site: str, value):
    """Count a call at ``site`` and return ``value``, possibly corrupted."""
    if _ACTIVE is None:
        return value
    call = _CALLS.get(site, 0) + 1
    _CALLS[site] = call
    for fault in _ACTIVE.at(site):
        if not fault.fires(call):
            continue
        if fault.action == "corrupt-payload":
            value = _corrupt_bytes(value)
        elif fault.action == "corrupt-solution":
            value = _corrupt_vector(value)
    return value


def _corrupt_bytes(payload: bytes) -> bytes:
    """Flip the final byte of a pickled payload — the STOP opcode.

    Flipping a byte in the *middle* of a large payload usually lands
    inside a numpy array's raw buffer and unpickles fine (silently
    corrupted numbers instead of a broken pool).  The trailing STOP
    opcode makes every unpickle fail deterministically, whatever the
    payload size.
    """
    if not isinstance(payload, (bytes, bytearray)) or not payload:
        return payload
    corrupted = bytearray(payload)
    corrupted[-1] ^= 0xFF
    return bytes(corrupted)


def _corrupt_vector(x):
    """Make a solver vector subtly infeasible: activate everything.

    Every zero entry is raised to 1 (within bounds), which in the FMSSM
    form serves every programmable pair under every controller — the
    extracted solution then blows the capacity and/or delay budgets and
    the independent validator must reject it.
    """
    import numpy as np

    if x is None:
        return x
    corrupted = np.asarray(x, dtype=float).copy()
    corrupted[corrupted < 0.5] = 1.0
    return corrupted


@contextmanager
def inject(*faults: Fault) -> Iterator[ChaosPlan]:
    """Install a plan for the duration of a ``with`` block."""
    plan = ChaosPlan(faults)
    install(plan)
    try:
        yield plan
    finally:
        uninstall()
