"""Checkpoint/resume for failure sweeps and campaigns.

A long sweep killed at task 700 of 1000 should not redo the first 700
solves.  :class:`SweepCheckpoint` persists completed
:class:`~repro.experiments.runner.ScenarioResult`\\ s as JSON — in
deterministic scenario order, with floats serialized via ``repr`` so
they round-trip bit-exactly — and a resumed sweep restores them and runs
only the remainder.  Evaluations are *recomputed* from the restored
solutions (the evaluator is deterministic), so a resumed sweep's results
are indistinguishable from an uninterrupted run apart from wall clocks.

The file carries a fingerprint of the sweep's identity (scenario names,
algorithms, time limit, compile route) — resuming against a different
sweep raises :class:`CheckpointError` instead of silently mixing
results.  Writes are atomic (tmp file + ``os.replace``) so a crash
mid-write leaves the previous checkpoint intact.

:class:`CampaignJournal` scales the same guarantee to *campaigns* (many
sweeps over one context, :func:`~repro.perf.executor.run_campaign`)
with a crash-only write-ahead log: one fsynced JSON line per completed
sweep, appended and never rewritten while the campaign runs.  A killed
campaign resumes by replaying the journal — completed sweeps restore
bit-identically without re-solving, the in-flight sweep resumes from
its own per-sweep checkpoint file, and a torn final line (the only
state a hard kill can leave behind) is discarded as not-yet-committed.
The journal auto-compacts when the campaign completes.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Sequence
from pathlib import Path

from repro.exceptions import CheckpointError
from repro.fmssm.solution import RecoverySolution
from repro.resilience.degradation import DegradationReport

__all__ = [
    "SweepCheckpoint",
    "sweep_fingerprint",
    "CampaignJournal",
    "campaign_fingerprint",
]

CHECKPOINT_SCHEMA = 1
JOURNAL_SCHEMA = 1


def sweep_fingerprint(
    scenario_names: Sequence[str],
    algorithms: Sequence[str],
    optimal_time_limit_s: float,
    optimal_compile: str,
) -> str:
    """Stable identity of a sweep: same inputs ⇒ same fingerprint."""
    blob = repr(
        (tuple(scenario_names), tuple(algorithms), float(optimal_time_limit_s),
         str(optimal_compile))
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


# ----------------------------------------------------------------------
# Solution <-> JSON (bit-exact: ids are ints, floats use repr round-trip)
# ----------------------------------------------------------------------

def _pair_to_json(pair: tuple) -> list:
    switch, flow_id = pair
    return [switch, list(flow_id)]


def _pair_from_json(item: list) -> tuple:
    return (item[0], tuple(item[1]))


def solution_to_json(solution: RecoverySolution) -> dict[str, object]:
    """A JSON-safe dict capturing every field of a solution."""
    return {
        "algorithm": solution.algorithm,
        "mapping": [[s, c] for s, c in sorted(solution.mapping.items())],
        "sdn_pairs": [_pair_to_json(p) for p in sorted(solution.sdn_pairs)],
        "pair_controller": [
            [_pair_to_json(p), c]
            for p, c in sorted(solution.pair_controller.items())
        ],
        "extra_overhead_ms": solution.extra_overhead_ms,
        "load_override": (
            None
            if solution.load_override is None
            else [[c, n] for c, n in sorted(solution.load_override.items())]
        ),
        "solve_time_s": solution.solve_time_s,
        "feasible": solution.feasible,
        "meta": dict(solution.meta),
    }


def solution_from_json(payload: dict[str, object]) -> RecoverySolution:
    """Inverse of :func:`solution_to_json`."""
    return RecoverySolution(
        algorithm=str(payload["algorithm"]),
        mapping={s: c for s, c in payload["mapping"]},
        sdn_pairs={_pair_from_json(p) for p in payload["sdn_pairs"]},
        pair_controller={
            _pair_from_json(p): c for p, c in payload["pair_controller"]
        },
        extra_overhead_ms=payload["extra_overhead_ms"],
        load_override=(
            None
            if payload["load_override"] is None
            else {c: n for c, n in payload["load_override"]}
        ),
        solve_time_s=payload["solve_time_s"],
        feasible=bool(payload["feasible"]),
        meta=dict(payload["meta"]),
    )


def result_to_json(result: "ScenarioResult") -> dict[str, object]:  # noqa: F821
    """Serialize one completed scenario (solutions + degradation trail)."""
    return {
        "scenario": sorted(result.scenario.failed),
        "solutions": {
            algorithm: solution_to_json(solution)
            for algorithm, solution in result.solutions.items()
        },
        "degradation": (
            None if result.degradation is None else result.degradation.to_dict()
        ),
        "meta": result.meta,
    }


def result_from_json(
    context: "ExperimentContext",  # noqa: F821
    scenario: "FailureScenario",  # noqa: F821
    payload: dict[str, object],
) -> "ScenarioResult":  # noqa: F821
    """Rebuild a :class:`ScenarioResult`, recomputing its evaluations."""
    from repro.experiments.runner import ScenarioResult
    from repro.fmssm.evaluation import evaluate_solution

    stored = sorted(payload["scenario"])
    if stored != sorted(scenario.failed):
        raise CheckpointError(
            f"checkpoint scenario {stored!r} does not match sweep scenario "
            f"{sorted(scenario.failed)!r}"
        )
    result = ScenarioResult(scenario=scenario)
    instance = context.instance(scenario)
    for algorithm, solution_payload in payload["solutions"].items():
        solution = solution_from_json(solution_payload)
        result.solutions[algorithm] = solution
        result.evaluations[algorithm] = evaluate_solution(instance, solution)
    if payload.get("degradation") is not None:
        result.degradation = DegradationReport.from_dict(payload["degradation"])
    # ``meta`` arrived with the fan-out stats work; older checkpoints
    # (schema 1 without the key) restore with an empty dict.
    result.meta = dict(payload.get("meta", {}))
    return result


class SweepCheckpoint:
    """Atomic JSON persistence of a sweep's completed scenarios."""

    def __init__(self, path: str | Path, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint

    def load(self) -> dict[int, dict[str, object]]:
        """Completed scenario payloads keyed by scenario index.

        Returns an empty dict when no checkpoint exists yet; raises
        :class:`CheckpointError` for unreadable files or a fingerprint
        from a different sweep.
        """
        if not self.path.exists():
            return {}
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable checkpoint {self.path}: {exc}") from exc
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {self.path} has unsupported schema "
                f"{payload.get('schema')!r}"
            )
        if payload.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different sweep "
                f"(fingerprint {payload.get('fingerprint')!r} != "
                f"{self.fingerprint!r})"
            )
        return {int(index): item for index, item in payload.get("completed", {}).items()}

    def save(self, completed: dict[int, dict[str, object]]) -> None:
        """Atomically write all completed scenarios in index order."""
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": self.fingerprint,
            "n_completed": len(completed),
            "completed": {
                str(index): completed[index] for index in sorted(completed)
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
        os.replace(tmp, self.path)

    def clear(self) -> None:
        """Delete the checkpoint file (called when a sweep completes)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Campaign write-ahead log (crash-only: append, fsync, replay, compact)
# ----------------------------------------------------------------------

def campaign_fingerprint(sweep_fingerprints: Sequence[str]) -> str:
    """Stable identity of a campaign: the ordered per-sweep fingerprints.

    Each per-sweep fingerprint already covers its scenario names,
    algorithms, time limit and compile route, so hashing the ordered
    tuple pins the whole campaign without re-serializing anything.
    """
    blob = repr(tuple(sweep_fingerprints)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class CampaignJournal:
    """Append-only, fsynced JSONL journal of a campaign's completed sweeps.

    Line 1 is a header (schema + campaign fingerprint); every following
    line commits one completed sweep: its caller-order index, its sweep
    fingerprint, and the full :func:`result_to_json` payloads of its
    results.  Appends are flushed and ``os.fsync``\\ ed before the write
    returns, so a committed line survives any kill; a kill *during* an
    append leaves at most one torn trailing line, which :meth:`load`
    discards (the sweep simply re-runs — crash-only semantics, no repair
    step).  :meth:`compact` rewrites the file atomically keeping only
    the latest entry per sweep, in index order.
    """

    def __init__(self, path: str | Path, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint

    def load(self) -> dict[int, dict[str, object]]:
        """Committed sweep entries keyed by sweep index (latest wins).

        Returns an empty dict when no journal exists.  Raises
        :class:`CheckpointError` for a header from a different campaign
        or corruption anywhere but the final line; a torn final line is
        silently dropped.
        """
        if not self.path.exists():
            return {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise CheckpointError(f"unreadable journal {self.path}: {exc}") from exc
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise CheckpointError(
                f"journal {self.path} has a corrupt header line"
            ) from exc
        if header.get("schema") != JOURNAL_SCHEMA or header.get("kind") != "campaign":
            raise CheckpointError(
                f"journal {self.path} has unsupported header {header!r}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"journal {self.path} belongs to a different campaign "
                f"(fingerprint {header.get('fingerprint')!r} != "
                f"{self.fingerprint!r})"
            )
        entries: dict[int, dict[str, object]] = {}
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                index = int(entry["sweep"])
                entry["results"]
            except (ValueError, KeyError, TypeError) as exc:
                if lineno == len(lines):
                    break  # torn final append from a hard kill: not committed
                raise CheckpointError(
                    f"journal {self.path} is corrupt at line {lineno}"
                ) from exc
            entries[index] = entry
        return entries

    def append(self, index: int, fingerprint: str, results: Sequence[dict]) -> None:
        """Commit one completed sweep (fsynced before returning)."""
        entry = {
            "sweep": int(index),
            "fingerprint": fingerprint,
            "results": list(results),
        }
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        new_file = not self.path.exists()
        with open(self.path, "a", encoding="utf-8") as handle:
            if new_file:
                handle.write(
                    json.dumps(
                        {
                            "schema": JOURNAL_SCHEMA,
                            "kind": "campaign",
                            "fingerprint": self.fingerprint,
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def compact(self) -> None:
        """Atomically rewrite the journal: header + latest entry per sweep."""
        entries = self.load()
        if not entries and not self.path.exists():
            return
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "schema": JOURNAL_SCHEMA,
                        "kind": "campaign",
                        "fingerprint": self.fingerprint,
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
            for index in sorted(entries):
                handle.write(json.dumps(entries[index], separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def clear(self) -> None:
        """Delete the journal file."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
