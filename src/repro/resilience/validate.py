"""Independent validation of recovery solutions against P′'s constraints.

:func:`repro.fmssm.evaluation.verify_solution` raises on the first
violation and is wired into the evaluator; this module is the
*resilience-layer* validator: it re-derives every constraint of the
instance from scratch, collects **all** violations into a structured
:class:`ValidationReport`, and is invoked on every solver route's output
(see :func:`repro.fmssm.optimal.solve_optimal`) so a subtly infeasible
vector — whether from solver numerics or from the fault-injection
harness — can never masquerade as a verified solution.

Checked constraints (paper numbering):

Eq. 2
    Every offline switch maps to at most one *active* controller, and
    every served SDN pair is served by an active controller.
Eq. 1 (structural)
    Served SDN pairs are programmable pairs of the instance
    (``beta == 1``).
Eq. 3 / 12
    Per-controller control-resource load stays within spare capacity
    (honouring ``load_override`` for whole-switch-granularity baselines).
Eq. 4 / 13
    The least programmability over recoverable flows is consistent: when
    full recovery is required, every recoverable flow reaches ``r >= 1``;
    a solver-reported canonical objective must match the value recomputed
    from the activated pairs.
Eq. 5 / 6 / 14
    Total switch-controller propagation delay of served pairs stays
    within the ideal recovery delay ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.types import ControllerId, FlowId

__all__ = ["Violation", "ValidationReport", "validate_solution", "check_solution"]

#: Relative + absolute tolerance on the delay bound (solver numerics).
_DELAY_TOL = 1e-6
#: Tolerance when cross-checking a solver-reported canonical objective.
_OBJECTIVE_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One violated constraint, named by its paper equation."""

    constraint: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.constraint}] {self.message}"


@dataclass
class ValidationReport:
    """Outcome of validating one solution against one instance."""

    algorithm: str
    checked: tuple[str, ...] = ()
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no constraint was violated."""
        return not self.violations

    def add(self, constraint: str, message: str) -> None:
        """Record one :class:`Violation`."""
        self.violations.append(Violation(constraint, message))

    def summary(self) -> str:
        """One-line account: ok, or every violation in order."""
        if self.ok:
            return f"{self.algorithm}: ok ({len(self.checked)} constraint groups)"
        lines = "; ".join(str(v) for v in self.violations)
        return f"{self.algorithm}: {len(self.violations)} violation(s): {lines}"


def validate_solution(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    enforce_delay: bool = True,
    require_full_recovery: bool = False,
) -> ValidationReport:
    """Re-derive every constraint and return a full :class:`ValidationReport`.

    Unlike ``verify_solution`` this never raises and never stops at the
    first violation — chaos tests and degradation ladders want the
    complete picture.  An infeasible solution validates trivially when
    empty (the paper's "Optimal has no result" outcome) and is flagged
    otherwise.
    """
    report = ValidationReport(
        algorithm=solution.algorithm,
        checked=("eq2-mapping", "eq1-pairs", "eq3-capacity", "eq4-least", "eq5-delay"),
    )
    if not solution.feasible:
        if solution.mapping or solution.sdn_pairs:
            report.add(
                "structural",
                "solution declared infeasible but carries a mapping or SDN pairs",
            )
        return report

    switch_set = set(instance.switches)
    controller_set = set(instance.controllers)

    # Eq. 2 — one active controller per mapped switch.  The dict is
    # structurally "at most one"; what can go wrong is the *target*.
    for switch, controller in solution.mapping.items():
        if switch not in switch_set:
            report.add("eq2-mapping", f"mapped switch {switch!r} is not offline")
        if controller not in controller_set:
            report.add(
                "eq2-mapping",
                f"switch {switch!r} mapped to inactive controller {controller!r}",
            )
    for pair, controller in solution.pair_controller.items():
        if controller not in controller_set:
            report.add(
                "eq2-mapping",
                f"pair {pair!r} served by inactive controller {controller!r}",
            )

    # Eq. 1 — served pairs must be programmable pairs of this instance.
    for pair in solution.sdn_pairs:
        if pair not in instance.pbar:
            report.add("eq1-pairs", f"SDN pair {pair!r} is not a programmable pair")

    # Active pairs drive capacity, delay and programmability; a pair whose
    # serving controller cannot be resolved is itself a violation.
    served: list[tuple[object, FlowId, ControllerId]] = []
    for switch, flow_id in solution.active_pairs():
        if (switch, flow_id) not in instance.pbar:
            continue  # already reported under eq1-pairs
        try:
            controller = solution.controller_for_pair(switch, flow_id)
        except Exception as exc:  # SolutionError: unmapped served pair
            report.add("eq2-mapping", str(exc))
            continue
        served.append((switch, flow_id, controller))

    # Eq. 3 / 12 — control-resource capacity.
    load: dict[ControllerId, int] = {c: 0 for c in instance.controllers}
    for _, _, controller in served:
        if controller in load:
            load[controller] += 1
    if solution.load_override is not None:
        for controller, used in solution.load_override.items():
            if controller not in controller_set:
                report.add(
                    "eq3-capacity",
                    f"load override names inactive controller {controller!r}",
                )
        load = {c: solution.load_override.get(c, 0) for c in instance.controllers}
    for controller, used in load.items():
        if used > instance.spare[controller]:
            report.add(
                "eq3-capacity",
                f"controller {controller!r} load {used} exceeds spare "
                f"{instance.spare[controller]}",
            )

    # Eq. 4 / 13 — least programmability over recoverable flows.
    programmability: dict[FlowId, int] = {f: 0 for f in instance.flows}
    for switch, flow_id, controller in served:
        if controller in controller_set and (switch, flow_id) in instance.pbar:
            programmability[flow_id] += instance.pbar[(switch, flow_id)]
    recoverable = instance.recoverable_flows
    least = min((programmability[f] for f in recoverable), default=0)
    if require_full_recovery and recoverable and least < 1:
        worst = [f for f in recoverable if programmability[f] < 1]
        report.add(
            "eq4-least",
            f"full recovery requires r >= 1 but {len(worst)} recoverable "
            f"flow(s) have zero programmability (e.g. {worst[0]!r})",
        )
    claimed = solution.meta.get("objective")
    if isinstance(claimed, (int, float)):
        canonical = least + instance.lam * sum(programmability.values())
        if abs(float(claimed) - canonical) > _OBJECTIVE_TOL:
            report.add(
                "eq4-least",
                f"reported objective {claimed!r} != recomputed canonical "
                f"objective {canonical!r}",
            )

    # Eq. 5 / 6 / 14 — total propagation delay within G.
    if enforce_delay:
        total = 0.0
        for switch, flow_id, controller in served:
            delay = instance.delay.get((switch, controller))
            if delay is None:
                report.add(
                    "eq5-delay",
                    f"no delay entry for served pair {(switch, controller)!r}",
                )
                continue
            total += delay
        bound = instance.ideal_delay_ms * (1 + _DELAY_TOL) + _DELAY_TOL
        if total > bound:
            report.add(
                "eq5-delay",
                f"total delay {total:.6f}ms exceeds G={instance.ideal_delay_ms:.6f}ms",
            )

    return report


def check_solution(
    instance: FMSSMInstance,
    solution: RecoverySolution,
    enforce_delay: bool = True,
    require_full_recovery: bool = False,
) -> ValidationReport:
    """:func:`validate_solution`, raising :class:`ValidationError` on failure."""
    report = validate_solution(
        instance,
        solution,
        enforce_delay=enforce_delay,
        require_full_recovery=require_full_recovery,
    )
    if not report.ok:
        raise ValidationError(report.summary(), report=report)
    return report
