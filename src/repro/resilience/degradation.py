"""Degradation ladder: predictable fallback chains for exact solves.

The paper's recovery philosophy — keep the service alive on a weaker but
predictable path when the primary one fails — applied to the
reproduction's own solver pipeline.  A :class:`LadderPolicy` is an
ordered chain of :class:`Rung`\\ s, each naming a registered solve route
with a per-rung time limit and a retry-with-backoff policy:

``sparse+warm`` → ``model`` → ``bnb`` → ``pm``

A rung is *demoted* (the ladder moves to the next rung) when its attempt
raises a :class:`SolverError` (timeouts included) after its retries are
exhausted, or when the independent validator rejects its output.  A rung
that *returns* an infeasible solution is accepted as the final answer —
genuine infeasibility under full recovery is a legitimate result (the
paper's "Optimal has no result"), not a failure of the rung.

Every attempt, retry, demotion and acceptance is recorded in a
structured :class:`DegradationReport`, which sweeps attach to their
:class:`~repro.experiments.runner.ScenarioResult`\\ s — so a run that
silently limped through on the heuristic rung is visible in the results,
the headline benchmark JSON, and CI.

Rungs reference solve routes by *name* through a module-level registry
(:data:`RUNG_SOLVERS`) so policies stay picklable and can ship to pool
workers inside a :class:`~repro.perf.sweep.SweepPlan`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.exceptions import DegradedResultWarning, SolverError, ValidationError
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution

__all__ = [
    "DegradationEvent",
    "DegradationReport",
    "Rung",
    "LadderPolicy",
    "RUNG_SOLVERS",
    "default_ladder",
    "solve_with_ladder",
]


@dataclass(frozen=True)
class DegradationEvent:
    """One step in a degraded execution: what happened, where, and why."""

    rung: str
    action: str  # "attempt" | "retry" | "demote" | "accept" | "serial-fallback" | ...
    reason: str
    elapsed_s: float = 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-safe representation (checkpoints, headline payloads)."""
        return {
            "rung": self.rung,
            "action": self.action,
            "reason": self.reason,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "DegradationEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            rung=str(payload["rung"]),
            action=str(payload["action"]),
            reason=str(payload["reason"]),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )


@dataclass
class DegradationReport:
    """Structured audit trail of one solve or sweep execution path.

    ``rung_used`` names the rung (or execution mode, for sweeps) that
    produced the final answer; ``degraded`` is True when that differs
    from the primary path.
    """

    events: list[DegradationEvent] = field(default_factory=list)
    rung_used: str | None = None

    @property
    def degraded(self) -> bool:
        """True when anything beyond the primary path happened."""
        return any(
            e.action in (
                "demote", "retry", "serial-fallback",
                # Supervisor verdicts (repro.resilience.supervisor):
                "preempted", "quarantine", "task-fault", "pool-crash",
            )
            for e in self.events
        )

    @property
    def demotions(self) -> tuple[DegradationEvent, ...]:
        """The demotion events, in order."""
        return tuple(e for e in self.events if e.action == "demote")

    def record(
        self, rung: str, action: str, reason: str, elapsed_s: float = 0.0
    ) -> None:
        """Append one :class:`DegradationEvent`."""
        self.events.append(DegradationEvent(rung, action, reason, elapsed_s))

    def summary(self) -> str:
        """One-line human-readable account of the path taken."""
        if not self.events and self.rung_used is None:
            return "no degradation data"
        path = " -> ".join(
            f"{e.rung}:{e.action}" for e in self.events if e.action != "attempt"
        )
        used = self.rung_used or "?"
        return f"rung_used={used}" + (f" [{path}]" if path else "")

    def to_dict(self) -> dict[str, object]:
        """JSON-safe representation (checkpoints, worker transport)."""
        return {
            "rung_used": self.rung_used,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "DegradationReport":
        """Inverse of :meth:`to_dict`."""
        report = cls(rung_used=payload.get("rung_used"))
        for item in payload.get("events", ()):
            report.events.append(DegradationEvent.from_dict(item))
        return report


# ----------------------------------------------------------------------
# Rung solve routes (registered by name so policies pickle)
# ----------------------------------------------------------------------

def _solve_sparse_warm(instance: FMSSMInstance, time_limit_s: float | None) -> RecoverySolution:
    from repro.fmssm.optimal import solve_optimal

    return solve_optimal(
        instance,
        time_limit_s=time_limit_s,
        compile="sparse",
        warm_start="pm",
        raise_on_timeout=True,
    )


def _solve_sparse_batch(instance: FMSSMInstance, time_limit_s: float | None) -> RecoverySolution:
    """The sparse route through the block-diagonal batch path.

    A batch of one: same answer as ``sparse+warm`` bit for bit, but the
    solve carries ``meta["batch"]`` provenance and exercises the
    ``batch.solve`` chaos site — ladders that front a batched sweep use
    this rung so the primary rung matches the sweep's execution route.
    """
    from repro.fmssm.optimal import solve_optimal

    return solve_optimal(
        instance,
        time_limit_s=time_limit_s,
        compile="sparse",
        warm_start="pm",
        raise_on_timeout=True,
        lp_batch=1,
    )


def _solve_model(instance: FMSSMInstance, time_limit_s: float | None) -> RecoverySolution:
    from repro.fmssm.optimal import solve_optimal

    return solve_optimal(
        instance,
        time_limit_s=time_limit_s,
        compile="model",
        warm_start=None,
        raise_on_timeout=True,
    )


def _solve_bnb(instance: FMSSMInstance, time_limit_s: float | None) -> RecoverySolution:
    from repro.fmssm.optimal import solve_optimal

    return solve_optimal(
        instance,
        solver="bnb",
        time_limit_s=time_limit_s,
        compile="sparse",
        warm_start="pm",
        raise_on_timeout=True,
    )


def _solve_pm_rung(instance: FMSSMInstance, time_limit_s: float | None) -> RecoverySolution:
    from repro.pm.algorithm import solve_pm

    solution = solve_pm(instance, enforce_delay=True)
    solution.meta["ladder_rung"] = "pm"
    return solution


#: Solve routes a :class:`Rung` may name.  The PM rung is best-effort:
#: it cannot prove infeasibility, so under ``require_full_recovery`` its
#: answer is "keep as many flows programmable as possible" — exactly the
#: graceful-degradation semantics the ladder exists to provide.
RUNG_SOLVERS = {
    "sparse+warm": _solve_sparse_warm,
    "sparse+batch": _solve_sparse_batch,
    "model": _solve_model,
    "bnb": _solve_bnb,
    "pm": _solve_pm_rung,
}


@dataclass(frozen=True)
class Rung:
    """One rung: a registered solve route plus its guard rails."""

    name: str
    solver: str  # key into RUNG_SOLVERS
    time_limit_s: float | None = None
    retries: int = 0
    backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.solver not in RUNG_SOLVERS:
            raise ValueError(
                f"unknown rung solver {self.solver!r}; "
                f"known: {sorted(RUNG_SOLVERS)}"
            )


@dataclass(frozen=True)
class LadderPolicy:
    """An ordered, picklable chain of rungs plus validation settings."""

    rungs: tuple[Rung, ...]
    validate: bool = True
    #: PM (the terminal heuristic rung) cannot certify r >= 1, so full
    #: recovery is only asserted on exact rungs.
    require_full_recovery: bool = True

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("a ladder needs at least one rung")

    def drop_rungs(self, names: "set[str] | frozenset[str]") -> "LadderPolicy":
        """This policy without the rungs in ``names`` (breaker skips).

        The terminal rung is never dropped — an open circuit breaker may
        skip a failing rung's timeout, but the ladder must always keep a
        route to an answer.  Returns ``self`` when nothing changes, so
        the fault-free path reuses the identical (cached) policy object.
        """
        kept = tuple(
            rung
            for index, rung in enumerate(self.rungs)
            if rung.name not in names or index == len(self.rungs) - 1
        )
        if len(kept) == len(self.rungs):
            return self
        return LadderPolicy(
            rungs=kept,
            validate=self.validate,
            require_full_recovery=self.require_full_recovery,
        )


def default_ladder(
    time_limit_s: float | None = 300.0,
    validate: bool = True,
    retries: int = 1,
    backoff_s: float = 0.0,
) -> LadderPolicy:
    """The standard four-rung ladder for ``optimal`` solves.

    The primary rung gets the full time limit and ``retries`` attempts;
    the DSL cross-validation route and the pure-Python B&B get one
    attempt each, and the PM heuristic terminates the chain (it cannot
    time out and needs no solver).
    """
    return LadderPolicy(
        rungs=(
            Rung("sparse+warm", "sparse+warm", time_limit_s, retries, backoff_s),
            Rung("model", "model", time_limit_s, 0, backoff_s),
            Rung("bnb", "bnb", time_limit_s, 0, backoff_s),
            Rung("pm", "pm", None, 0, 0.0),
        ),
        validate=validate,
    )


def solve_with_ladder(
    instance: FMSSMInstance,
    policy: LadderPolicy,
    report: DegradationReport | None = None,
) -> tuple[RecoverySolution, DegradationReport]:
    """Run ``instance`` down ``policy``'s rungs until one produces a
    validated answer.

    Returns the solution and the :class:`DegradationReport` describing
    the path taken.  Raises :class:`SolverError` only when *every* rung
    fails — with the PM heuristic as the terminal rung this requires the
    fault injector to be actively hostile.
    """
    from repro.resilience.validate import check_solution

    if report is None:
        report = DegradationReport()
    last_error: Exception | None = None

    for rung_index, rung in enumerate(policy.rungs):
        attempt_fn = RUNG_SOLVERS[rung.solver]
        exact_rung = rung.solver != "pm"
        for attempt in range(rung.retries + 1):
            start = time.perf_counter()
            try:
                solution = attempt_fn(instance, rung.time_limit_s)
                if policy.validate and solution.feasible:
                    check_solution(
                        instance,
                        solution,
                        enforce_delay=True,
                        require_full_recovery=(
                            policy.require_full_recovery and exact_rung
                        ),
                    )
            except ValidationError as exc:
                # A rejected output is deterministic — retrying the same
                # rung would reproduce it, so demote immediately.
                last_error = exc
                report.record(
                    rung.name, "demote", f"validation: {exc}",
                    time.perf_counter() - start,
                )
                break
            except SolverError as exc:
                last_error = exc
                elapsed = time.perf_counter() - start
                if attempt < rung.retries:
                    report.record(rung.name, "retry", str(exc), elapsed)
                    if rung.backoff_s:
                        time.sleep(rung.backoff_s * (2.0**attempt))
                    continue
                report.record(rung.name, "demote", str(exc), elapsed)
                break
            else:
                elapsed = time.perf_counter() - start
                report.rung_used = rung.name
                report.record(
                    rung.name,
                    "accept",
                    "feasible" if solution.feasible else "infeasible (accepted)",
                    elapsed,
                )
                if rung_index > 0:
                    solution.meta["degraded"] = True
                    warnings.warn(
                        DegradedResultWarning(
                            f"optimal solve degraded to rung {rung.name!r}: "
                            f"{report.summary()}"
                        ),
                        stacklevel=2,
                    )
                solution.meta["ladder_rung"] = rung.name
                return solution, report

    message = f"all {len(policy.rungs)} ladder rungs failed: {report.summary()}"
    if last_error is not None:
        raise SolverError(message) from last_error
    raise SolverError(message)
