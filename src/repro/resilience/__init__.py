"""Resilience layer: survivable, auditable sweeps and solves.

The paper's premise is graceful degradation under failure; this package
applies the same philosophy to the reproduction's own execution
pipeline.  Five pieces:

:mod:`repro.resilience.degradation`
    A configurable **degradation ladder** for exact solves
    (``sparse+warm`` → ``model`` → ``bnb`` → ``pm``), each rung guarded
    by a time limit and retry-with-backoff, with every demotion recorded
    in a structured :class:`DegradationReport`.
:mod:`repro.resilience.chaos`
    A **fault-injection harness** with sites threaded through the sweep
    engine and every solver route, so the failure paths are first-class
    tested code.
:mod:`repro.resilience.checkpoint`
    **Checkpoint/resume** for failure sweeps: completed scenarios
    persist as JSON and a killed sweep resumes bit-identically.  The
    :class:`CampaignJournal` write-ahead log scales the guarantee to
    whole campaigns (crash-only: append, fsync, replay, compact).
:mod:`repro.resilience.supervisor`
    A **sweep supervisor** around the warm executor: per-unit deadlines
    with hung-worker preemption, retry budgets with poison-scenario
    quarantine to the serial ladder, and closed/open/half-open circuit
    breakers around the exact rungs and the shm transport.
:mod:`repro.resilience.validate`
    An **independent solution validator** checking any
    :class:`~repro.fmssm.solution.RecoverySolution` against the
    instance's constraints (Eqs. 2-6 / 12-14), invoked on every solver
    route's output.

See ``docs/robustness.md`` for the full design.
"""

from repro.resilience import chaos
from repro.resilience.checkpoint import (
    CampaignJournal,
    SweepCheckpoint,
    campaign_fingerprint,
    sweep_fingerprint,
)
from repro.resilience.degradation import (
    DegradationEvent,
    DegradationReport,
    LadderPolicy,
    Rung,
    default_ladder,
    solve_with_ladder,
)
from repro.resilience.supervisor import (
    CircuitBreaker,
    QuarantineReport,
    SupervisorPolicy,
    SweepSupervisor,
)
from repro.resilience.validate import (
    ValidationReport,
    Violation,
    check_solution,
    validate_solution,
)

__all__ = [
    "chaos",
    "DegradationEvent",
    "DegradationReport",
    "LadderPolicy",
    "Rung",
    "default_ladder",
    "solve_with_ladder",
    "SweepCheckpoint",
    "sweep_fingerprint",
    "CampaignJournal",
    "campaign_fingerprint",
    "CircuitBreaker",
    "QuarantineReport",
    "SupervisorPolicy",
    "SweepSupervisor",
    "ValidationReport",
    "Violation",
    "check_solution",
    "validate_solution",
]
