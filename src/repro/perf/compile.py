"""Direct sparse compilation of problem P′ (the fast exact-solver path).

:func:`repro.fmssm.formulation.build_fmssm_model` expresses P′ through
the :mod:`repro.lp.model` DSL — one :class:`~repro.lp.model.Var` object
per variable, one dict-backed :class:`~repro.lp.model.LinExpr` per
constraint — and :func:`~repro.lp.standard_form.to_standard_form`
re-walks all of it to emit matrices.  That is the right shape for
readability and for small one-off models, but a failure sweep solves the
*same* constraint family for every C(M, k) scenario, and the per-object
DSL work dominates the compile cost.

This module assembles the identical standard form directly as
``scipy.sparse`` CSR blocks from an :class:`FMSSMInstance`, vectorized
over (pair, controller) index arrays — no ``Var``/``LinExpr`` objects
and no string-name dictionary lookups.  The variable and row layout
mirrors the DSL path exactly:

columns
    ``x[s,c]`` switch-major (``s * M + c``), then per programmable pair
    ``k``: ``y_k`` followed by ``w[k,0..M-1]``, and finally ``r``.
rows (all ``<=`` after normalization)
    Eq. (2) mapping rows, the Eqs. (9)–(11) McCormick triples in
    (pair, controller) order, Eq. (12) capacity rows, Eq. (13)
    programmability rows (negated ``>=``), and the Eq. (14) delay row.

so the emitted ``A``/``b``/``c``/bounds/integrality are *identical* to
``to_standard_form(build_fmssm_model(instance))`` — asserted by
``tests/test_perf_compile.py``.

Cross-scenario reuse: the purely structural index arrays (McCormick row
numbers, ``w``/``y`` column layouts, capacity-row patterns) depend only
on the (N, M, P) shape, so an :class:`FMSSMCompiler` caches them and
every same-shaped scenario of a sweep slices from one master template
instead of rebuilding.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.lp.standard_form import StandardForm
from repro.types import ControllerId, FlowId, NodeId

__all__ = ["CompiledFMSSM", "FMSSMCompiler", "compile_fmssm", "default_compiler"]

#: Feasibility slack used when embedding heuristic solutions.
_EMBED_TOL = 1e-6
_BINARY_THRESHOLD = 0.5


@dataclass
class CompiledFMSSM:
    """P′ in matrix standard form plus the index maps to read answers back.

    The ``form`` is exactly what the DSL route produces; the remaining
    fields let callers convert between :class:`RecoverySolution` objects
    and raw solver vectors without any name-keyed dictionaries.
    """

    form: StandardForm
    switches: tuple[NodeId, ...]
    controllers: tuple[ControllerId, ...]
    pairs: tuple[tuple[NodeId, FlowId], ...]
    recoverable: tuple[FlowId, ...]
    #: Column of ``x[s,c]`` is ``switch_index[s] * M + controller_index[c]``.
    switch_index: dict[NodeId, int] = field(repr=False)
    controller_index: dict[ControllerId, int] = field(repr=False)
    #: Switch index of each pair, aligned with ``pairs``.
    pair_switch_idx: np.ndarray = field(repr=False)
    #: ``p̄`` of each pair, aligned with ``pairs``.
    pbar_values: np.ndarray = field(repr=False)
    r_col: int = 0

    @property
    def n_x(self) -> int:
        """Number of ``x`` columns (N * M); also the first ``y`` column."""
        return len(self.switches) * len(self.controllers)

    def y_col(self, k: int) -> int:
        """Column of ``y`` for pair ``k``."""
        return self.n_x + k * (len(self.controllers) + 1)

    def w_col(self, k: int, ci: int) -> int:
        """Column of ``w`` for pair ``k`` under controller index ``ci``."""
        return self.y_col(k) + 1 + ci

    # ------------------------------------------------------------------
    # Solution <-> vector conversion
    # ------------------------------------------------------------------
    def embed_solution(self, solution: RecoverySolution) -> np.ndarray | None:
        """A feasible point of the compiled form from a heuristic solution.

        The switch mapping fills ``x``, served SDN pairs fill ``y``/``w``
        (a pair served by a controller other than its switch's mapping
        cannot be expressed in P′ and fails the feasibility check), and
        ``r`` takes the largest value Eq. (13) permits.  Returns ``None``
        when the embedded point violates the form — e.g. the solution is
        infeasible under ``r >= 1`` full recovery, breaks the delay
        bound, or is not a switch-level solution.
        """
        if not solution.feasible:
            return None
        m = len(self.controllers)
        x = np.zeros(self.form.n_vars)
        for switch, controller in solution.mapping.items():
            si = self.switch_index.get(switch)
            ci = self.controller_index.get(controller)
            if si is None or ci is None:
                return None
            x[si * m + ci] = 1.0
        pair_index = {pair: k for k, pair in enumerate(self.pairs)}
        pro: dict[FlowId, float] = {flow: 0.0 for flow in self.recoverable}
        for switch, flow_id in solution.active_pairs():
            k = pair_index.get((switch, flow_id))
            if k is None:
                return None
            controller = solution.controller_for_pair(switch, flow_id)
            ci = self.controller_index.get(controller)
            if ci is None:
                return None
            x[self.y_col(k)] = 1.0
            x[self.w_col(k, ci)] = 1.0
            if flow_id in pro:
                pro[flow_id] += self.pbar_values[k]
        if self.recoverable:
            x[self.r_col] = min(float(self.form.ub[self.r_col]), min(pro.values()))
        if not self.is_feasible_point(x):
            return None
        return x

    def is_feasible_point(self, x: np.ndarray, tol: float = _EMBED_TOL) -> bool:
        """Whether ``x`` satisfies the form's rows and bounds within ``tol``."""
        if np.any(x < self.form.lb - tol) or np.any(x > self.form.ub + tol):
            return False
        if self.form.a_ub.shape[0] and np.any(self.form.a_ub @ x > self.form.b_ub + tol):
            return False
        if self.form.a_eq.shape[0] and np.any(
            np.abs(self.form.a_eq @ x - self.form.b_eq) > tol
        ):
            return False
        return True

    def objective_value(self, x: np.ndarray) -> float:
        """Objective of ``x`` in the model's (maximization) sense."""
        return self.form.objective_value(float(self.form.c @ x))

    def extract(self, x: np.ndarray) -> tuple[dict[NodeId, ControllerId], set[tuple[NodeId, FlowId]]]:
        """Read (mapping, SDN pairs) from a solver vector.

        Matches :func:`repro.fmssm.optimal.extract_solution` semantics:
        the mapping comes from ``x`` columns, activated pairs from ``w``.
        """
        m = len(self.controllers)
        mapping: dict[NodeId, ControllerId] = {}
        for col in np.flatnonzero(x[: self.n_x] > _BINARY_THRESHOLD):
            mapping[self.switches[col // m]] = self.controllers[col % m]
        sdn_pairs: set[tuple[NodeId, FlowId]] = set()
        if self.pairs:
            stride = m + 1
            block = x[self.n_x : self.n_x + len(self.pairs) * stride].reshape(-1, stride)
            for k in np.flatnonzero(np.any(block[:, 1:] > _BINARY_THRESHOLD, axis=1)):
                sdn_pairs.add(self.pairs[k])
        return mapping, sdn_pairs


class FMSSMCompiler:
    """Compiles instances to :class:`CompiledFMSSM`, reusing structure.

    One compiler per sweep (or the module default) keeps an LRU cache of
    the shape-only index arrays keyed by (N, M, P); scenarios sharing a
    shape pay only for the scenario-specific numbers (``p̄``, delays,
    spare capacities, bounds).
    """

    def __init__(self, max_cached_shapes: int = 32) -> None:
        self._max_cached_shapes = max_cached_shapes
        self._shapes: OrderedDict[tuple[int, int, int], dict[str, np.ndarray]] = OrderedDict()

    def _shape_arrays(self, n: int, m: int, p: int) -> dict[str, np.ndarray]:
        """Structural index arrays for an (N, M, P)-shaped instance."""
        key = (n, m, p)
        cached = self._shapes.get(key)
        if cached is not None:
            self._shapes.move_to_end(key)
            return cached
        n_x = n * m
        q = p * m  # number of w variables
        w_cols = n_x + np.repeat(np.arange(p, dtype=np.int64) * (m + 1) + 1, m) + np.tile(
            np.arange(m, dtype=np.int64), p
        )
        y_cols = n_x + np.arange(p, dtype=np.int64) * (m + 1)
        y_cols_rep = np.repeat(y_cols, m)
        ci_tile = np.tile(np.arange(m, dtype=np.int64), p)
        mc_base = n + 3 * np.arange(q, dtype=np.int64)
        arrays = {
            # Eq. (2) mapping rows: one row per switch over its M x columns.
            "map_rows": np.repeat(np.arange(n, dtype=np.int64), m),
            "map_cols": np.arange(n_x, dtype=np.int64),
            # w/y column layout in (pair, controller) order.
            "w_cols": w_cols,
            "y_cols_rep": y_cols_rep,
            "ci_tile": ci_tile,
            # McCormick row numbers: triples (wx, wy, wxy) per w variable.
            "wx_rows": mc_base,
            "wy_rows": mc_base + 1,
            "wxy_rows": mc_base + 2,
            # Capacity rows: w columns grouped by controller.
            "cap_rows": n + 3 * q + ci_tile,
            "mccormick_b": np.tile(np.array([0.0, 0.0, 1.0]), q),
            "ones_q": np.ones(q),
            "neg_ones_q": np.full(q, -1.0),
        }
        self._shapes[key] = arrays
        if len(self._shapes) > self._max_cached_shapes:
            self._shapes.popitem(last=False)
        return arrays

    def precompute(
        self, shapes: Iterable[tuple[int, int, int]]
    ) -> dict[tuple[int, int, int], dict[str, np.ndarray]]:
        """Build (and cache) the index arrays for every given shape.

        The parallel sweep predicts each scenario's (N, M, P) cheaply in
        the parent, precomputes the structural blocks once, and ships
        them to workers through the shared-memory transport — every
        worker then aliases the same arrays instead of rebuilding them.
        Returns the key → arrays mapping for :meth:`adopt_shapes`.
        """
        return {key: self._shape_arrays(*key) for key in dict.fromkeys(shapes)}

    def cached_shapes(
        self,
    ) -> dict[tuple[int, int, int], dict[str, np.ndarray]]:
        """A snapshot of the currently cached shape arrays.

        The cross-run store (:mod:`repro.perf.store`) persists these as
        named artifacts after a sweep, so a cold process adopts them
        from disk instead of rebuilding the structural blocks.
        """
        return dict(self._shapes)

    def adopt_shapes(
        self, mapping: dict[tuple[int, int, int], dict[str, np.ndarray]]
    ) -> None:
        """Install precomputed shape arrays (worker-side of :meth:`precompute`).

        Mispredicted or missing keys are harmless — :meth:`_shape_arrays`
        computes on demand.  The LRU bound still applies, so adopting
        more shapes than ``max_cached_shapes`` keeps only the most
        recently inserted ones.
        """
        for key, arrays in mapping.items():
            self._shapes[key] = arrays
            self._shapes.move_to_end(key)
            if len(self._shapes) > self._max_cached_shapes:
                self._shapes.popitem(last=False)

    def compile(
        self,
        instance: FMSSMInstance,
        require_full_recovery: bool = False,
        enforce_delay: bool = True,
        with_names: bool = False,
        controller_subset: Iterable[ControllerId] | None = None,
    ) -> CompiledFMSSM:
        """Compile ``instance`` to the standard form of problem P′.

        Parameters mirror :func:`~repro.fmssm.formulation.build_fmssm_model`;
        ``with_names`` additionally emits the DSL's variable names (used
        by equivalence tests — the hot path leaves them empty and works
        with raw column indices instead).

        ``controller_subset`` restricts the compiled form's controller
        columns to the given controllers (order preserved from
        ``instance.controllers``).  The batched LP path uses this to drop
        spare-zero controllers, whose ``x``/``w`` columns provably cannot
        change the LP optimum — see DESIGN §14 for the argument.  The
        subset must be a subset of the instance's controllers; anything
        else raises ``ValueError``.
        """
        switches = instance.switches
        if controller_subset is None:
            controllers = instance.controllers
        else:
            keep = set(controller_subset)
            if not keep <= set(instance.controllers):
                raise ValueError(
                    "controller_subset must be a subset of instance.controllers"
                )
            controllers = tuple(c for c in instance.controllers if c in keep)
        pairs = instance.pairs
        n, m, p = len(switches), len(controllers), len(pairs)
        n_x = n * m
        q = p * m
        n_vars = n_x + p * (m + 1) + 1
        r_col = n_vars - 1
        shape = self._shape_arrays(n, m, p)

        switch_index = {s: i for i, s in enumerate(switches)}
        controller_index = {c: i for i, c in enumerate(controllers)}
        pair_switch_idx = np.fromiter(
            (switch_index[s] for s, _ in pairs), dtype=np.int64, count=p
        )
        pbar_values = np.fromiter(
            (float(instance.pbar[pair]) for pair in pairs), dtype=np.float64, count=p
        )

        recoverable = instance.recoverable_flows
        if recoverable:
            r_ub = float(min(instance.max_programmability(f) for f in recoverable))
            r_lb = 1.0 if require_full_recovery else 0.0
        else:
            r_ub = 0.0
            r_lb = 0.0

        # x column of each w variable, in (pair, controller) order.
        x_cols_rep = np.repeat(pair_switch_idx, m) * m + shape["ci_tile"]
        w_cols = shape["w_cols"]
        pbar_rep = np.repeat(pbar_values, m)

        data_blocks: list[np.ndarray] = []
        row_blocks: list[np.ndarray] = []
        col_blocks: list[np.ndarray] = []
        b_blocks: list[np.ndarray] = []

        def block(rows: np.ndarray, cols: np.ndarray, values: np.ndarray) -> None:
            row_blocks.append(rows)
            col_blocks.append(cols)
            data_blocks.append(values)

        # Eq. (2): each switch maps to at most one controller.
        block(shape["map_rows"], shape["map_cols"], np.ones(n_x))
        b_blocks.append(np.ones(n))
        n_rows = n

        if p:
            # Eqs. (9)-(11): w <= x, w <= y, x + y - w <= 1.
            block(shape["wx_rows"], w_cols, shape["ones_q"])
            block(shape["wx_rows"], x_cols_rep, shape["neg_ones_q"])
            block(shape["wy_rows"], w_cols, shape["ones_q"])
            block(shape["wy_rows"], shape["y_cols_rep"], shape["neg_ones_q"])
            block(shape["wxy_rows"], x_cols_rep, shape["ones_q"])
            block(shape["wxy_rows"], shape["y_cols_rep"], shape["ones_q"])
            block(shape["wxy_rows"], w_cols, shape["neg_ones_q"])
            b_blocks.append(shape["mccormick_b"])
            n_rows += 3 * q

            # Eq. (12): controller capacity over SDN pairs.
            block(shape["cap_rows"], w_cols, shape["ones_q"])
            b_blocks.append(
                np.fromiter(
                    (float(instance.spare[c]) for c in controllers),
                    dtype=np.float64,
                    count=m,
                )
            )
            n_rows += m

        # Eq. (13): pro^l >= r per recoverable flow, negated to <= form.
        n_rec = len(recoverable)
        if n_rec:
            flow_row = {f: i for i, f in enumerate(recoverable)}
            pair_flow_row = np.fromiter(
                (flow_row[f] for _, f in pairs), dtype=np.int64, count=p
            )
            pro_rows_rep = n_rows + np.repeat(pair_flow_row, m)
            block(pro_rows_rep, w_cols, -pbar_rep)
            block(
                n_rows + np.arange(n_rec, dtype=np.int64),
                np.full(n_rec, r_col, dtype=np.int64),
                np.ones(n_rec),
            )
            b_blocks.append(np.zeros(n_rec))
            n_rows += n_rec

        # Eq. (14): total switch-controller delay bounded by G.
        if enforce_delay and q:
            delay_matrix = np.array(
                [[float(instance.delay[(s, c)]) for c in controllers] for s in switches]
            )
            block(
                np.full(q, n_rows, dtype=np.int64),
                w_cols,
                delay_matrix[pair_switch_idx].ravel(),
            )
            b_blocks.append(np.array([float(instance.ideal_delay_ms)]))
            n_rows += 1

        a_ub = sparse.csr_matrix(
            (
                np.concatenate(data_blocks),
                (np.concatenate(row_blocks), np.concatenate(col_blocks)),
            ),
            shape=(n_rows, n_vars),
        )
        b_ub = np.concatenate(b_blocks)

        # Objective max(r + lambda * sum(pbar * w)), negated to min form.
        c = np.zeros(n_vars)
        if q:
            c[w_cols] = -instance.lam * pbar_rep
        c[r_col] = -1.0

        lb = np.zeros(n_vars)
        ub = np.ones(n_vars)
        lb[r_col] = r_lb
        ub[r_col] = r_ub
        integrality = np.ones(n_vars)
        integrality[r_col] = 0.0

        var_names: tuple[str, ...] = ()
        if with_names:
            names: list[str] = [
                f"x[{s},{c_}]" for s in switches for c_ in controllers
            ]
            for s, f in pairs:
                names.append(f"y[{s},{f}]")
                names.extend(f"w[{s},{c_},{f}]" for c_ in controllers)
            names.append("r")
            var_names = tuple(names)

        form = StandardForm(
            c=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=sparse.csr_matrix((0, n_vars)),
            b_eq=np.zeros(0),
            lb=lb,
            ub=ub,
            integrality=integrality,
            maximize=True,
            objective_constant=-0.0,
            var_names=var_names,
        )
        return CompiledFMSSM(
            form=form,
            switches=switches,
            controllers=controllers,
            pairs=pairs,
            recoverable=recoverable,
            switch_index=switch_index,
            controller_index=controller_index,
            pair_switch_idx=pair_switch_idx,
            pbar_values=pbar_values,
            r_col=r_col,
        )


#: Process-wide compiler shared by default — sweeps and repeated solves
#: in one process reuse the same structural template cache.
_DEFAULT_COMPILER = FMSSMCompiler()


def default_compiler() -> FMSSMCompiler:
    """The process-wide shared compiler."""
    return _DEFAULT_COMPILER


def compile_fmssm(
    instance: FMSSMInstance,
    require_full_recovery: bool = False,
    enforce_delay: bool = True,
    with_names: bool = False,
    compiler: FMSSMCompiler | None = None,
    controller_subset: Iterable[ControllerId] | None = None,
) -> CompiledFMSSM:
    """Compile ``instance`` with ``compiler`` (default: the shared one)."""
    return (compiler or _DEFAULT_COMPILER).compile(
        instance,
        require_full_recovery=require_full_recovery,
        enforce_delay=enforce_delay,
        with_names=with_names,
        controller_subset=controller_subset,
    )
