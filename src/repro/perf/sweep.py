"""Process-pool execution of failure sweeps, with a resilience layer.

A sweep is embarrassingly parallel across scenarios × algorithms: every
task grounds its instance from the same shared data (topology, flows,
coefficient table) and writes to a disjoint result slot.  This module
fans those tasks over a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges results back in deterministic (scenario, algorithm) order, so
the output is indistinguishable from the serial sweep apart from
wall-clock time.

Workers receive one pickled :class:`SweepPlan` through the pool
initializer — the context (with its coefficient table materialized by
the parent, so no worker re-derives a single path count) is shipped once
per worker, not once per task.

Resilience (all opt-in, zero overhead when unused):

* Any failure to parallelize — payloads that refuse to pickle, a
  platform without working process pools, a pool that dies mid-sweep —
  degrades to the serial path for the *remaining* tasks, keeping every
  result already computed.  The cause is surfaced through a
  :class:`~repro.resilience.degradation.DegradationReport` on each
  :class:`ScenarioResult` and a
  :class:`~repro.exceptions.DegradedResultWarning` instead of silence.
* ``ladder=`` routes ``optimal`` solves through a degradation ladder
  (:func:`repro.resilience.degradation.solve_with_ladder`) so a dead or
  lying solver rung demotes instead of crashing the sweep.
* ``validate=True`` re-checks every heuristic solution against the
  instance's constraints (:mod:`repro.resilience.validate`).
* ``checkpoint_path=`` persists completed scenarios as JSON every
  ``checkpoint_every`` completions; a killed sweep resumes from the last
  checkpoint bit-identically to an uninterrupted run.

Fan-out transports (``transport=``): the classic ``"pickle"`` route
serializes the whole plan into every worker; the ``"shm"`` route strips
the plan down to the coefficient arrays plus small scalars, parks the
array buffers in one :mod:`multiprocessing.shared_memory` segment
(:mod:`repro.perf.shm`) and ships workers only a few tens of kilobytes
in band — workers rebuild the context from read-only views aliasing the
segment.  ``"auto"`` (default) picks shm when the platform and context
support it and silently degrades otherwise.

Incremental chaining (``incremental=True``): scenarios are ordered into
a minimum-Hamming-distance chain (:mod:`repro.perf.incremental`) and
each worker walks one contiguous segment, threading a
:class:`~repro.fmssm.optimal.WarmChain` through its ``optimal`` solves —
the previous scenario's solution is repaired into the next instance and
seeds the solver.  Results stay bit-identical to independent solves (see
the ``WarmChain`` docstring for why).

Fault-injection sites (``sweep.task``, ``sweep.payload``,
``sweep.checkpoint``) are threaded through the hot paths; see
:mod:`repro.resilience.chaos`.
"""

from __future__ import annotations

import itertools
import pickle
import time
import warnings
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.baselines import get_algorithm
from repro.control.failures import FailureScenario
from repro.exceptions import DegradedResultWarning
from repro.fmssm.evaluation import (
    RecoveryEvaluation,
    evaluate_batch,
    evaluate_solution,
)
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.optimal import WarmChain, solve_optimal
from repro.fmssm.solution import RecoverySolution
from repro.perf.incremental import chain_segments, hamming_chain
from repro.perf.kernels import prepare_instance
from repro.perf.shm import (
    FanoutStats,
    SegmentLease,
    SharedPayload,
    loads_shared,
    shm_available,
    timed_dumps_shared,
)
from repro.resilience import chaos
from repro.resilience.checkpoint import (
    SweepCheckpoint,
    result_from_json,
    result_to_json,
    sweep_fingerprint,
)
from repro.perf.store import (
    SolveStore,
    canonical_evaluation,
    canonical_instance,
    canonical_solution,
    decode_record,
    solution_from_canonical,
    solve_key,
    topology_fingerprint,
)
from repro.resilience.degradation import (
    DegradationReport,
    LadderPolicy,
    solve_with_ladder,
)

__all__ = [
    "SweepPlan",
    "ShmPlanData",
    "parallel_sweep",
    "fanout_summary",
    "store_summary",
]

#: Recognized values of ``parallel_sweep``'s ``transport`` parameter.
_TRANSPORTS = ("auto", "shm", "pickle")


@dataclass
class SweepPlan:
    """Everything a worker needs to run any (scenario, algorithm) task.

    The plan is pickled exactly once by the parent and unpickled exactly
    once per worker; workers then index into it by task.  The active
    chaos plan (if any) rides along so fault injection reaches worker
    processes.
    """

    context: "ExperimentContext"  # noqa: F821 - imported lazily (cycle)
    scenarios: tuple[FailureScenario, ...]
    optimal_time_limit_s: float = 300.0
    optimal_compile: str = "sparse"
    ladder: LadderPolicy | None = None
    validate: bool = False
    chaos_plan: "chaos.ChaosPlan | None" = field(default=None)
    #: Batch size for block-diagonal LP solving of ``optimal`` tasks
    #: (:mod:`repro.perf.batch`); ``None`` keeps scenario-at-a-time.
    lp_batch: int | None = None


@dataclass
class ShmPlanData:
    """The slim plan shipped over the shared-memory transport.

    Carries everything a worker needs to rebuild a :class:`SweepPlan`
    *except* the heavyweight pieces of the context: the programmability
    model (hundreds of kilobytes of path-count state the workers never
    consult once the table is materialized) is dropped entirely, and the
    coefficient table plus flow population travel as dense
    :class:`~repro.perf.coefficients.CoefficientArrays` whose buffers
    pickle protocol 5 diverts into the shared segment.  ``shapes`` holds
    the compiler's structural index arrays precomputed by the parent for
    every predicted (N, M, P) — also shared, so no worker rebuilds them.
    """

    topology: object
    plane: object
    delay_model: object
    arrays: object  # CoefficientArrays
    scenarios: tuple[FailureScenario, ...]
    optimal_time_limit_s: float = 300.0
    optimal_compile: str = "sparse"
    ladder: LadderPolicy | None = None
    validate: bool = False
    chaos_plan: "chaos.ChaosPlan | None" = field(default=None)
    shapes: dict[tuple[int, int, int], dict[str, object]] = field(default_factory=dict)
    lp_batch: int | None = None

    def rebuild_context(self) -> "ExperimentContext":  # noqa: F821
        """Reconstruct an :class:`ExperimentContext` around the arrays.

        The rebuilt context has its coefficient table pre-materialized
        (so instance grounding never consults the programmability model,
        which is absent) and draws its flow population from the table —
        the same objects, in the same order, as the parent's context.
        """
        from repro.experiments.scenarios import ExperimentContext

        table = self.arrays.to_table()
        return ExperimentContext(
            topology=self.topology,
            flows=list(table.flows),
            plane=self.plane,
            programmability=None,  # type: ignore[arg-type] - never consulted
            delay_model=self.delay_model,
            _table=table,
        )


#: Per-worker state, populated by :func:`_init_worker`.
_WORKER: dict[str, object] = {}

#: Algorithms whose per-task cost dwarfs pool overhead (exact solves).
_HEAVY_ALGORITHMS = frozenset({"optimal", "optimal-two-stage", "retroflow-ip"})

#: Below this many heuristic-only tasks, pool startup cannot pay off.
_MIN_PARALLEL_TASKS = 64

#: The warm-executor threshold is lower: there is no pool to start and
#: (usually) no plan to decode, so fan-out pays off much earlier.
_MIN_PARALLEL_TASKS_WARM = 16


def _init_worker(payload: bytes) -> None:
    """Pool initializer (pickle route): unpickle the plan once per worker."""
    start = time.perf_counter()
    plan = pickle.loads(payload)
    _WORKER["plan"] = plan
    if plan.chaos_plan is not None:
        chaos.install(plan.chaos_plan)
    _WORKER["init_s"] = time.perf_counter() - start


def _init_worker_shm(payload: SharedPayload) -> None:
    """Pool initializer (shm route): attach to the segment, rebuild the plan.

    The big arrays come back as read-only views aliasing the shared
    segment — no per-worker copy — and the compiler's structural cache
    is pre-seeded from the parent's precomputed shapes.
    """
    start = time.perf_counter()
    data: ShmPlanData = loads_shared(payload)
    _WORKER["plan"] = SweepPlan(
        data.rebuild_context(),
        data.scenarios,
        data.optimal_time_limit_s,
        data.optimal_compile,
        data.ladder,
        data.validate,
        data.chaos_plan,
        lp_batch=data.lp_batch,
    )
    if data.chaos_plan is not None:
        chaos.install(data.chaos_plan)
    if data.shapes:
        from repro.perf.compile import default_compiler

        default_compiler().adopt_shapes(data.shapes)
    _WORKER["init_s"] = time.perf_counter() - start


def _solve(
    instance: FMSSMInstance,
    algorithm: str,
    time_limit_s: float,
    optimal_compile: str = "sparse",
    ladder: LadderPolicy | None = None,
    validate: bool = False,
    warm_chain: WarmChain | None = None,
) -> tuple[RecoverySolution, DegradationReport | None]:
    """Run one algorithm on one instance (same routing as the serial path).

    With a ladder, ``optimal`` solves walk the rung chain and return
    their degradation trail; heuristics optionally pass through the
    independent validator.  ``warm_chain`` threads incremental-sweep
    warm-start state through plain ``optimal`` solves (ladder runs stay
    chainless — rung demotions would poison the chain with partial
    answers).
    """
    if algorithm == "optimal":
        if ladder is not None:
            return solve_with_ladder(instance, ladder)
        return (
            solve_optimal(
                instance,
                time_limit_s=time_limit_s,
                compile=optimal_compile,
                warm_chain=warm_chain,
            ),
            None,
        )
    solution = get_algorithm(algorithm)(instance)
    if validate:
        from repro.resilience.validate import check_solution

        # Flow-level baselines legitimately trade the delay bound off.
        check_solution(instance, solution, enforce_delay=False)
    return solution, None


#: One finished task: (scenario index, algorithm, solution, evaluation,
#: degradation dict, worker init seconds).  Warm-executor wrappers
#: append a seventh element — the worker's cache telemetry snapshot
#: (:func:`repro.perf.executor.worker_cache_stats`).
_TaskResult = tuple[
    int, str, RecoverySolution, RecoveryEvaluation, "dict | None", "float | None"
]


def _task_rows(plan: SweepPlan, task: tuple[int, str]) -> _TaskResult:
    """Solve + evaluate one (scenario index, algorithm) task of ``plan``.

    Shared by the classic initializer-shipped workers (which read the
    plan from :data:`_WORKER`) and the warm-executor workers (which
    resolve it from their header caches).
    """
    chaos.check("sweep.task")
    index, algorithm = task
    instance = plan.context.instance(plan.scenarios[index])
    prepare_instance(instance)
    solution, report = _solve(
        instance,
        algorithm,
        plan.optimal_time_limit_s,
        plan.optimal_compile,
        plan.ladder,
        plan.validate,
    )
    evaluation = evaluate_solution(instance, solution)
    return index, algorithm, solution, evaluation, (
        None if report is None else report.to_dict()
    ), _WORKER.get("init_s")


def _run_task(task: tuple[int, str]) -> _TaskResult:
    """Worker body: solve + evaluate one task from the shipped plan."""
    return _task_rows(_WORKER["plan"], task)


def _chain_rows(
    plan: SweepPlan, segment: Sequence[tuple[int, tuple[str, ...]]]
) -> list[_TaskResult]:
    """Run one incremental-chain segment of ``plan``.

    Walks the scenarios in chain order, threading one
    :class:`~repro.fmssm.optimal.WarmChain` through the ``optimal``
    solves so each inherits the previous scenario's repaired solution
    and LP basis.  Every (scenario, algorithm) still passes the
    ``sweep.task`` chaos site individually, like independent tasks do.

    Under an LP-batching plan the segment delegates to
    :func:`_batched_rows` in chain order: the chain's warm seeds become
    per-block warm starts for the stacked solves (they only matter on
    degraded members, so batching cannot change the answers).
    """
    if _lp_batchable(plan):
        flat = [(i, a) for i, algorithms in segment for a in algorithms]
        return _batched_rows(plan, flat, warm_chain=WarmChain())
    warm_chain = WarmChain()
    out: list[_TaskResult] = []
    for index, algorithms in segment:
        instance = plan.context.instance(plan.scenarios[index])
        prepare_instance(instance)
        solved = []
        for algorithm in algorithms:
            chaos.check("sweep.task")
            solution, report = _solve(
                instance,
                algorithm,
                plan.optimal_time_limit_s,
                plan.optimal_compile,
                plan.ladder,
                plan.validate,
                warm_chain=warm_chain if plan.ladder is None else None,
            )
            solved.append((algorithm, solution, report))
        evaluations = evaluate_batch(instance, [sol for _, sol, _ in solved])
        for (algorithm, solution, report), evaluation in zip(solved, evaluations):
            out.append((
                index, algorithm, solution, evaluation,
                None if report is None else report.to_dict(),
                _WORKER.get("init_s"),
            ))
    return out


def _run_chain_task(
    segment: Sequence[tuple[int, tuple[str, ...]]],
) -> list[_TaskResult]:
    """Worker body: run one chain segment from the shipped plan."""
    return _chain_rows(_WORKER["plan"], segment)


def _lp_batchable(plan: SweepPlan) -> bool:
    """Whether ``plan`` routes ``optimal`` solves through the LP batcher.

    Batching requires the sparse compile route (the batcher stacks the
    sparse blocks) and no ladder (rung demotions are per-scenario by
    contract, so ladder runs stay scenario-at-a-time).
    """
    return (
        plan.lp_batch is not None
        and plan.lp_batch >= 1
        and plan.ladder is None
        and plan.optimal_compile == "sparse"
    )


def _batched_rows(
    plan: SweepPlan,
    tasks: Sequence[tuple[int, str]],
    instance_of=None,
    warm_chain: WarmChain | None = None,
) -> list[_TaskResult]:
    """Run ``tasks`` with ``optimal`` solves batched into stacked LPs.

    The scenario-at-a-time equivalent of this function is the
    ``run_serial`` task loop; results are bit-identical (see
    :func:`repro.perf.batch.solve_optimal_batch` for why), only the
    execution order changes: ``optimal`` tasks are grouped by structural
    (N, M, P) shape, chunked to ``plan.lp_batch``, and each chunk is
    solved through one block-diagonal relaxation.  Every task still
    passes the ``sweep.task`` chaos site exactly once, and every
    scenario's solutions are evaluated in one batch in task order.

    ``instance_of`` overrides instance grounding (the runner passes its
    store-probe cache); ``warm_chain`` threads incremental-chain state
    through the batch (chunk members become per-block warm seeds).
    """
    from repro.perf.batch import solve_optimal_batch

    if instance_of is None:
        def instance_of(index: int) -> FMSSMInstance:
            return plan.context.instance(plan.scenarios[index])

    by_scenario: dict[int, list[str]] = {}
    for index, algorithm in tasks:
        by_scenario.setdefault(index, []).append(algorithm)
    instances: dict[int, FMSSMInstance] = {}
    for index in by_scenario:
        instance = instance_of(index)
        prepare_instance(instance)
        instances[index] = instance

    # Stack the optimal solves: group by shape so blocks share one
    # (N, M, P) template, then chunk each group to the batch size.
    groups: dict[tuple[int, int, int], list[int]] = {}
    for index, algorithms in by_scenario.items():
        if "optimal" in algorithms:
            instance = instances[index]
            shape = (
                len(instance.switches),
                len(instance.controllers),
                len(instance.pairs),
            )
            groups.setdefault(shape, []).append(index)
    solutions: dict[int, RecoverySolution] = {}
    size = max(1, int(plan.lp_batch or 1))
    for shape in groups:
        members = groups[shape]
        for k in range(0, len(members), size):
            chunk = members[k:k + size]
            for _ in chunk:
                chaos.check("sweep.task")
            batch = solve_optimal_batch(
                [instances[i] for i in chunk],
                time_limit_s=plan.optimal_time_limit_s,
                warm_chain=warm_chain,
            )
            for index, solution in zip(chunk, batch):
                solutions[index] = solution

    out: list[_TaskResult] = []
    for index, algorithms in by_scenario.items():
        instance = instances[index]
        solved = []
        for algorithm in algorithms:
            if algorithm == "optimal" and index in solutions:
                solved.append((algorithm, solutions[index], None))
                continue
            chaos.check("sweep.task")
            solution, report = _solve(
                instance,
                algorithm,
                plan.optimal_time_limit_s,
                plan.optimal_compile,
                plan.ladder,
                plan.validate,
            )
            solved.append((algorithm, solution, report))
        evaluations = evaluate_batch(instance, [sol for _, sol, _ in solved])
        for (algorithm, solution, report), evaluation in zip(solved, evaluations):
            out.append((
                index, algorithm, solution, evaluation,
                None if report is None else report.to_dict(),
                _WORKER.get("init_s"),
            ))
    return out


def _run_batch_chunk(tasks: Sequence[tuple[int, str]]) -> list[_TaskResult]:
    """Worker body: run one LP-batched task chunk from the shipped plan."""
    return _batched_rows(_WORKER["plan"], tasks)


class _SweepRunner:
    """One sweep execution: slots, checkpointing, and degradation audit."""

    def __init__(
        self,
        context: "ExperimentContext",  # noqa: F821
        scenarios: tuple[FailureScenario, ...],
        algorithms: tuple[str, ...],
        optimal_time_limit_s: float,
        optimal_compile: str,
        ladder: LadderPolicy | None,
        validate: bool,
        checkpoint: SweepCheckpoint | None,
        checkpoint_every: int,
        transport: str = "auto",
        incremental: bool = False,
        store: SolveStore | None = None,
        lp_batch: int | None = None,
    ) -> None:
        from repro.experiments.runner import ScenarioResult

        self.context = context
        self.scenarios = scenarios
        self.algorithms = algorithms
        self.optimal_time_limit_s = optimal_time_limit_s
        self.optimal_compile = optimal_compile
        self.ladder = ladder
        self.validate = validate
        self.checkpoint = checkpoint
        self.checkpoint_every = max(1, checkpoint_every)
        self.transport = transport
        self.incremental = incremental
        self.store = store
        self.lp_batch = lp_batch
        #: (index, algorithm) tasks withheld from the pool because an
        #: equivalent scenario (same instance fingerprint) solves them;
        #: values name the representative index.  Settled after the run.
        self.deferred: dict[tuple[int, str], int] = {}
        #: (index, algorithm) pairs satisfied from the store (probe hits).
        self._hits: set[tuple[int, str]] = set()
        #: Probe-time grounding per scenario index: (instance, canonical).
        self._grounded: dict[int, tuple] = {}
        #: Per-scenario store provenance stamped on ``meta["store"]``.
        self._provenance: dict[int, dict] = {}
        #: Fan-out transport stats of the last pool launch, if any.
        self.fanout: FanoutStats | None = None
        self.results = [
            ScenarioResult(scenario=scenario, degradation=DegradationReport())
            for scenario in scenarios
        ]
        #: Scenario indices fully solved (all algorithms present).
        self.completed: set[int] = set()
        #: Serialized payloads of completed scenarios (for checkpointing).
        self._payloads: dict[int, dict] = {}
        self._since_checkpoint = 0

    # -- checkpoint ----------------------------------------------------
    def restore(self) -> None:
        """Load previously completed scenarios from the checkpoint."""
        if self.checkpoint is None:
            return
        for index, payload in self.checkpoint.load().items():
            if not 0 <= index < len(self.scenarios):
                continue
            result = result_from_json(self.context, self.scenarios[index], payload)
            if result.degradation is None:
                result.degradation = DegradationReport()
            result.degradation.record(
                "checkpoint", "restore", f"restored from {self.checkpoint.path}"
            )
            self.results[index] = result
            self.completed.add(index)
            self._payloads[index] = payload

    def _scenario_done(self, index: int) -> None:
        """Mark a scenario complete; checkpoint every N completions."""
        self.completed.add(index)
        if self.checkpoint is None:
            return
        self._payloads[index] = result_to_json(self.results[index])
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self._flush_checkpoint()

    def _flush_checkpoint(self) -> None:
        if self.checkpoint is None or self._since_checkpoint == 0:
            return
        self.checkpoint.save(self._payloads)
        self._since_checkpoint = 0
        chaos.check("sweep.checkpoint")

    # -- bookkeeping ---------------------------------------------------
    def record_mode(self, reason: str, degraded: bool = False) -> None:
        """Stamp the execution mode onto every not-yet-completed result."""
        action = "serial-fallback" if degraded else "mode"
        for index, result in enumerate(self.results):
            if index not in self.completed:
                result.degradation.record("sweep", action, reason)

    def _store(
        self,
        index: int,
        algorithm: str,
        solution: RecoverySolution,
        evaluation: RecoveryEvaluation,
        report_dict: dict | None,
        init_s: float | None = None,
        worker_stats: dict | None = None,
    ) -> None:
        if init_s is not None and self.fanout is not None:
            self.fanout.worker_init_s = max(self.fanout.worker_init_s, init_s)
        if worker_stats is not None and self.fanout is not None:
            # Worst-worker semantics, like worker_init_s: any worker's
            # eviction is a future re-decode somewhere in the pool.
            for layer, count in worker_stats.get("evictions", {}).items():
                if count > self.fanout.evictions.get(layer, 0):
                    self.fanout.evictions[layer] = count
        result = self.results[index]
        result.solutions[algorithm] = solution
        result.evaluations[algorithm] = evaluation
        if report_dict is not None:
            task_report = DegradationReport.from_dict(report_dict)
            result.degradation.events.extend(task_report.events)
            if task_report.rung_used is not None:
                result.degradation.rung_used = task_report.rung_used
        if len(result.solutions) == len(self.algorithms):
            self._scenario_done(index)

    def pending_tasks(self) -> list[tuple[int, str]]:
        """Remaining (scenario index, algorithm) tasks, deterministic order.

        Tasks deferred to an equivalence-class representative (see
        :meth:`probe_store`) are excluded — they are settled from the
        representative's solution after execution, not solved.
        """
        return [
            (index, algorithm)
            for index in range(len(self.scenarios))
            if index not in self.completed
            for algorithm in self.algorithms
            if algorithm not in self.results[index].solutions
            and (index, algorithm) not in self.deferred
        ]

    # -- cross-run store ------------------------------------------------
    def _instance(self, index: int) -> FMSSMInstance:
        """Ground scenario ``index`` (reusing the store probe's instance)."""
        cached = self._grounded.get(index)
        if cached is not None:
            return cached[0]
        return self.context.instance(self.scenarios[index])

    def _hit_solution(self, instance, solution) -> bool:
        """Whether a store hit passes the independent validator.

        Runs only when the sweep itself runs with ``validate=True`` —
        the exact policy :func:`_solve` applies to fresh solves (records
        are already checksummed, so this guards against a store from an
        incompatible build, not disk corruption).  Exact solves must
        honor the delay bound, flow-level baselines legitimately trade
        it off.  An invalid hit is treated as a miss.
        """
        if not self.validate:
            return True
        from repro.resilience.validate import validate_solution

        if not solution.feasible:
            return True
        enforce_delay = solution.algorithm in ("optimal", "optimal-two-stage")
        return validate_solution(
            instance, solution, enforce_delay=enforce_delay
        ).ok

    def _clean_for_store(self, result, solution) -> bool:
        """Whether ``solution`` equals what a fresh default solve yields.

        Demoted ladder solves and pm-fallback timeouts answer from a
        lower rung — storing them would replay a degraded answer as a
        pristine one — so only undemoted solves are stored or fanned out
        to equivalence-class duplicates.
        """
        if solution.meta.get("degraded"):
            return False
        report = result.degradation
        return report is None or not any(
            e.action == "demote" for e in report.events
        )

    def _prime_intermediates(self) -> None:
        """Adopt stored expensive intermediates before grounding anything.

        Hop-distance tables seed the per-topology BFS cache (so a cold
        process materializes its coefficient table without re-running
        the BFS per destination), and the compiler's structural blocks
        for every (N, M, P) this sweep will touch are adopted from disk
        where present.
        """
        from repro.routing.path_count import adopt_hop_distances

        topo_fp = topology_fingerprint(self.context.topology)
        tables = self.store.get(f"hops:{topo_fp}")
        if tables is not None:
            adopt_hop_distances(
                self.context.topology,
                {
                    dst: dict(pairs)
                    for dst, pairs in
                    (tuple(item) for item in tables["tables"])
                },
            )
        if any(a in _HEAVY_ALGORITHMS for a in self.algorithms):
            from repro.perf.compile import default_compiler

            compiler = default_compiler()
            table = self.context.materialize_table()
            plane = self.context.plane
            shapes = set()
            for scenario in self.scenarios:
                offline = scenario.offline_switches(plane)
                shapes.add((
                    len(offline),
                    plane.n_controllers - scenario.n_failures,
                    sum(len(table.flows_programmable_at(s)) for s in offline),
                ))
            adopted = {}
            for key in sorted(shapes):
                arrays = self.store.get_arrays("pprime-%d-%d-%d" % key)
                if arrays is not None:
                    adopted[key] = arrays
            if adopted:
                compiler.adopt_shapes(adopted)

    def _persist_intermediates(self) -> None:
        """Write back intermediates this sweep computed (put-if-absent)."""
        from repro.perf.kernels import export_instance_prep
        from repro.routing.path_count import export_hop_distances

        hops_key = f"hops:{topology_fingerprint(self.context.topology)}"
        if self.store.get(hops_key) is None:
            tables = export_hop_distances(self.context.topology)
            if tables:
                self.store.put(hops_key, {
                    "tables": [
                        [dst, sorted(distances.items())]
                        for dst, distances in sorted(tables.items())
                    ],
                })
        if any(a in _HEAVY_ALGORITHMS for a in self.algorithms):
            from repro.perf.compile import default_compiler

            for key, arrays in default_compiler().cached_shapes().items():
                self.store.put_arrays("pprime-%d-%d-%d" % key, arrays)
        for index, (instance, canon) in self._grounded.items():
            prep = export_instance_prep(instance)
            if prep is not None:
                self.store.put_arrays(f"prep-{canon.fingerprint}", prep)

    def probe_store(self) -> None:
        """Probe the store and dedupe equivalent scenarios before fan-out.

        For every pending scenario: ground its instance, fingerprint it,
        satisfy whatever the store already holds (validated, evaluated
        fresh), and defer any remaining task whose fingerprint matches
        an earlier scenario's to that representative — one solve per
        equivalence class reaches the pool, :meth:`settle_store` fans it
        back out.  Stamps per-scenario hit/miss provenance for
        ``meta["store"]``.
        """
        from repro.perf.kernels import adopt_instance_prep
        from repro.perf.store import decoded_cache_stats

        self._decoded_stats0 = decoded_cache_stats()
        self._prime_intermediates()
        representatives: dict[str, int] = {}
        for index in range(len(self.scenarios)):
            if index in self.completed:
                continue
            result = self.results[index]
            pending = [
                a for a in self.algorithms if a not in result.solutions
            ]
            if not pending:
                continue
            instance = self.context.instance(self.scenarios[index])
            canon = canonical_instance(instance)
            self._grounded[index] = (instance, canon)
            provenance = self._provenance.setdefault(index, {
                "fingerprint": canon.fingerprint,
                "hits": [],
                "misses": [],
            })
            missed: list[str] = []
            for algorithm in pending:
                key = solve_key(
                    canon.fingerprint, algorithm,
                    self.optimal_time_limit_s, self.optimal_compile,
                )
                record = self.store.get(key)
                if record is not None and "solution" in record:
                    solution, evaluation = decode_record(
                        record, canon, instance, algorithm,
                        self.store.sha_of(key),
                    )
                    if self._hit_solution(instance, solution):
                        if evaluation is None:
                            evaluation = evaluate_solution(instance, solution)
                        self._hits.add((index, algorithm))
                        provenance["hits"].append(algorithm)
                        self._store(index, algorithm, solution, evaluation,
                                    None)
                        continue
                missed.append(algorithm)
            if not missed:
                continue
            # Only a scenario that will actually solve needs its cached
            # kernel prep — pure-hit scenarios replay without it.
            prep = self.store.get_arrays(f"prep-{canon.fingerprint}")
            if prep is not None:
                adopt_instance_prep(instance, prep)
            for algorithm in missed:
                provenance["misses"].append(algorithm)
                representative = representatives.setdefault(
                    canon.fingerprint, index
                )
                if representative != index:
                    self.deferred[(index, algorithm)] = representative
                    provenance["dedup_of"] = (
                        self.scenarios[representative].name
                    )

    def settle_store(self) -> None:
        """Fan representatives out to duplicates and write back results.

        Each deferred task translates its representative's solution
        through canonical label space onto its own instance and is
        evaluated fresh; representatives that failed to produce a clean
        solution (demoted, quarantined mid-round) send their duplicates
        to a genuine serial solve instead.  Finally every clean fresh
        solve is appended to the store (put-if-absent) and the
        provenance stamps land on ``meta["store"]``.
        """
        if self.store is None:
            return
        leftovers = []
        for (index, algorithm), rep in sorted(self.deferred.items()):
            result = self.results[index]
            if algorithm in result.solutions:
                continue
            rep_result = self.results[rep]
            rep_solution = rep_result.solutions.get(algorithm)
            if rep_solution is None or not self._clean_for_store(
                rep_result, rep_solution
            ):
                leftovers.append((index, algorithm))
                continue
            _, rep_canon = self._grounded[rep]
            instance, canon = self._grounded[index]
            solution = solution_from_canonical(
                canonical_solution(rep_solution, rep_canon), canon
            )
            evaluation = evaluate_solution(instance, solution)
            self._store(index, algorithm, solution, evaluation, None)
        if leftovers:
            dropped = {task: self.deferred.pop(task) for task in leftovers}
            for index, _ in dropped:
                self._provenance.get(index, {}).pop("dedup_of", None)
            self.run_serial(sorted(dropped))
        records = []
        for index, (instance, canon) in sorted(self._grounded.items()):
            result = self.results[index]
            for algorithm, solution in result.solutions.items():
                if (index, algorithm) in self._hits:
                    continue
                if (index, algorithm) in self.deferred:
                    continue
                if not self._clean_for_store(result, solution):
                    continue
                key = solve_key(
                    canon.fingerprint, algorithm,
                    self.optimal_time_limit_s, self.optimal_compile,
                )
                records.append((key, {
                    "solution": canonical_solution(solution, canon),
                    "evaluation": canonical_evaluation(
                        result.evaluations[algorithm], canon
                    ),
                }))
        if records:
            self.store.put_many(records)
        self._persist_intermediates()
        base = getattr(self, "_decoded_stats0", None)
        if base is not None:
            from repro.perf.store import decoded_cache_stats

            stats = decoded_cache_stats()
            decoded = {k: stats[k] - base.get(k, 0) for k in stats}
            for provenance in self._provenance.values():
                provenance["decoded"] = dict(decoded)
        for index, provenance in self._provenance.items():
            self.results[index].meta["store"] = dict(provenance)

    # -- incremental chaining ------------------------------------------
    def chain_plan(
        self, tasks: Sequence[tuple[int, str]], parts: int
    ) -> list[list[tuple[int, tuple[str, ...]]]]:
        """Group ``tasks`` by scenario and order them into chain segments.

        Scenarios with pending work are ordered by
        :func:`~repro.perf.incremental.hamming_chain` and split into at
        most ``parts`` contiguous segments; each element is
        ``(scenario index, pending algorithms in caller order)``.
        """
        by_scenario: dict[int, list[str]] = {}
        for index, algorithm in tasks:
            by_scenario.setdefault(index, []).append(algorithm)
        indices = sorted(by_scenario)
        order = hamming_chain([self.scenarios[i] for i in indices])
        chain = [indices[i] for i in order]
        return [
            [(i, tuple(by_scenario[i])) for i in segment]
            for segment in chain_segments(chain, parts)
        ]

    # -- execution -----------------------------------------------------
    def _as_plan(self) -> SweepPlan:
        """This runner's settings as a :class:`SweepPlan` (serial batching)."""
        return SweepPlan(
            self.context,
            self.scenarios,
            self.optimal_time_limit_s,
            self.optimal_compile,
            self.ladder,
            self.validate,
            lp_batch=self.lp_batch,
        )

    def _batched(self) -> bool:
        """Whether this sweep fans ``optimal`` tasks out in LP batches."""
        return (
            _lp_batchable(self._as_plan())
            and any(a in _HEAVY_ALGORITHMS for a in self.algorithms)
        )

    def run_serial(self, tasks: Sequence[tuple[int, str]]) -> None:
        """Solve ``tasks`` in-process, in deterministic order.

        With ``incremental=True`` the scenarios run in chain order with
        one warm chain across the whole sweep — results are identical,
        only the visiting order and solver seeding change.  With
        ``lp_batch`` set, ``optimal`` solves are stacked into
        block-diagonal LPs (:func:`_batched_rows`) — also bit-identical.
        """
        if self.incremental and tasks:
            for row in self._serial_chain(tasks):
                self._store(*row)
            return
        if tasks and self._batched():
            for row in _batched_rows(
                self._as_plan(), tasks, instance_of=self._instance
            ):
                self._store(*row)
            return
        for index, group in itertools.groupby(tasks, key=lambda t: t[0]):
            instance = self._instance(index)
            prepare_instance(instance)
            solved = []
            for _, algorithm in group:
                chaos.check("sweep.task")
                solution, report = _solve(
                    instance,
                    algorithm,
                    self.optimal_time_limit_s,
                    self.optimal_compile,
                    self.ladder,
                    self.validate,
                )
                solved.append((algorithm, solution, report))
            evaluations = evaluate_batch(instance, [sol for _, sol, _ in solved])
            for (algorithm, solution, report), evaluation in zip(solved, evaluations):
                self._store(
                    index, algorithm, solution, evaluation,
                    None if report is None else report.to_dict(),
                )

    def _serial_chain(self, tasks: Sequence[tuple[int, str]]):
        """In-process incremental chain (generator of task-result rows)."""
        if self._batched():
            (segment,) = self.chain_plan(tasks, 1)
            flat = [(i, a) for i, algorithms in segment for a in algorithms]
            yield from _batched_rows(
                self._as_plan(), flat, instance_of=self._instance,
                warm_chain=WarmChain(),
            )
            return
        warm_chain = WarmChain()
        (segment,) = self.chain_plan(tasks, 1)
        for index, algorithms in segment:
            instance = self._instance(index)
            prepare_instance(instance)
            solved = []
            for algorithm in algorithms:
                chaos.check("sweep.task")
                solution, report = _solve(
                    instance,
                    algorithm,
                    self.optimal_time_limit_s,
                    self.optimal_compile,
                    self.ladder,
                    self.validate,
                    warm_chain=warm_chain if self.ladder is None else None,
                )
                solved.append((algorithm, solution, report))
            evaluations = evaluate_batch(instance, [sol for _, sol, _ in solved])
            for (algorithm, solution, report), evaluation in zip(solved, evaluations):
                yield (
                    index, algorithm, solution, evaluation,
                    None if report is None else report.to_dict(), None,
                )

    # -- fan-out encoding ----------------------------------------------
    def _predict_shapes(self) -> dict[tuple[int, int, int], dict[str, object]]:
        """Precompute the compiler's structural arrays for every scenario.

        The (N, M, P) of a scenario follows from the control plane and
        the coefficient table without grounding the instance: N offline
        switches from the failed domains, M surviving controllers, and P
        programmable pairs summed over the offline switches' inverted
        index.  Shipped to workers so none of them rebuilds the blocks.
        """
        from repro.perf.compile import default_compiler

        table = self.context.materialize_table()
        plane = self.context.plane
        shapes = []
        for scenario in self.scenarios:
            offline = scenario.offline_switches(plane)
            shapes.append((
                len(offline),
                plane.n_controllers - scenario.n_failures,
                sum(len(table.flows_programmable_at(s)) for s in offline),
            ))
        return default_compiler().precompute(shapes)

    def _slim_plan(self) -> ShmPlanData:
        """The shm-route plan: context stripped to its array form."""
        from repro.perf.coefficients import CoefficientArrays

        table = self.context.materialize_table()
        heavy = any(a in _HEAVY_ALGORITHMS for a in self.algorithms)
        return ShmPlanData(
            topology=self.context.topology,
            plane=self.context.plane,
            delay_model=self.context.delay_model,
            arrays=CoefficientArrays.from_table(table),
            scenarios=self.scenarios,
            optimal_time_limit_s=self.optimal_time_limit_s,
            optimal_compile=self.optimal_compile,
            ladder=self.ladder,
            validate=self.validate,
            chaos_plan=chaos.active_plan(),
            shapes=self._predict_shapes() if heavy else {},
            lp_batch=self.lp_batch,
        )

    def _encode_plan(
        self,
    ) -> tuple[object, tuple, SegmentLease | None, FanoutStats] | None:
        """Serialize the plan for the chosen transport.

        Returns ``(initializer, initargs, lease, stats)``, or ``None``
        when nothing can be shipped (unpicklable plan) and the caller
        must stay serial.  ``transport="auto"`` degrades to pickle
        silently; an explicit ``transport="shm"`` that cannot be honored
        degrades too but says so in a :class:`DegradedResultWarning`.
        """
        try:
            self.context.materialize_table()
        except AttributeError:  # duck-typed contexts without a table cache
            pass

        if self.transport in ("auto", "shm"):
            reason = None
            data = None
            if not shm_available():
                reason = "shared memory unavailable on this platform"
            else:
                try:
                    data = self._slim_plan()
                except Exception as exc:
                    # Non-integer node ids, duck-typed contexts, …
                    reason = f"context cannot be array-encoded ({exc!r})"
            if data is not None:
                payload, lease, stats = timed_dumps_shared(data)
                if payload.segment is not None:
                    inband = chaos.transform("sweep.payload", payload.inband)
                    payload = SharedPayload(
                        inband=inband,
                        segment=payload.segment,
                        offsets=payload.offsets,
                    )
                    return _init_worker_shm, (payload,), lease, stats
                reason = "payload carried no shareable buffers"
            if self.transport == "shm":
                warnings.warn(
                    DegradedResultWarning(
                        f"shm transport requested but {reason}; "
                        f"falling back to the pickle route"
                    ),
                    stacklevel=5,
                )

        start = time.perf_counter()
        try:
            payload_bytes = pickle.dumps(
                SweepPlan(
                    self.context,
                    self.scenarios,
                    self.optimal_time_limit_s,
                    self.optimal_compile,
                    self.ladder,
                    self.validate,
                    chaos.active_plan(),
                    lp_batch=self.lp_batch,
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception as exc:  # unpicklable context/scenarios: stay serial
            self._warn_fallback(f"sweep plan failed to pickle ({exc!r})")
            return None
        payload_bytes = chaos.transform("sweep.payload", payload_bytes)
        stats = FanoutStats(
            transport="pickle",
            payload_bytes=len(payload_bytes),
            encode_s=time.perf_counter() - start,
        )
        return _init_worker, (payload_bytes,), None, stats

    def run_pool(self, tasks: Sequence[tuple[int, str]], workers: int) -> bool:
        """Fan ``tasks`` over a process pool; True when all completed.

        Returns False (after keeping every received result) when the
        pool breaks or a result refuses to pickle — the caller then
        finishes the remainder serially.  Task-level exceptions (solver
        bugs, validation failures without a ladder) propagate unchanged,
        exactly as the serial path would raise them.  The shared-memory
        segment (if any) is released on every exit path, including chaos
        kills and checkpoint aborts.
        """
        encoded = self._encode_plan()
        if encoded is None:
            return False
        initializer, initargs, lease, stats = encoded
        self.fanout = stats

        try:
            with ProcessPoolExecutor(
                max_workers=workers, initializer=initializer, initargs=initargs
            ) as pool:
                if self.incremental:
                    chunked = True
                    futures = {
                        pool.submit(_run_chain_task, segment): segment
                        for segment in self.chain_plan(tasks, workers)
                    }
                elif self._batched():
                    # Contiguous scenario-major chunks so each worker
                    # accumulates full LP batches from its own slice.
                    chunked = True
                    size = -(-len(tasks) // workers)
                    futures = {
                        pool.submit(_run_batch_chunk, chunk): tuple(chunk)
                        for chunk in (
                            list(tasks[k * size:(k + 1) * size])
                            for k in range(workers)
                        )
                        if chunk
                    }
                else:
                    chunked = False
                    futures = {pool.submit(_run_task, task): task for task in tasks}
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        outcome = future.result()
                        rows = outcome if chunked else [outcome]
                        for row in rows:
                            self._store(*row)
        except (OSError, pickle.PicklingError, BrokenProcessPool) as exc:
            # Sandboxes without fork/spawn, a worker killed mid-task, or
            # results that refuse to pickle: keep what we have, finish
            # the rest serially.
            self._warn_fallback(f"process pool failed ({exc!r})")
            return False
        finally:
            if lease is not None:
                lease.release()
            self._flush_checkpoint()
        return True

    def _warm_header(self, executor) -> tuple[object, FanoutStats]:
        """Encode this sweep for a warm executor (header + fan-out stats).

        The heavy context payload comes from the executor's cache —
        near-free on every sweep after the first over a context — and
        only the light per-sweep parameters are serialized fresh.  The
        ``sweep.payload`` chaos site applies to that fresh blob, like it
        does to the cold routes' payloads.
        """
        from repro.perf import executor as executor_mod

        start = time.perf_counter()
        entry = executor.encode_context(
            self.context, prefer_shm=self.transport != "pickle"
        )
        heavy = any(a in _HEAVY_ALGORITHMS for a in self.algorithms)
        chaos_plan = chaos.active_plan()
        blob = pickle.dumps(
            executor_mod._SweepParams(
                scenarios=self.scenarios,
                optimal_time_limit_s=self.optimal_time_limit_s,
                optimal_compile=self.optimal_compile,
                ladder=self.ladder,
                validate=self.validate,
                chaos_plan=chaos_plan,
                shapes=self._predict_shapes() if heavy else {},
                lp_batch=self.lp_batch,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        blob = chaos.transform("sweep.payload", blob)
        fingerprint = sweep_fingerprint(
            [s.name for s in self.scenarios],
            self.algorithms,
            self.optimal_time_limit_s,
            self.optimal_compile,
        )
        header = executor_mod.WarmHeader(
            plan_key=executor.plan_key(
                entry, fingerprint, blob, chaotic=chaos_plan is not None
            ),
            context_key=(executor.id, entry.generation),
            context_payload=entry.payload,
            sweep_blob=blob,
        )
        stats = FanoutStats(
            transport="warm-shm" if entry.payload.segment is not None else "warm-pickle",
            payload_bytes=entry.payload.inband_bytes + len(blob),
            shared_bytes=entry.payload.shared_bytes,
            encode_s=time.perf_counter() - start,
        )
        return header, stats

    def run_warm(self, tasks: Sequence[tuple[int, str]], workers: int,
                 executor) -> bool:
        """Fan ``tasks`` over a warm executor; True when all completed.

        Same contract as :meth:`run_pool` — False keeps every received
        result and sends the caller to the serial path — plus executor
        bookkeeping: a broken pool is flagged for transparent respawn on
        the executor's next sweep, and the context's segment lease stays
        with the executor (released on eviction or close, not here).
        Heuristic-only sweeps chunk tasks round-robin so the header is
        decoded once per chunk; heavy sweeps keep per-task submission
        for dynamic load balancing.
        """
        from repro.perf import executor as executor_mod

        try:
            header, stats = self._warm_header(executor)
        except Exception as exc:  # unpicklable context: stay serial
            self._warn_fallback(f"sweep plan failed to encode ({exc!r})")
            return False
        self.fanout = stats
        executor.stats["sweeps"] += 1
        try:
            pool = executor.pool()
            if self.incremental:
                chunked = True
                futures = {
                    pool.submit(executor_mod._warm_run_chain, header, segment)
                    for segment in self.chain_plan(tasks, workers)
                }
            elif self._batched():
                # LP batching wants contiguous scenario-major chunks —
                # each worker accumulates compiled forms from its own
                # slice into stacked solves, flushing at the batch size
                # and at its chunk boundary.
                chunked = True
                size = -(-len(tasks) // workers)
                futures = {
                    pool.submit(executor_mod._warm_run_batch, header, chunk)
                    for chunk in (
                        list(tasks[k * size:(k + 1) * size])
                        for k in range(workers)
                    )
                    if chunk
                }
            elif any(a in _HEAVY_ALGORITHMS for a in self.algorithms):
                chunked = False
                futures = {
                    pool.submit(executor_mod._warm_run_task, header, task)
                    for task in tasks
                }
            else:
                chunked = True
                # Contiguous scenario-major chunks: tasks are grouped by
                # scenario, so each worker grounds only its own slice of
                # the instances instead of every worker grounding all of
                # them (as a round-robin split would).
                size = -(-len(tasks) // workers)
                chunks = [
                    list(tasks[k * size:(k + 1) * size]) for k in range(workers)
                ]
                futures = {
                    pool.submit(executor_mod._warm_run_chunk, header, chunk)
                    for chunk in chunks
                    if chunk
                }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    outcome = future.result()
                    rows = outcome if chunked else [outcome]
                    for row in rows:
                        self._store(*row)
        except (OSError, pickle.PickleError, BrokenProcessPool) as exc:
            # A worker killed mid-task or a payload/result that refuses
            # (un)pickling: keep what we have, finish serially, and let
            # the executor respawn its pool lazily.
            executor.mark_broken()
            self._warn_fallback(f"warm process pool failed ({exc!r})")
            return False
        finally:
            self._flush_checkpoint()
        return True

    # -- supervised execution ------------------------------------------
    def _supervisor_meta(self, index: int) -> dict:
        """The per-result supervisor audit dict (created on first use)."""
        return self.results[index].meta.setdefault(
            "supervisor", {"events": [], "quarantined": False}
        )

    def _run_quarantined(self, index: int, q_report, supervisor) -> None:
        """Solve one quarantined scenario serially through the ladder.

        Runs in the parent, where ``kill-worker`` and ``hang`` chaos are
        no-ops by construction, and deliberately skips the ``sweep.task``
        chaos site — the terminal fallback must always complete.  Exact
        solves go through the sweep's ladder (or the default one) so a
        genuinely broken solver still degrades to the PM rung instead of
        wedging the campaign.
        """
        from repro.resilience.degradation import default_ladder

        result = self.results[index]
        ladder = self.ladder or default_ladder(self.optimal_time_limit_s)
        instance = self._instance(index)
        prepare_instance(instance)
        solved = []
        for algorithm in self.algorithms:
            if algorithm in result.solutions:
                continue
            solution, report = _solve(
                instance,
                algorithm,
                self.optimal_time_limit_s,
                self.optimal_compile,
                ladder,
                self.validate,
            )
            solved.append((algorithm, solution, report))
        evaluations = evaluate_batch(instance, [sol for _, sol, _ in solved])
        result.degradation.record(
            "supervisor",
            "quarantine",
            f"retry budget exhausted after {q_report.charges} "
            f"{q_report.cause} charge(s); solved serially via the ladder",
        )
        meta = self._supervisor_meta(index)
        meta["quarantined"] = True
        meta["events"].append({"action": "quarantine", **q_report.to_dict()})
        for (algorithm, solution, report), evaluation in zip(solved, evaluations):
            self._store(
                index, algorithm, solution, evaluation,
                None if report is None else report.to_dict(),
            )

    def _quarantine_over_budget(self, supervisor) -> None:
        """Quarantine + serially solve every over-budget scenario.

        Covers both *fresh* decisions (this sweep's charges crossed the
        budget) and scenarios already quarantined by an earlier sweep of
        the same campaign: known-poison work never reaches the pool
        again, it goes straight to the parent-serial ladder.
        """
        open_indices = {
            self.scenarios[i].name: i
            for i in range(len(self.scenarios))
            if i not in self.completed
        }
        reports = {
            q_report.scenario: q_report
            for q_report in supervisor.quarantine_decisions(
                list(open_indices), self.algorithms
            )
        }
        for q_report in supervisor.quarantines:
            if q_report.scenario in open_indices:
                reports.setdefault(q_report.scenario, q_report)
        for name, q_report in reports.items():
            self._run_quarantined(open_indices[name], q_report, supervisor)

    def run_supervised(self, tasks: Sequence[tuple[int, str]], workers: int,
                       executor, supervisor) -> bool:
        """Warm fan-out under a :class:`~repro.resilience.supervisor.
        SweepSupervisor`; True when all tasks completed.

        Same submission shapes and result contract as :meth:`run_warm` —
        fault-free, the two are byte-for-byte identical (the supervisor's
        hooks all return their inputs unchanged) — plus four layers of
        supervision, re-submitted in *rounds* until nothing is pending:

        * The wait loop doubles as the watchdog: it wakes every
          ``poll_interval_s``, stamps a deadline on each submission unit
          when it is first observed *running*, and hard-kills the pool
          (:meth:`~repro.perf.executor.SweepExecutor.preempt`) when a
          unit overstays — charging only that unit's scenarios.
        * A :class:`~repro.exceptions.ChaosError` escaping a task is a
          *task fault*: its unit's scenarios are charged and requeued.
          Any other task exception propagates unchanged, exactly as the
          unsupervised routes raise it.
        * Scenarios charged past the retry budget are quarantined and
          solved serially in the parent before the next round.
        * Each round submits under the breaker-effective ladder and
          transport; a breaker state change mid-round cancels the
          not-yet-running remainder so it requeues under the new route.

        Pool crashes (``BrokenProcessPool`` and kin) charge the units
        last observed running — the likely culprits — or all unfinished
        ones when nothing was seen running; after ``max_pool_restarts``
        of them the sweep falls back to serial like :meth:`run_warm`
        does on its first crash.
        """
        from repro.exceptions import ChaosError
        from repro.perf import executor as executor_mod

        policy = supervisor.policy
        supervisor.stats["supervised_sweeps"] += 1
        executor.stats["sweeps"] += 1
        base_ladder = self.ladder
        base_transport = self.transport
        heavy = any(a in _HEAVY_ALGORITHMS for a in self.algorithms)
        pool_restarts = 0
        # One header per effective (ladder, transport) route for the whole
        # sweep.  Rebuilding per requeue round would mint a fresh chaos
        # nonce each time (``SweepExecutor.plan_key``), resetting the
        # workers' fault counters every round — a one-shot injected fault
        # would then re-fire on every retry instead of being retried past.
        headers: list = []

        try:
            while True:
                self._quarantine_over_budget(supervisor)
                tasks = self.pending_tasks()
                if not tasks:
                    return True

                self.ladder = supervisor.effective_ladder(base_ladder)
                self.transport = supervisor.effective_transport(base_transport)
                ladder_round = self.ladder
                # Re-derived every round: rung-latency EWMAs observed in
                # earlier rounds (and earlier sweeps of the campaign)
                # tighten the watchdog for this one.
                deadline_s = supervisor.task_deadline_s(
                    base_ladder, self.optimal_time_limit_s
                )

                def _route_header(transport: str):
                    cached = next(
                        (
                            (h, s)
                            for ladder, tp, h, s in headers
                            if ladder == ladder_round and tp == transport
                        ),
                        None,
                    )
                    if cached is not None:
                        return cached
                    previous = self.transport
                    self.transport = transport
                    try:
                        built = self._warm_header(executor)
                    finally:
                        self.transport = previous
                    headers.append((ladder_round, transport, *built))
                    return built

                try:
                    header, stats = _route_header(self.transport)
                except Exception as exc:  # unpicklable context: stay serial
                    self._warn_fallback(
                        f"sweep plan failed to encode ({exc!r})"
                    )
                    return False
                self.fanout = stats

                # Half-open transport trial: only ``probe_quota`` units
                # ride the shm route; the rest of the round takes the
                # known-good pickle header, bounding a failed trial's
                # blast radius to the probe batch.
                probe_quota = (
                    supervisor.transport_probe_quota()
                    if self.transport != "pickle"
                    and stats.transport == "warm-shm"
                    else None
                )
                fallback_header = header
                if probe_quota is not None:
                    try:
                        fallback_header, _ = _route_header("pickle")
                    except Exception as exc:
                        self._warn_fallback(
                            f"sweep plan failed to encode ({exc!r})"
                        )
                        return False

                units: dict = {}
                processed: set = set()
                running_seen: set = set()
                deadlines: dict = {}
                probe_futures: "set | None" = (
                    None if probe_quota is None else set()
                )
                probe_done: set = set()
                try:
                    pool = executor.pool()
                    if self.incremental:
                        chunked = True
                        submissions = [
                            (
                                executor_mod._warm_run_chain,
                                segment,
                                tuple((i, a) for i, algos in segment for a in algos),
                            )
                            for segment in self.chain_plan(tasks, workers)
                        ]
                    elif heavy and self._batched():
                        # Supervision unit = the whole batch chunk, so a
                        # batch failure charges only its member scenarios.
                        chunked = True
                        size = -(-len(tasks) // workers)
                        submissions = [
                            (executor_mod._warm_run_batch, chunk, tuple(chunk))
                            for chunk in (
                                list(tasks[k * size:(k + 1) * size])
                                for k in range(workers)
                            )
                            if chunk
                        ]
                    elif heavy:
                        chunked = False
                        submissions = [
                            (executor_mod._warm_run_task, task, (task,))
                            for task in tasks
                        ]
                    else:
                        chunked = True
                        size = -(-len(tasks) // workers)
                        submissions = [
                            (executor_mod._warm_run_chunk, chunk, tuple(chunk))
                            for chunk in (
                                list(tasks[k * size:(k + 1) * size])
                                for k in range(workers)
                            )
                            if chunk
                        ]
                    for n, (fn, payload, unit) in enumerate(submissions):
                        on_probe = probe_quota is None or n < probe_quota
                        future = pool.submit(
                            fn, header if on_probe else fallback_header, payload
                        )
                        units[future] = unit
                        if probe_futures is not None and on_probe:
                            probe_futures.add(future)

                    pending = set(units)
                    preempted = False
                    stored_rows = False
                    transport_fault = False
                    while pending:
                        done, pending = wait(
                            pending,
                            timeout=policy.poll_interval_s,
                            return_when=FIRST_COMPLETED,
                        )
                        for future in done:
                            if future.cancelled():
                                continue
                            try:
                                outcome = future.result()
                            except ChaosError as exc:
                                processed.add(future)
                                if "decode_context" in str(exc):
                                    transport_fault = True
                                self._charge_unit(
                                    supervisor, units[future], "task-fault",
                                    str(exc),
                                )
                                continue
                            processed.add(future)
                            stored_rows = True
                            if probe_futures is not None and future in probe_futures:
                                probe_done.add(future)
                            rows = outcome if chunked else [outcome]
                            for row in rows:
                                self._store(*row)
                                supervisor.observe_report(row[4])
                                if base_ladder is None:
                                    # Ladderless sweeps have no rung
                                    # events; the solve wall-clock feeds
                                    # the generic "task" EWMA instead.
                                    supervisor.observe_latency(
                                        "task", row[2].solve_time_s
                                    )

                        now = supervisor.clock()
                        for future in pending:
                            if future not in deadlines and future.running():
                                running_seen.add(future)
                                deadlines[future] = now + deadline_s * max(
                                    1, len(units[future])
                                )
                        expired = [
                            f for f in pending
                            if f in deadlines and now > deadlines[f]
                        ]
                        if expired:
                            # Hung worker(s): kill the whole pool — a
                            # wedged task cannot be cancelled — charge
                            # only the overdue units, requeue the rest.
                            supervisor.stats["preemptions"] += 1
                            pool_restarts += 1
                            executor.preempt()
                            for future in expired:
                                processed.add(future)
                                budget = deadline_s * max(1, len(units[future]))
                                self._charge_unit(
                                    supervisor, units[future], "preempted",
                                    f"unit exceeded its {budget:.1f}s deadline",
                                )
                            supervisor.events.append({
                                "action": "preempt",
                                "scenarios": sorted({
                                    self.scenarios[i].name
                                    for f in expired
                                    for i, _ in units[f]
                                }),
                            })
                            preempted = True
                            break

                        if supervisor.effective_ladder(base_ladder) != ladder_round:
                            # A breaker opened or half-opened mid-round:
                            # requeue everything not yet running under
                            # the new effective route.
                            for future in list(pending):
                                future.cancel()

                    if probe_futures is not None:
                        # Half-open trial: the probe batch alone decides.
                        # Every probe unit must have returned results over
                        # shm — cancelled/faulted probes don't count.
                        if (
                            not preempted
                            and not transport_fault
                            and probe_futures
                            and probe_done == probe_futures
                        ):
                            supervisor.observe_transport(True)
                    elif (
                        not preempted
                        and not pending
                        and stored_rows
                        and not transport_fault
                        and stats.transport == "warm-shm"
                    ):
                        # Results actually crossed the shm route this
                        # round — that is a transport success (closes a
                        # half-open breaker, resets consecutive counts).
                        supervisor.observe_transport(True)
                except ChaosError as exc:
                    # ``executor.respawn`` chaos: the host cannot fork
                    # replacement workers — only the serial path is left.
                    self._warn_fallback(f"pool respawn failed ({exc!r})")
                    return False
                except (OSError, pickle.PickleError, BrokenProcessPool) as exc:
                    supervisor.stats["pool_crashes"] += 1
                    pool_restarts += 1
                    executor.mark_broken()
                    blamed = [
                        f for f in running_seen if f not in processed
                    ] or [f for f in units if f not in processed]
                    for future in blamed:
                        processed.add(future)
                        self._charge_unit(
                            supervisor, units[future], "pool-crash", repr(exc)
                        )
                    if pool_restarts > policy.max_pool_restarts:
                        self._warn_fallback(
                            f"process pool failed {pool_restarts} times, "
                            f"exceeding max_pool_restarts="
                            f"{policy.max_pool_restarts} ({exc!r})"
                        )
                        return False
                finally:
                    self._flush_checkpoint()
        finally:
            self.ladder = base_ladder
            self.transport = base_transport

    def _charge_unit(self, supervisor, unit, cause: str, reason: str) -> None:
        """Charge one failed submission unit's scenarios to the ledger
        and stamp the failure on their results."""
        if cause == "task-fault":
            # Preemptions and pool crashes are counted once at their
            # detection sites; task faults are inherently per-unit.
            supervisor.stats["task_faults"] += 1
            if "decode_context" in reason:
                supervisor.observe_transport(False, reason)
        indices = sorted({i for i, _ in unit})
        names = [self.scenarios[i].name for i in indices]
        supervisor.charge(names, cause)
        for index in indices:
            self.results[index].degradation.record("supervisor", cause, reason)
            self._supervisor_meta(index)["events"].append({
                "action": cause,
                "reason": reason,
            })
        supervisor.events.append({
            "action": cause,
            "scenarios": names,
            "reason": reason,
        })

    def _warn_fallback(self, cause: str) -> None:
        reason = f"{cause}; completing remaining tasks serially"
        self.record_mode(reason, degraded=True)
        warnings.warn(DegradedResultWarning(f"parallel sweep degraded: {reason}"),
                      stacklevel=4)

    def finish(self) -> "list[ScenarioResult]":  # noqa: F821
        """Final checkpoint flush + cleanup, then the merged results.

        Solutions/evaluations dicts are reordered into the caller's
        algorithm order — pool futures complete in arbitrary order, but
        the output contract is "identical to the serial sweep".
        """
        self._flush_checkpoint()
        if self.checkpoint is not None and len(self.completed) == len(self.scenarios):
            self.checkpoint.clear()
        fanout = None if self.fanout is None else self.fanout.to_dict()
        for result in self.results:
            result.solutions = {
                a: result.solutions[a] for a in self.algorithms if a in result.solutions
            }
            result.evaluations = {
                a: result.evaluations[a]
                for a in self.algorithms
                if a in result.evaluations
            }
            if fanout is not None:
                result.meta["fanout"] = dict(fanout)
        return self.results


def fanout_summary(results: "Sequence[ScenarioResult]") -> dict[str, object] | None:  # noqa: F821
    """The sweep-level fan-out stats stamped on ``results`` (or ``None``).

    Every result of one sweep carries the same ``meta["fanout"]`` dict;
    this helper surfaces it once for reports and benchmarks.
    """
    for result in results:
        fanout = result.meta.get("fanout")
        if fanout is not None:
            return dict(fanout)
    return None


def store_summary(results: "Sequence[ScenarioResult]") -> dict[str, object] | None:  # noqa: F821
    """Aggregate store hit/miss/dedup provenance of one sweep's results.

    Sums the per-scenario ``meta["store"]`` stamps; ``None`` when the
    sweep ran without a store (or the store was bypassed under chaos).
    """
    hits = misses = dedup = stamped = 0
    decoded: dict[str, int] | None = None
    for result in results:
        stamp = result.meta.get("store")
        if stamp is None:
            continue
        stamped += 1
        hits += len(stamp.get("hits", ()))
        misses += len(stamp.get("misses", ()))
        if stamp.get("dedup_of"):
            dedup += 1
        if decoded is None and stamp.get("decoded") is not None:
            # Sweep-level delta, stamped identically on every scenario.
            decoded = dict(stamp["decoded"])
    if stamped == 0:
        return None
    summary = {
        "scenarios": stamped,
        "hits": hits,
        "misses": misses,
        "dedup": dedup,
    }
    if decoded is not None:
        summary["decoded"] = decoded
    return summary


def parallel_sweep(
    context: "ExperimentContext",  # noqa: F821
    scenarios: Sequence[FailureScenario],
    algorithms: Sequence[str],
    optimal_time_limit_s: float = 300.0,
    max_workers: int | None = None,
    optimal_compile: str = "sparse",
    min_parallel_tasks: int | None = None,
    ladder: LadderPolicy | None = None,
    validate: bool = False,
    checkpoint_path: object = None,
    checkpoint_every: int = 4,
    transport: str = "auto",
    incremental: bool = False,
    executor: "SweepExecutor | None" = None,  # noqa: F821
    supervisor: "SweepSupervisor | None" = None,  # noqa: F821
    store: SolveStore | None = None,
    lp_batch: int | None = None,
) -> "list[ScenarioResult]":  # noqa: F821
    """Run ``scenarios`` × ``algorithms`` over a process pool.

    Results are merged in scenario order with per-scenario algorithm
    order preserved, exactly as the serial sweep produces them.  Falls
    back to the serial path when ``max_workers`` resolves to ≤ 1, when
    the plan or a result refuses to pickle, or when the pool breaks —
    in the latter two cases only the *remaining* tasks are recomputed,
    and the cause is recorded on every affected result's
    ``degradation`` report and raised as a
    :class:`~repro.exceptions.DegradedResultWarning`.

    Small heuristic-only sweeps also stay serial: forking a pool and
    shipping the context costs tens of milliseconds, which a handful of
    sub-millisecond PM/RetroFlow tasks can never repay.  Any algorithm
    in ``_HEAVY_ALGORITHMS`` (exact solves) disables the heuristic, as
    does ``min_parallel_tasks=0``.

    Resilience knobs (see :mod:`repro.resilience`): ``ladder`` walks
    ``optimal`` solves down a degradation ladder, ``validate`` re-checks
    heuristic solutions, and ``checkpoint_path`` enables periodic
    checkpointing with bit-identical resume.

    Performance knobs: ``transport`` picks how the plan reaches workers
    (``"auto"`` prefers the zero-copy shared-memory route and degrades
    to pickle; ``"shm"`` degrades too but warns; ``"pickle"`` forces the
    classic route), ``incremental`` orders scenarios into a minimum-
    Hamming-distance chain and warm-starts each exact solve from its
    chain neighbor.  Both are pure execution strategies: results are
    bit-identical to the defaults, and neither affects the checkpoint
    fingerprint — a sweep may resume under a different transport or
    chaining mode.

    ``executor`` submits the sweep to a warm
    :class:`~repro.perf.executor.SweepExecutor` instead of spawning a
    fresh pool: workers persist across sweeps and cache the decoded
    plan, so every sweep after the first over a context runs near the
    pure-solve floor.  Results stay bit-identical; the executor's pool
    failures degrade to the serial path exactly like fresh-pool ones.

    ``supervisor`` wraps the warm route in a
    :class:`~repro.resilience.supervisor.SweepSupervisor`: per-unit
    deadlines with hung-worker preemption, retry budgets with poison-
    scenario quarantine to the serial ladder, and circuit breakers
    around the exact rungs and the shm transport.  Implies the warm
    route (the default executor is used when none is passed); with no
    faults observed the supervised sweep is bit-identical to the
    unsupervised one.

    ``store`` memoizes solves across parent processes and runs through a
    :class:`~repro.perf.store.SolveStore`: scenarios whose canonical
    instance fingerprint is already recorded restore their solutions
    from disk (validated, with evaluations recomputed — bit-identical to
    a fresh solve), equivalent scenarios within the sweep solve once and
    fan out, and fresh clean solves are written back for the next run.
    Defaults to the executor's store when one is attached.  Under an
    active chaos plan the store is bypassed entirely so fault injection
    still exercises real solves.

    ``lp_batch`` stacks up to that many same-shaped compiled ``optimal``
    scenarios into one block-diagonal LP relaxation per HiGHS call
    (:mod:`repro.perf.batch`), amortizing solver setup across the batch.
    Blocks whose slice fails the per-block certificate fall back to the
    scenario-at-a-time route individually, so results stay bit-identical
    and validator-clean.  Requires ``optimal_compile="sparse"`` and no
    ``ladder`` (silently ignored otherwise); composes with the store
    (hits settle before fan-out, so they skip the batches), incremental
    chaining (chain seeds become per-block warm starts), chaos (the
    ``batch.solve`` site attributes faults per block), and the
    supervisor (a batch failure charges only its member scenarios).
    Like ``transport``/``incremental`` it is a pure execution strategy
    and never enters the checkpoint fingerprint.
    """
    import os

    if transport not in _TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {_TRANSPORTS}"
        )
    if executor is not None and executor.closed:
        raise ValueError("executor is closed; create a new SweepExecutor")
    if supervisor is not None and executor is None:
        from repro.perf.executor import get_default_executor

        executor = get_default_executor(max_workers)
    if store is None and executor is not None:
        store = executor.store
    if store is not None and chaos.active_plan() is not None:
        # Replaying a recorded answer would skip the faulted code paths
        # chaos is trying to exercise — and a faulted solve must never
        # be recorded.  Bypass, don't nonce: the plan's purpose is to
        # observe real solves.
        store = None
    scenarios = tuple(scenarios)
    algorithms = tuple(algorithms)

    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path,
            sweep_fingerprint(
                [s.name for s in scenarios],
                algorithms,
                optimal_time_limit_s,
                optimal_compile,
            ),
        )

    runner = _SweepRunner(
        context,
        scenarios,
        algorithms,
        optimal_time_limit_s,
        optimal_compile,
        ladder,
        validate,
        checkpoint,
        checkpoint_every,
        transport=transport,
        incremental=incremental,
        store=store,
        lp_batch=lp_batch,
    )
    runner.restore()
    if store is not None:
        runner.probe_store()
    tasks = runner.pending_tasks()
    if not tasks:
        runner.settle_store()
        return runner.finish()

    if min_parallel_tasks is None:
        min_parallel_tasks = (
            _MIN_PARALLEL_TASKS_WARM if executor is not None else _MIN_PARALLEL_TASKS
        )
    heuristics_only = not any(a in _HEAVY_ALGORITHMS for a in algorithms)
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    workers = min(max_workers, len(tasks))

    if heuristics_only and len(tasks) < min_parallel_tasks:
        runner.record_mode(
            f"serial: {len(tasks)} heuristic-only tasks < "
            f"min_parallel_tasks={min_parallel_tasks}"
        )
        runner.run_serial(tasks)
    elif workers <= 1:
        runner.record_mode(f"serial: max_workers={max_workers} resolves to <= 1 worker")
        runner.run_serial(tasks)
    elif executor is not None and supervisor is not None:
        runner.record_mode(
            f"supervised-warm-pool: executor {executor.id}, {workers} workers, "
            f"{len(tasks)} tasks"
        )
        if not runner.run_supervised(tasks, workers, executor, supervisor):
            runner.run_serial(runner.pending_tasks())
    elif executor is not None:
        runner.record_mode(
            f"warm-pool: executor {executor.id}, {workers} workers, "
            f"{len(tasks)} tasks"
        )
        if not runner.run_warm(tasks, workers, executor):
            runner.run_serial(runner.pending_tasks())
    else:
        runner.record_mode(f"pool: {workers} workers, {len(tasks)} tasks")
        if not runner.run_pool(tasks, workers):
            runner.run_serial(runner.pending_tasks())
    runner.settle_store()
    return runner.finish()
