"""Process-pool execution of failure sweeps.

A sweep is embarrassingly parallel across scenarios × algorithms: every
task grounds its instance from the same shared data (topology, flows,
coefficient table) and writes to a disjoint result slot.  This module
fans those tasks over a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges results back in deterministic (scenario, algorithm) order, so
the output is indistinguishable from the serial sweep apart from
wall-clock time.

Workers receive one pickled :class:`SweepPlan` through the pool
initializer — the context (with its coefficient table materialized by
the parent, so no worker re-derives a single path count) is shipped once
per worker, not once per task.  Any failure to parallelize (payloads
that refuse to pickle, a platform without working process pools, a pool
that dies mid-sweep) degrades gracefully to the serial path.
"""

from __future__ import annotations

import pickle
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.baselines import get_algorithm
from repro.control.failures import FailureScenario
from repro.fmssm.evaluation import RecoveryEvaluation, evaluate_solution
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.optimal import solve_optimal
from repro.fmssm.solution import RecoverySolution

__all__ = ["SweepPlan", "parallel_sweep"]


@dataclass
class SweepPlan:
    """Everything a worker needs to run any (scenario, algorithm) task.

    The plan is pickled exactly once by the parent and unpickled exactly
    once per worker; workers then index into it by task.
    """

    context: "ExperimentContext"  # noqa: F821 - imported lazily (cycle)
    scenarios: tuple[FailureScenario, ...]
    optimal_time_limit_s: float = 300.0
    optimal_compile: str = "sparse"


#: Per-worker state, populated by :func:`_init_worker`.
_WORKER: dict[str, SweepPlan] = {}

#: Algorithms whose per-task cost dwarfs pool overhead (exact solves).
_HEAVY_ALGORITHMS = frozenset({"optimal", "optimal-two-stage", "retroflow-ip"})

#: Below this many heuristic-only tasks, pool startup cannot pay off.
_MIN_PARALLEL_TASKS = 64


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the shared plan once per worker."""
    _WORKER["plan"] = pickle.loads(payload)


def _solve(
    instance: FMSSMInstance,
    algorithm: str,
    time_limit_s: float,
    optimal_compile: str = "sparse",
) -> RecoverySolution:
    """Run one algorithm on one instance (same routing as the serial path)."""
    if algorithm == "optimal":
        return solve_optimal(
            instance, time_limit_s=time_limit_s, compile=optimal_compile
        )
    return get_algorithm(algorithm)(instance)


def _run_task(
    task: tuple[int, str],
) -> tuple[int, str, RecoverySolution, RecoveryEvaluation]:
    """Worker body: solve + evaluate one (scenario index, algorithm) task."""
    index, algorithm = task
    plan = _WORKER["plan"]
    instance = plan.context.instance(plan.scenarios[index])
    solution = _solve(
        instance, algorithm, plan.optimal_time_limit_s, plan.optimal_compile
    )
    return index, algorithm, solution, evaluate_solution(instance, solution)


def parallel_sweep(
    context: "ExperimentContext",  # noqa: F821
    scenarios: Sequence[FailureScenario],
    algorithms: Sequence[str],
    optimal_time_limit_s: float = 300.0,
    max_workers: int | None = None,
    optimal_compile: str = "sparse",
    min_parallel_tasks: int | None = None,
) -> "list[ScenarioResult]":  # noqa: F821
    """Run ``scenarios`` × ``algorithms`` over a process pool.

    Results are merged in scenario order with per-scenario algorithm
    order preserved, exactly as the serial sweep produces them.  Falls
    back to the serial path when ``max_workers`` resolves to ≤ 1, when
    the plan or a result refuses to pickle, or when the pool breaks.

    Small heuristic-only sweeps also stay serial: forking a pool and
    shipping the context costs tens of milliseconds, which a handful of
    sub-millisecond PM/RetroFlow tasks can never repay.  Any algorithm
    in ``_HEAVY_ALGORITHMS`` (exact solves) disables the heuristic, as
    does ``min_parallel_tasks=0``.
    """
    import os

    from repro.experiments.runner import ScenarioResult, run_scenario

    scenarios = tuple(scenarios)
    algorithms = tuple(algorithms)

    def serial() -> list[ScenarioResult]:
        return [
            run_scenario(
                context,
                scenario,
                algorithms,
                optimal_time_limit_s,
                optimal_compile=optimal_compile,
            )
            for scenario in scenarios
        ]

    tasks = [(i, a) for i in range(len(scenarios)) for a in algorithms]
    if min_parallel_tasks is None:
        min_parallel_tasks = _MIN_PARALLEL_TASKS
    heuristics_only = not any(a in _HEAVY_ALGORITHMS for a in algorithms)
    if heuristics_only and len(tasks) < min_parallel_tasks:
        return serial()
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    workers = min(max_workers, len(tasks))
    if workers <= 1 or not tasks:
        return serial()

    # Materialize the shared coefficient table in the parent so workers
    # inherit it (and the warm path-count cache) instead of re-deriving.
    try:
        context.materialize_table()
    except AttributeError:  # duck-typed contexts without a table cache
        pass
    try:
        payload = pickle.dumps(
            SweepPlan(context, scenarios, optimal_time_limit_s, optimal_compile),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    except Exception:  # unpicklable context/scenarios: stay serial
        return serial()

    results = [ScenarioResult(scenario=scenario) for scenario in scenarios]
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(payload,)
        ) as pool:
            for index, algorithm, solution, evaluation in pool.map(_run_task, tasks):
                results[index].solutions[algorithm] = solution
                results[index].evaluations[algorithm] = evaluation
    except (OSError, pickle.PicklingError, BrokenProcessPool):
        # Sandboxes without fork/spawn, or results that refuse to pickle.
        return serial()
    return results
