"""Process-pool execution of failure sweeps, with a resilience layer.

A sweep is embarrassingly parallel across scenarios × algorithms: every
task grounds its instance from the same shared data (topology, flows,
coefficient table) and writes to a disjoint result slot.  This module
fans those tasks over a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges results back in deterministic (scenario, algorithm) order, so
the output is indistinguishable from the serial sweep apart from
wall-clock time.

Workers receive one pickled :class:`SweepPlan` through the pool
initializer — the context (with its coefficient table materialized by
the parent, so no worker re-derives a single path count) is shipped once
per worker, not once per task.

Resilience (all opt-in, zero overhead when unused):

* Any failure to parallelize — payloads that refuse to pickle, a
  platform without working process pools, a pool that dies mid-sweep —
  degrades to the serial path for the *remaining* tasks, keeping every
  result already computed.  The cause is surfaced through a
  :class:`~repro.resilience.degradation.DegradationReport` on each
  :class:`ScenarioResult` and a
  :class:`~repro.exceptions.DegradedResultWarning` instead of silence.
* ``ladder=`` routes ``optimal`` solves through a degradation ladder
  (:func:`repro.resilience.degradation.solve_with_ladder`) so a dead or
  lying solver rung demotes instead of crashing the sweep.
* ``validate=True`` re-checks every heuristic solution against the
  instance's constraints (:mod:`repro.resilience.validate`).
* ``checkpoint_path=`` persists completed scenarios as JSON every
  ``checkpoint_every`` completions; a killed sweep resumes from the last
  checkpoint bit-identically to an uninterrupted run.

Fault-injection sites (``sweep.task``, ``sweep.payload``,
``sweep.checkpoint``) are threaded through the hot paths; see
:mod:`repro.resilience.chaos`.
"""

from __future__ import annotations

import pickle
import warnings
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.baselines import get_algorithm
from repro.control.failures import FailureScenario
from repro.exceptions import DegradedResultWarning
from repro.fmssm.evaluation import RecoveryEvaluation, evaluate_solution
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.optimal import solve_optimal
from repro.fmssm.solution import RecoverySolution
from repro.resilience import chaos
from repro.resilience.checkpoint import (
    SweepCheckpoint,
    result_from_json,
    result_to_json,
    sweep_fingerprint,
)
from repro.resilience.degradation import (
    DegradationReport,
    LadderPolicy,
    solve_with_ladder,
)

__all__ = ["SweepPlan", "parallel_sweep"]


@dataclass
class SweepPlan:
    """Everything a worker needs to run any (scenario, algorithm) task.

    The plan is pickled exactly once by the parent and unpickled exactly
    once per worker; workers then index into it by task.  The active
    chaos plan (if any) rides along so fault injection reaches worker
    processes.
    """

    context: "ExperimentContext"  # noqa: F821 - imported lazily (cycle)
    scenarios: tuple[FailureScenario, ...]
    optimal_time_limit_s: float = 300.0
    optimal_compile: str = "sparse"
    ladder: LadderPolicy | None = None
    validate: bool = False
    chaos_plan: "chaos.ChaosPlan | None" = field(default=None)


#: Per-worker state, populated by :func:`_init_worker`.
_WORKER: dict[str, SweepPlan] = {}

#: Algorithms whose per-task cost dwarfs pool overhead (exact solves).
_HEAVY_ALGORITHMS = frozenset({"optimal", "optimal-two-stage", "retroflow-ip"})

#: Below this many heuristic-only tasks, pool startup cannot pay off.
_MIN_PARALLEL_TASKS = 64


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the shared plan once per worker."""
    plan = pickle.loads(payload)
    _WORKER["plan"] = plan
    if plan.chaos_plan is not None:
        chaos.install(plan.chaos_plan)


def _solve(
    instance: FMSSMInstance,
    algorithm: str,
    time_limit_s: float,
    optimal_compile: str = "sparse",
    ladder: LadderPolicy | None = None,
    validate: bool = False,
) -> tuple[RecoverySolution, DegradationReport | None]:
    """Run one algorithm on one instance (same routing as the serial path).

    With a ladder, ``optimal`` solves walk the rung chain and return
    their degradation trail; heuristics optionally pass through the
    independent validator.
    """
    if algorithm == "optimal":
        if ladder is not None:
            return solve_with_ladder(instance, ladder)
        return (
            solve_optimal(
                instance, time_limit_s=time_limit_s, compile=optimal_compile
            ),
            None,
        )
    solution = get_algorithm(algorithm)(instance)
    if validate:
        from repro.resilience.validate import check_solution

        # Flow-level baselines legitimately trade the delay bound off.
        check_solution(instance, solution, enforce_delay=False)
    return solution, None


def _run_task(
    task: tuple[int, str],
) -> tuple[int, str, RecoverySolution, RecoveryEvaluation, dict | None]:
    """Worker body: solve + evaluate one (scenario index, algorithm) task."""
    chaos.check("sweep.task")
    index, algorithm = task
    plan = _WORKER["plan"]
    instance = plan.context.instance(plan.scenarios[index])
    solution, report = _solve(
        instance,
        algorithm,
        plan.optimal_time_limit_s,
        plan.optimal_compile,
        plan.ladder,
        plan.validate,
    )
    evaluation = evaluate_solution(instance, solution)
    return index, algorithm, solution, evaluation, (
        None if report is None else report.to_dict()
    )


class _SweepRunner:
    """One sweep execution: slots, checkpointing, and degradation audit."""

    def __init__(
        self,
        context: "ExperimentContext",  # noqa: F821
        scenarios: tuple[FailureScenario, ...],
        algorithms: tuple[str, ...],
        optimal_time_limit_s: float,
        optimal_compile: str,
        ladder: LadderPolicy | None,
        validate: bool,
        checkpoint: SweepCheckpoint | None,
        checkpoint_every: int,
    ) -> None:
        from repro.experiments.runner import ScenarioResult

        self.context = context
        self.scenarios = scenarios
        self.algorithms = algorithms
        self.optimal_time_limit_s = optimal_time_limit_s
        self.optimal_compile = optimal_compile
        self.ladder = ladder
        self.validate = validate
        self.checkpoint = checkpoint
        self.checkpoint_every = max(1, checkpoint_every)
        self.results = [
            ScenarioResult(scenario=scenario, degradation=DegradationReport())
            for scenario in scenarios
        ]
        #: Scenario indices fully solved (all algorithms present).
        self.completed: set[int] = set()
        #: Serialized payloads of completed scenarios (for checkpointing).
        self._payloads: dict[int, dict] = {}
        self._since_checkpoint = 0

    # -- checkpoint ----------------------------------------------------
    def restore(self) -> None:
        """Load previously completed scenarios from the checkpoint."""
        if self.checkpoint is None:
            return
        for index, payload in self.checkpoint.load().items():
            if not 0 <= index < len(self.scenarios):
                continue
            result = result_from_json(self.context, self.scenarios[index], payload)
            if result.degradation is None:
                result.degradation = DegradationReport()
            result.degradation.record(
                "checkpoint", "restore", f"restored from {self.checkpoint.path}"
            )
            self.results[index] = result
            self.completed.add(index)
            self._payloads[index] = payload

    def _scenario_done(self, index: int) -> None:
        """Mark a scenario complete; checkpoint every N completions."""
        self.completed.add(index)
        if self.checkpoint is None:
            return
        self._payloads[index] = result_to_json(self.results[index])
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self._flush_checkpoint()

    def _flush_checkpoint(self) -> None:
        if self.checkpoint is None or self._since_checkpoint == 0:
            return
        self.checkpoint.save(self._payloads)
        self._since_checkpoint = 0
        chaos.check("sweep.checkpoint")

    # -- bookkeeping ---------------------------------------------------
    def record_mode(self, reason: str, degraded: bool = False) -> None:
        """Stamp the execution mode onto every not-yet-completed result."""
        action = "serial-fallback" if degraded else "mode"
        for index, result in enumerate(self.results):
            if index not in self.completed:
                result.degradation.record("sweep", action, reason)

    def _store(
        self,
        index: int,
        algorithm: str,
        solution: RecoverySolution,
        evaluation: RecoveryEvaluation,
        report_dict: dict | None,
    ) -> None:
        result = self.results[index]
        result.solutions[algorithm] = solution
        result.evaluations[algorithm] = evaluation
        if report_dict is not None:
            task_report = DegradationReport.from_dict(report_dict)
            result.degradation.events.extend(task_report.events)
            if task_report.rung_used is not None:
                result.degradation.rung_used = task_report.rung_used
        if len(result.solutions) == len(self.algorithms):
            self._scenario_done(index)

    def pending_tasks(self) -> list[tuple[int, str]]:
        """Remaining (scenario index, algorithm) tasks, deterministic order."""
        return [
            (index, algorithm)
            for index in range(len(self.scenarios))
            if index not in self.completed
            for algorithm in self.algorithms
            if algorithm not in self.results[index].solutions
        ]

    # -- execution -----------------------------------------------------
    def run_serial(self, tasks: Sequence[tuple[int, str]]) -> None:
        """Solve ``tasks`` in-process, in deterministic order."""
        for index, algorithm in tasks:
            chaos.check("sweep.task")
            instance = self.context.instance(self.scenarios[index])
            solution, report = _solve(
                instance,
                algorithm,
                self.optimal_time_limit_s,
                self.optimal_compile,
                self.ladder,
                self.validate,
            )
            evaluation = evaluate_solution(instance, solution)
            self._store(
                index, algorithm, solution, evaluation,
                None if report is None else report.to_dict(),
            )

    def run_pool(self, tasks: Sequence[tuple[int, str]], workers: int) -> bool:
        """Fan ``tasks`` over a process pool; True when all completed.

        Returns False (after keeping every received result) when the
        pool breaks or a result refuses to pickle — the caller then
        finishes the remainder serially.  Task-level exceptions (solver
        bugs, validation failures without a ladder) propagate unchanged,
        exactly as the serial path would raise them.
        """
        try:
            self.context.materialize_table()
        except AttributeError:  # duck-typed contexts without a table cache
            pass
        try:
            payload = pickle.dumps(
                SweepPlan(
                    self.context,
                    self.scenarios,
                    self.optimal_time_limit_s,
                    self.optimal_compile,
                    self.ladder,
                    self.validate,
                    chaos.active_plan(),
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception as exc:  # unpicklable context/scenarios: stay serial
            self._warn_fallback(f"sweep plan failed to pickle ({exc!r})")
            return False
        payload = chaos.transform("sweep.payload", payload)

        try:
            with ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker, initargs=(payload,)
            ) as pool:
                futures = {pool.submit(_run_task, task): task for task in tasks}
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, algorithm, solution, evaluation, report = (
                            future.result()
                        )
                        self._store(index, algorithm, solution, evaluation, report)
        except (OSError, pickle.PicklingError, BrokenProcessPool) as exc:
            # Sandboxes without fork/spawn, a worker killed mid-task, or
            # results that refuse to pickle: keep what we have, finish
            # the rest serially.
            self._warn_fallback(f"process pool failed ({exc!r})")
            return False
        finally:
            self._flush_checkpoint()
        return True

    def _warn_fallback(self, cause: str) -> None:
        reason = f"{cause}; completing remaining tasks serially"
        self.record_mode(reason, degraded=True)
        warnings.warn(DegradedResultWarning(f"parallel sweep degraded: {reason}"),
                      stacklevel=4)

    def finish(self) -> "list[ScenarioResult]":  # noqa: F821
        """Final checkpoint flush + cleanup, then the merged results.

        Solutions/evaluations dicts are reordered into the caller's
        algorithm order — pool futures complete in arbitrary order, but
        the output contract is "identical to the serial sweep".
        """
        self._flush_checkpoint()
        if self.checkpoint is not None and len(self.completed) == len(self.scenarios):
            self.checkpoint.clear()
        for result in self.results:
            result.solutions = {
                a: result.solutions[a] for a in self.algorithms if a in result.solutions
            }
            result.evaluations = {
                a: result.evaluations[a]
                for a in self.algorithms
                if a in result.evaluations
            }
        return self.results


def parallel_sweep(
    context: "ExperimentContext",  # noqa: F821
    scenarios: Sequence[FailureScenario],
    algorithms: Sequence[str],
    optimal_time_limit_s: float = 300.0,
    max_workers: int | None = None,
    optimal_compile: str = "sparse",
    min_parallel_tasks: int | None = None,
    ladder: LadderPolicy | None = None,
    validate: bool = False,
    checkpoint_path: object = None,
    checkpoint_every: int = 4,
) -> "list[ScenarioResult]":  # noqa: F821
    """Run ``scenarios`` × ``algorithms`` over a process pool.

    Results are merged in scenario order with per-scenario algorithm
    order preserved, exactly as the serial sweep produces them.  Falls
    back to the serial path when ``max_workers`` resolves to ≤ 1, when
    the plan or a result refuses to pickle, or when the pool breaks —
    in the latter two cases only the *remaining* tasks are recomputed,
    and the cause is recorded on every affected result's
    ``degradation`` report and raised as a
    :class:`~repro.exceptions.DegradedResultWarning`.

    Small heuristic-only sweeps also stay serial: forking a pool and
    shipping the context costs tens of milliseconds, which a handful of
    sub-millisecond PM/RetroFlow tasks can never repay.  Any algorithm
    in ``_HEAVY_ALGORITHMS`` (exact solves) disables the heuristic, as
    does ``min_parallel_tasks=0``.

    Resilience knobs (see :mod:`repro.resilience`): ``ladder`` walks
    ``optimal`` solves down a degradation ladder, ``validate`` re-checks
    heuristic solutions, and ``checkpoint_path`` enables periodic
    checkpointing with bit-identical resume.
    """
    import os

    scenarios = tuple(scenarios)
    algorithms = tuple(algorithms)

    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path,
            sweep_fingerprint(
                [s.name for s in scenarios],
                algorithms,
                optimal_time_limit_s,
                optimal_compile,
            ),
        )

    runner = _SweepRunner(
        context,
        scenarios,
        algorithms,
        optimal_time_limit_s,
        optimal_compile,
        ladder,
        validate,
        checkpoint,
        checkpoint_every,
    )
    runner.restore()
    tasks = runner.pending_tasks()
    if not tasks:
        return runner.finish()

    if min_parallel_tasks is None:
        min_parallel_tasks = _MIN_PARALLEL_TASKS
    heuristics_only = not any(a in _HEAVY_ALGORITHMS for a in algorithms)
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    workers = min(max_workers, len(tasks))

    if heuristics_only and len(tasks) < min_parallel_tasks:
        runner.record_mode(
            f"serial: {len(tasks)} heuristic-only tasks < "
            f"min_parallel_tasks={min_parallel_tasks}"
        )
        runner.run_serial(tasks)
    elif workers <= 1:
        runner.record_mode(f"serial: max_workers={max_workers} resolves to <= 1 worker")
        runner.run_serial(tasks)
    else:
        runner.record_mode(f"pool: {workers} workers, {len(tasks)} tasks")
        if not runner.run_pool(tasks, workers):
            runner.run_serial(runner.pending_tasks())
    return runner.finish()
