"""Content-addressed cross-run solve memoization (``repro.perf.store``).

:class:`~repro.perf.executor.SweepExecutor` keeps artifacts warm only
within one parent process's lifetime — every fresh CLI invocation,
campaign restart or *concurrent* parent re-solves identical failure
scenarios from scratch.  This module closes that gap with a disk-backed,
content-addressed store shared across processes and runs:

Canonical scenario fingerprints
    :func:`instance_fingerprint` hashes the *induced* FMSSM instance —
    offline switches, active controllers with residual capacities, the
    delay and coefficient slices, γ, λ, G and the nearest-controller
    map — after **order-preserving canonical relabeling**: switches,
    controllers and flows are renamed to dense positions in their sorted
    order, and the flow insertion-order → sorted-rank permutation is
    hashed too (solver tie-breaks depend on relative order, so only
    order-*preserving* relabelings keep solves bit-identical).  Two
    scenarios with the same fingerprint induce byte-identical solver
    inputs up to labels, so one solve serves both — within a sweep,
    across sweeps, and across runs.

Sharded, checksummed record store
    :class:`SolveStore` appends JSON records to ``shards`` JSONL files
    under a single writer lock (``fcntl.flock``) with a put-if-absent
    re-check, so concurrent parents never duplicate a key.  Readers are
    lock-free: each shard is indexed in memory and re-read only when its
    ``(mtime_ns, size)`` changes.  Every record carries a SHA-256 of its
    payload — torn appends (a crash mid-write) and corrupt records are
    skipped and counted, never trusted.  :meth:`SolveStore.gc` bounds
    the store's size by atomically rewriting shards oldest-first.

Expensive intermediates
    Besides :class:`ScenarioResult` solutions, the store holds the
    compiler's sparse P′ structural blocks (:meth:`SolveStore.
    put_arrays` / :meth:`~SolveStore.get_arrays`, atomic ``.npz``
    artifacts keyed by (N, M, P)) and per-topology hop-distance tables
    (JSON records keyed by :func:`topology_fingerprint`), so a cold
    process skips the BFS and block-assembly work too.

Solutions and their evaluations are stored in *canonical label space*
and translated back through the probing instance's labels on a hit
(:func:`solution_from_canonical` / :func:`evaluation_from_canonical`);
both round-trip bit-identically, so a replayed result is
indistinguishable from a fresh solve.  Records are checksummed, and the
sweep layer additionally re-validates hits against the probing instance
when it runs with ``validate=True`` (mirroring how fresh solves are
validated).  Under an active chaos plan the sweep layer bypasses the
store entirely so fault injection still exercises real solves.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import operator
import io
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution

__all__ = [
    "CanonicalInstance",
    "SolveStore",
    "canonical_instance",
    "instance_fingerprint",
    "canonical_solution",
    "canonical_evaluation",
    "solution_from_canonical",
    "evaluation_from_canonical",
    "decode_record",
    "decoded_cache_stats",
    "set_decoded_cache_cap",
    "solve_key",
    "topology_fingerprint",
]

STORE_SCHEMA = 1

#: Max decoded ``(algorithm, sha)`` pairs memoized per canonical
#: instance; least-recently-used entries are evicted past the cap.
#: Configurable via :func:`set_decoded_cache_cap`.
DECODED_CACHE_CAP = 64

#: Process-wide decoded-object cache telemetry (see
#: :func:`decoded_cache_stats`).
_DECODED_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def set_decoded_cache_cap(cap: int) -> int:
    """Set the per-instance decoded-object cache cap; returns the old one.

    The cap bounds how many decoded ``(algorithm, sha)`` records each
    :class:`CanonicalInstance` memoizes (:func:`decode_record`); caps
    below 1 are clamped to 1 so repeat hits of the *same* record still
    avoid re-decoding.
    """
    global DECODED_CACHE_CAP
    old, DECODED_CACHE_CAP = DECODED_CACHE_CAP, max(1, int(cap))
    return old


def decoded_cache_stats() -> dict[str, int]:
    """Snapshot of the decoded-object cache counters (this process).

    ``hits``/``misses`` count :func:`decode_record` lookups by content
    sha; ``evictions`` counts entries dropped by the LRU cap.  Sweeps
    stamp the per-sweep delta on ``meta["store"]["decoded"]``.
    """
    return dict(_DECODED_STATS)

#: Version tag mixed into every fingerprint: bump to invalidate stores
#: when the hashed content or the relabeling convention changes.
_FP_VERSION = b"fmssm-fp-v1"


# ----------------------------------------------------------------------
# Canonical relabeling + fingerprint
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CanonicalInstance:
    """An instance's canonical label maps plus its content fingerprint.

    ``switches[i]`` / ``controllers[j]`` / ``flow_ids[r]`` translate
    canonical positions back to this instance's labels; the ``*_pos`` /
    ``flow_rank`` dicts translate the other way.  Instances with equal
    ``fingerprint`` have byte-identical solver-visible content once both
    are expressed in positions, so a solution computed on one translates
    exactly onto the other.
    """

    fingerprint: str
    switches: tuple
    controllers: tuple
    flow_ids: tuple
    switch_pos: dict
    controller_pos: dict
    flow_rank: dict
    #: ``instance.pairs`` verbatim plus its frozenset and pair → index
    #: map.  Pair order is hashed into the fingerprint, so an index into
    #: ``pairs`` means the same pair on every equivalent instance — the
    #: solution codec stores pair *indices* (or the ``"all"`` sentinel)
    #: instead of thousands of explicit pair rows.
    pairs: tuple
    pair_set: frozenset
    pair_pos: dict


def canonical_instance(instance: FMSSMInstance) -> CanonicalInstance:
    """The cached canonical form of ``instance`` (computed once).

    Hashes every solver-visible field of the induced instance in
    canonical label space: counts, spare capacities (controller order),
    the delay matrix (switch-major float64 bytes), γ, the programmable
    pairs with their p̄ coefficients (in ``instance.pairs`` order, which
    is label-order-stable), the flow insertion-order permutation (PM's
    iteration order and several tie-breaks follow it), G and λ, and the
    nearest-controller map.  ``Flow`` payloads beyond the id are *not*
    hashed: nothing downstream of instance induction reads them.
    """
    cached = instance.__dict__.get("_canonical_instance")
    if cached is not None:
        return cached

    switches = instance.switches
    controllers = instance.controllers
    flow_ids = tuple(sorted(instance.flows))
    switch_pos = {s: i for i, s in enumerate(switches)}
    controller_pos = {c: j for j, c in enumerate(controllers)}
    flow_rank = {f: r for r, f in enumerate(flow_ids)}

    h = hashlib.sha256(_FP_VERSION)
    h.update(repr((
        len(switches), len(controllers), len(flow_ids), len(instance.pairs),
    )).encode())
    h.update(np.asarray(
        [instance.spare[c] for c in controllers], dtype=np.int64
    ).tobytes())
    h.update(np.asarray(
        [instance.delay[(s, c)] for s in switches for c in controllers],
        dtype=np.float64,
    ).tobytes())
    h.update(np.asarray(
        [instance.gamma[s] for s in switches], dtype=np.int64
    ).tobytes())
    pair_rows = np.empty((len(instance.pairs), 3), dtype=np.int64)
    for k, (s, f) in enumerate(instance.pairs):
        pair_rows[k, 0] = switch_pos[s]
        pair_rows[k, 1] = flow_rank[f]
        pair_rows[k, 2] = instance.pbar[(s, f)]
    h.update(pair_rows.tobytes())
    h.update(np.asarray(
        [flow_rank[f] for f in instance.flows], dtype=np.int64
    ).tobytes())
    h.update(np.float64(instance.ideal_delay_ms).tobytes())
    h.update(np.float64(instance.lam).tobytes())
    h.update(np.asarray(
        [controller_pos[instance.nearest[s]] for s in switches], dtype=np.int64
    ).tobytes())

    canon = CanonicalInstance(
        fingerprint=h.hexdigest()[:32],
        switches=switches,
        controllers=controllers,
        flow_ids=flow_ids,
        switch_pos=switch_pos,
        controller_pos=controller_pos,
        flow_rank=flow_rank,
        pairs=instance.pairs,
        pair_set=frozenset(instance.pairs),
        pair_pos={pair: k for k, pair in enumerate(instance.pairs)},
    )
    instance.__dict__["_canonical_instance"] = canon
    return canon


def instance_fingerprint(instance: FMSSMInstance) -> str:
    """Content fingerprint of the induced instance (cached)."""
    return canonical_instance(instance).fingerprint


def solve_key(
    fingerprint: str,
    algorithm: str,
    optimal_time_limit_s: float,
    optimal_compile: str,
) -> str:
    """Record key of one (instance, algorithm, solve parameters) triple.

    Heuristics have no knobs that change their output, so their keys
    carry only the fingerprint and the name; exact solves additionally
    key on the compile route and the time limit (conservative — a
    completed solve does not depend on the limit, but sharing across
    limits would make a hit's provenance ambiguous).
    """
    from repro.perf.sweep import _HEAVY_ALGORITHMS

    if algorithm in _HEAVY_ALGORITHMS:
        params = hashlib.sha256(repr(
            (float(optimal_time_limit_s), str(optimal_compile))
        ).encode()).hexdigest()[:12]
    else:
        params = "-"
    return f"{fingerprint}:{algorithm}:{params}"


# ----------------------------------------------------------------------
# Solution <-> canonical payload
# ----------------------------------------------------------------------

def canonical_solution(
    solution: RecoverySolution, canon: CanonicalInstance
) -> dict[str, object]:
    """``solution`` as a JSON-safe dict in canonical label space.

    The field shape mirrors :func:`repro.resilience.checkpoint.
    solution_to_json` (sorted pairs, repr-round-trip floats) with ids
    replaced by canonical positions/ranks.  ``meta`` is copied verbatim:
    every solver's meta is label-free scalars by contract (asserted in
    the store tests), so it needs no translation.

    ``sdn_pairs`` collapses to the ``"all"`` sentinel when the solution
    recovers every programmable pair — the overwhelmingly common case —
    and to a packed vector of pair *indices* otherwise; per-pair
    controller overrides pack the same way.  Pair order is hashed into
    the fingerprint, so indices mean the same pairs on every equivalent
    instance, and records stay at a few hundred bytes instead of the
    tens of kilobytes explicit pair lists cost on WAN-sized instances
    (the store-hit fast path parses every record it replays).
    """
    sp, cp, pp = canon.switch_pos, canon.controller_pos, canon.pair_pos
    overrides = sorted(
        (pp[pair], cp[c]) for pair, c in solution.pair_controller.items()
    )
    return {
        "algorithm": solution.algorithm,
        "mapping": sorted([sp[s], cp[c]] for s, c in solution.mapping.items()),
        "sdn_pairs": (
            "all"
            if frozenset(solution.sdn_pairs) == canon.pair_set
            else _pack_ints(sorted(pp[pair] for pair in solution.sdn_pairs))
        ),
        "pair_controller": (
            None
            if not overrides
            else {
                "i": _pack_ints([k for k, _ in overrides]),
                "c": _pack_ints([c for _, c in overrides]),
            }
        ),
        "extra_overhead_ms": solution.extra_overhead_ms,
        "load_override": (
            None
            if solution.load_override is None
            else sorted([cp[c], n] for c, n in solution.load_override.items())
        ),
        "solve_time_s": solution.solve_time_s,
        "feasible": solution.feasible,
        "meta": dict(solution.meta),
    }


def solution_from_canonical(
    payload: dict[str, object], canon: CanonicalInstance
) -> RecoverySolution:
    """Translate a canonical payload onto ``canon``'s instance labels.

    Inverse of :func:`canonical_solution` up to relabeling: applied with
    the *probing* instance's canonical maps, the stored representative's
    solution becomes this instance's solution.  ``solve_time_s`` replays
    the stored wall clock (same policy as checkpoint resume).
    """
    sw, co = canon.switches, canon.controllers
    sdn_pairs = payload["sdn_pairs"]
    overrides = payload["pair_controller"]
    return RecoverySolution(
        algorithm=str(payload["algorithm"]),
        mapping={sw[s]: co[c] for s, c in payload["mapping"]},
        sdn_pairs=(
            _all_pairs_set(canon)
            if sdn_pairs == "all"
            else set(_pick(canon.pairs, _unpack_ints(sdn_pairs)))
        ),
        pair_controller=(
            {}
            if not overrides
            else dict(zip(
                _pick(canon.pairs, _unpack_ints(overrides["i"])),
                _pick(co, _unpack_ints(overrides["c"])),
            ))
        ),
        extra_overhead_ms=payload["extra_overhead_ms"],
        load_override=(
            None
            if payload["load_override"] is None
            else {co[c]: n for c, n in payload["load_override"]}
        ),
        solve_time_s=payload["solve_time_s"],
        feasible=bool(payload["feasible"]),
        meta=dict(payload["meta"]),
    )


def _pick(seq, idx: list):
    """``tuple(seq[k] for k in idx)``, via one C-level itemgetter call."""
    if len(idx) > 1:
        return operator.itemgetter(*idx)(seq)
    return (seq[idx[0]],) if idx else ()


def _all_pairs_set(canon: CanonicalInstance) -> set:
    """A fresh mutable copy of ``canon``'s full pair set.

    ``set.copy`` duplicates the hash table without rehashing the pair
    tuples, so an ``"all"``-sentinel hit costs a memcpy instead of a
    full set build; the master copy is memoized on the (frozen) canon
    via ``object.__setattr__``.
    """
    master = canon.__dict__.get("_all_pairs")
    if master is None:
        master = set(canon.pair_set)
        object.__setattr__(canon, "_all_pairs", master)
    return master.copy()


def _pack_ints(values) -> dict[str, str]:
    """An int sequence as ``{"d": dtype, "b": base64}`` — one JSON token.

    Per-flow programmability and pair-index vectors run to thousands of
    elements; as JSON lists they would cost more to parse than the
    solves they memoize.  A single base64 blob tokenizes in microseconds
    and decodes with ``np.frombuffer``; the dtype is the narrowest
    little-endian signed width that holds the range.
    """
    array = np.asarray(values, dtype=np.int64)
    dtype = "<i8"
    for narrow in ("<i1", "<i2", "<i4"):
        info = np.iinfo(narrow)
        if array.size == 0 or (
            array.min() >= info.min and array.max() <= info.max
        ):
            dtype = narrow
            break
    return {
        "d": dtype,
        "b": base64.b64encode(array.astype(dtype).tobytes()).decode("ascii"),
    }


def _unpack_ints(blob: dict[str, str]) -> list[int]:
    # binascii directly: base64.b64decode's wrapper costs more than the
    # decode itself at this call rate.
    return np.frombuffer(
        binascii.a2b_base64(blob["b"]), dtype=blob["d"]
    ).tolist()


def canonical_evaluation(evaluation, canon: CanonicalInstance) -> dict[str, object]:
    """A :class:`~repro.fmssm.evaluation.RecoveryEvaluation` in canonical
    label space, JSON-safe.

    Everything except ``programmability`` (flow ids → ranks) and
    ``controller_load`` (controller ids → positions) is label-free and
    copied verbatim; JSON round-trips Python floats exactly, so a replay
    reproduces every metric bit for bit.  ``_recoverable_set`` is not
    stored — it is a pure function of the instance and is re-derived on
    load.
    """
    cp, fr = canon.controller_pos, canon.flow_rank
    programmability = evaluation.programmability
    if len(programmability) == len(canon.flow_ids):
        # Dense: one value per flow — the evaluator fills every offline
        # flow — so ranks are implicit in flow-rank order.
        prog = {"dense": _pack_ints(
            [programmability[f] for f in canon.flow_ids]
        )}
    else:
        ranks = sorted(fr[f] for f in programmability)
        prog = {
            "ranks": _pack_ints(ranks),
            "values": _pack_ints(
                [programmability[canon.flow_ids[r]] for r in ranks]
            ),
        }
    return {
        "feasible": evaluation.feasible,
        "prog": prog,
        "least": evaluation.least_programmability,
        "total": evaluation.total_programmability,
        "recovered_flows": evaluation.recovered_flows,
        "recoverable_flows": evaluation.recoverable_flows,
        "offline_flows": evaluation.offline_flows,
        "recovered_switches": evaluation.recovered_switches,
        "offline_switches": evaluation.offline_switches,
        "controller_load": sorted(
            [cp[c], n] for c, n in evaluation.controller_load.items()
        ),
        "total_delay_ms": evaluation.total_delay_ms,
        "ideal_delay_ms": evaluation.ideal_delay_ms,
        "per_flow_overhead_ms": evaluation.per_flow_overhead_ms,
        "objective": evaluation.objective,
        "solve_time_s": evaluation.solve_time_s,
    }


def evaluation_from_canonical(
    payload: dict[str, object],
    canon: CanonicalInstance,
    instance: FMSSMInstance,
    algorithm: str,
):
    """Inverse of :func:`canonical_evaluation` on ``canon``'s instance.

    Bit-identical to ``evaluate_solution`` on the replayed solution:
    every stored field round-trips exactly and the recoverable-flow set
    is re-derived from the (equivalent) instance itself.
    """
    from repro.fmssm.evaluation import RecoveryEvaluation, _recoverable_set

    co, fl = canon.controllers, canon.flow_ids
    prog = payload["prog"]
    if "dense" in prog:
        programmability = dict(zip(fl, _unpack_ints(prog["dense"])))
    else:
        programmability = dict(zip(
            _pick(fl, _unpack_ints(prog["ranks"])),
            _unpack_ints(prog["values"]),
        ))
    return RecoveryEvaluation(
        algorithm=algorithm,
        feasible=bool(payload["feasible"]),
        programmability=programmability,
        least_programmability=payload["least"],
        total_programmability=payload["total"],
        recovered_flows=payload["recovered_flows"],
        recoverable_flows=payload["recoverable_flows"],
        offline_flows=payload["offline_flows"],
        recovered_switches=payload["recovered_switches"],
        offline_switches=payload["offline_switches"],
        controller_load={co[c]: n for c, n in payload["controller_load"]},
        total_delay_ms=payload["total_delay_ms"],
        ideal_delay_ms=payload["ideal_delay_ms"],
        per_flow_overhead_ms=payload["per_flow_overhead_ms"],
        objective=payload["objective"],
        solve_time_s=payload["solve_time_s"],
        _recoverable_set=_recoverable_set(instance),
    )


def _clone_solution(solution: RecoverySolution) -> RecoverySolution:
    """A fresh, independently mutable twin of a decoded solution.

    ``set.copy``/``dict.copy`` duplicate hash tables without rehashing
    the (tuple) keys, so a clone costs a few memcpys where a full
    decode hashes thousands of entries.
    """
    return RecoverySolution(
        algorithm=solution.algorithm,
        mapping=solution.mapping.copy(),
        sdn_pairs=solution.sdn_pairs.copy(),
        pair_controller=solution.pair_controller.copy(),
        extra_overhead_ms=solution.extra_overhead_ms,
        load_override=(
            None
            if solution.load_override is None
            else solution.load_override.copy()
        ),
        solve_time_s=solution.solve_time_s,
        feasible=solution.feasible,
        meta=solution.meta.copy(),
    )


def _clone_evaluation(evaluation):
    """A fresh twin of a decoded evaluation (same no-rehash trick).

    ``_recoverable_set`` is an immutable frozenset shared by every
    evaluation of the same instance, exactly as ``evaluate_solution``
    shares its cached one.
    """
    from repro.fmssm.evaluation import RecoveryEvaluation

    return RecoveryEvaluation(
        algorithm=evaluation.algorithm,
        feasible=evaluation.feasible,
        programmability=evaluation.programmability.copy(),
        least_programmability=evaluation.least_programmability,
        total_programmability=evaluation.total_programmability,
        recovered_flows=evaluation.recovered_flows,
        recoverable_flows=evaluation.recoverable_flows,
        offline_flows=evaluation.offline_flows,
        recovered_switches=evaluation.recovered_switches,
        offline_switches=evaluation.offline_switches,
        controller_load=evaluation.controller_load.copy(),
        total_delay_ms=evaluation.total_delay_ms,
        ideal_delay_ms=evaluation.ideal_delay_ms,
        per_flow_overhead_ms=evaluation.per_flow_overhead_ms,
        objective=evaluation.objective,
        solve_time_s=evaluation.solve_time_s,
        _recoverable_set=evaluation._recoverable_set,
    )


def decode_record(
    record: dict,
    canon: CanonicalInstance,
    instance: FMSSMInstance,
    algorithm: str,
    sha: str | None = None,
):
    """``(solution, evaluation)`` decoded from a store record.

    When ``sha`` (the record's content checksum) is given, the decoded
    pair is memoized on ``canon`` and repeat hits of the same content
    return independent clones instead of re-decoding — replaying a
    sweep a second time in one process costs container copies, not
    tuple hashing.  The cache key is ``(algorithm, sha)``: the sha pins
    the payload bytes, the canon pins the label space, so a record
    GC'd and re-solved (fresh ``solve_time_s``) can never alias a
    stale decode.  The cache is LRU-bounded to :data:`DECODED_CACHE_CAP`
    entries per canon (a campaign probing many algorithms over one
    fingerprint must not pin every decode forever); evictions are
    counted in :func:`decoded_cache_stats`.  ``evaluation`` is ``None``
    for records predating stored evaluations.
    """
    from collections import OrderedDict

    cache = canon.__dict__.get("_decoded")
    if cache is None:
        cache = OrderedDict()
        object.__setattr__(canon, "_decoded", cache)
    token = (algorithm, sha)
    cached = cache.get(token) if sha is not None else None
    if cached is None:
        solution = solution_from_canonical(record["solution"], canon)
        stored_eval = record.get("evaluation")
        evaluation = (
            evaluation_from_canonical(stored_eval, canon, instance, algorithm)
            if stored_eval is not None
            else None
        )
        if sha is not None:
            _DECODED_STATS["misses"] += 1
            cache[token] = (solution, evaluation)
            while len(cache) > max(1, DECODED_CACHE_CAP):
                cache.popitem(last=False)
                _DECODED_STATS["evictions"] += 1
            return _clone_solution(solution), (
                None if evaluation is None else _clone_evaluation(evaluation)
            )
        return solution, evaluation
    _DECODED_STATS["hits"] += 1
    cache.move_to_end(token)
    solution, evaluation = cached
    return _clone_solution(solution), (
        None if evaluation is None else _clone_evaluation(evaluation)
    )


def topology_fingerprint(topology) -> str:
    """Content fingerprint of a topology's *hop structure*.

    Hop-distance tables depend only on the node set and the undirected
    edge set, so that is all that is hashed (not geography or delays).
    """
    h = hashlib.sha256(b"topo-hops-v1")
    h.update(repr(tuple(topology.nodes)).encode())
    h.update(repr(tuple(topology.edges())).encode())
    return h.hexdigest()[:32]


# ----------------------------------------------------------------------
# The disk store
# ----------------------------------------------------------------------

class SolveStore:
    """Disk-backed content-addressed record + artifact store.

    Layout under ``root``::

        records/shard-XX.jsonl   # one JSON record per line, checksummed
        records/.lock            # writer lock (fcntl.flock)
        artifacts/<name>.npz     # named numpy-dict artifacts (atomic)

    Concurrency contract: any number of processes may read and write one
    store directory concurrently.  Writers serialize on the lock file
    and re-check for the key under the lock (put-if-absent), so a key is
    never recorded twice; readers never take the lock — they re-read a
    shard only when its stat signature changes, and skip any line whose
    checksum or JSON does not verify (counted in ``stats["corrupt"]``).
    GC rewrites shards to a temp file and ``os.replace``\\ s them, which
    POSIX keeps safe for concurrent readers (they finish on the old
    inode).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        shards: int = 16,
        max_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = Path(root)
        self.shards = shards
        self.max_bytes = max_bytes
        self._records_dir = self.root / "records"
        self._artifacts_dir = self.root / "artifacts"
        self._records_dir.mkdir(parents=True, exist_ok=True)
        self._artifacts_dir.mkdir(parents=True, exist_ok=True)
        self._shard_paths = tuple(
            self._records_dir / f"shard-{shard:02x}.jsonl"
            for shard in range(shards)
        )
        #: Per-shard in-memory index:
        #: shard -> (stat signature, {key: payload}, {key: payload sha}).
        self._index: dict[
            int, tuple[tuple[int, int], dict[str, dict], dict[str, str]]
        ] = {}
        self.stats = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "corrupt": 0,
            "artifact_hits": 0,
            "artifact_misses": 0,
            "artifact_writes": 0,
            "gc_dropped": 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"SolveStore({str(self.root)!r}, shards={self.shards})"

    # -- records -------------------------------------------------------
    def _shard_of(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:4], "big") % self.shards

    def _shard_path(self, shard: int) -> Path:
        return self._shard_paths[shard]

    @staticmethod
    def _payload_sha(payload: dict) -> str:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    @classmethod
    def _encode_line(cls, key: str, payload: dict) -> bytes:
        """One record line; the checksum covers the payload's exact bytes.

        The field order is fixed so readers can slice key/sha/payload
        out of the raw line without a full JSON parse: the payload
        substring is byte-for-byte what the sha was computed over.
        """
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        sha = hashlib.sha256(blob.encode()).hexdigest()[:16]
        head = '{"v":%d,"key":%s,"sha":"%s","payload":' % (
            STORE_SCHEMA, json.dumps(key), sha,
        )
        return head.encode() + blob.encode() + b"}"

    _LINE_HEAD = ('{"v":%d,"key":"' % STORE_SCHEMA).encode()
    _SHA_MARK = b'","sha":"'
    _PAYLOAD_MARK = b'","payload":'

    def _parse_lines(
        self, data: bytes
    ) -> tuple[dict[str, dict], dict[str, str]]:
        """Verified ``(records, content shas)`` from raw shard bytes;
        corrupt lines skipped."""
        records: dict[str, dict] = {}
        shas: dict[str, str] = {}
        head, sha_mark, pay_mark = (
            self._LINE_HEAD, self._SHA_MARK, self._PAYLOAD_MARK
        )
        for line in data.split(b"\n"):
            if not line.strip():
                continue
            # Fast path: slice key/sha/payload straight out of the raw
            # bytes (field order is fixed by _encode_line) and verify
            # the checksum over the payload substring — no re-dump.
            cut = line.find(sha_mark, len(head))
            if (
                line.startswith(head)
                and line.endswith(b"}")
                and cut > 0
                and b"\\" not in line[len(head):cut]
                and line[cut + 25:cut + 25 + len(pay_mark)] == pay_mark
            ):
                payload_bytes = line[cut + 25 + len(pay_mark):-1]
                sha = line[cut + len(sha_mark):cut + 25]
                if hashlib.sha256(payload_bytes).hexdigest()[:16].encode() == sha:
                    try:
                        payload = json.loads(payload_bytes)
                    except ValueError:
                        self.stats["corrupt"] += 1
                        continue
                    key = line[len(head):cut].decode()
                    records[key] = payload
                    shas[key] = sha.decode()
                    continue
            # Slow path: escaped keys or legacy field order.
            try:
                record = json.loads(line)
                key = record["key"]
                payload = record["payload"]
                ok = (
                    record.get("v") == STORE_SCHEMA
                    and isinstance(key, str)
                    and record.get("sha") == self._payload_sha(payload)
                )
            except (ValueError, KeyError, TypeError):
                ok = False
            if not ok:
                self.stats["corrupt"] += 1
                continue
            records[key] = payload
            shas[key] = record["sha"]
        return records, shas

    def _shard_records(self, shard: int) -> dict[str, dict]:
        """The shard's verified records, re-read only when the file changed."""
        path = self._shard_path(shard)
        try:
            stat = path.stat()
            sig = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            self._index[shard] = ((-1, -1), {}, {})
            return self._index[shard][1]
        cached = self._index.get(shard)
        if cached is not None and cached[0] == sig:
            return cached[1]
        try:
            data = path.read_bytes()
        except OSError:
            data = b""
        records, shas = self._parse_lines(data)
        self._index[shard] = (sig, records, shas)
        return records

    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or ``None`` (lock-free)."""
        payload = self._shard_records(self._shard_of(key)).get(key)
        if payload is None:
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return payload

    def sha_of(self, key: str) -> str | None:
        """The stored record's content checksum, or ``None`` if absent.

        The sha identifies the payload *bytes*, so it is a process-wide
        stable token for "this exact stored result" — the decoded-object
        cache keys on it to replay repeat hits without re-decoding.
        """
        self._shard_records(self._shard_of(key))
        entry = self._index.get(self._shard_of(key))
        return entry[2].get(key) if entry is not None else None

    def _locked(self):
        """Writer lock shared by every process using this store root."""
        import fcntl
        from contextlib import contextmanager

        @contextmanager
        def hold():
            fd = os.open(self._records_dir / ".lock", os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)

        return hold()

    def put(self, key: str, payload: dict) -> bool:
        """Append ``payload`` under ``key``; ``False`` if already present.

        Single-writer append: the shard is re-read *under the lock*
        before writing, so two processes racing on one key produce one
        record.  A torn tail left by a crashed writer (no trailing
        newline) is repaired by prefixing a newline — the torn fragment
        stays an isolated, checksum-failing line that readers skip.
        """
        shard = self._shard_of(key)
        path = self._shard_path(shard)
        # Fast path: _shard_records revalidates against the file's stat
        # signature, so a key visible there is present on disk — skip
        # the lock round-trip.  (A concurrent GC dropping it right now
        # is indistinguishable from GC dropping the record just after a
        # locked put, so put-if-absent stays honest.)
        if key in self._shard_records(shard):
            return False
        with self._locked():
            self._index.pop(shard, None)  # force a fresh read under the lock
            if key in self._shard_records(shard):
                return False
            line = self._encode_line(key, payload)
            with open(path, "a+b") as fh:
                fh.seek(0, io.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(-1, io.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.write(b"\n")
                fh.write(line + b"\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._index.pop(shard, None)
        self.stats["writes"] += 1
        return True

    def put_many(self, items: list[tuple[str, dict]]) -> int:
        """Append many records under one lock acquisition; returns writes.

        Same put-if-absent contract as :meth:`put`, amortizing the lock
        round-trip and the per-shard fsync across a whole sweep's
        write-back.
        """
        by_shard: dict[int, list[tuple[str, dict]]] = {}
        for key, payload in items:
            by_shard.setdefault(self._shard_of(key), []).append((key, payload))
        written = 0
        with self._locked():
            for shard, group in sorted(by_shard.items()):
                self._index.pop(shard, None)
                present = self._shard_records(shard)
                lines = []
                seen: set[str] = set()
                for key, payload in group:
                    if key in present or key in seen:
                        continue
                    seen.add(key)
                    lines.append(self._encode_line(key, payload))
                if not lines:
                    continue
                with open(self._shard_path(shard), "a+b") as fh:
                    fh.seek(0, io.SEEK_END)
                    if fh.tell() > 0:
                        fh.seek(-1, io.SEEK_END)
                        if fh.read(1) != b"\n":
                            fh.write(b"\n")
                    fh.write(b"".join(line + b"\n" for line in lines))
                    fh.flush()
                    os.fsync(fh.fileno())
                self._index.pop(shard, None)
                written += len(lines)
        self.stats["writes"] += written
        return written

    # -- size-bounded GC ----------------------------------------------
    def record_bytes(self) -> int:
        """Total size of the record shards on disk."""
        total = 0
        for shard in range(self.shards):
            try:
                total += self._shard_path(shard).stat().st_size
            except OSError:
                pass
        return total

    def gc(self, max_bytes: int | None = None) -> int:
        """Drop oldest records until the store fits ``max_bytes``.

        Records within a shard are in append (age) order, so dropping a
        prefix of lines drops the oldest.  Shards are rewritten via a
        temp file + ``os.replace`` under the writer lock; in-flight
        readers keep their old inode.  Returns records dropped.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        dropped = 0
        with self._locked():
            excess = self.record_bytes() - budget
            if excess <= 0:
                return 0
            for shard in range(self.shards):
                if excess <= 0:
                    break
                path = self._shard_path(shard)
                try:
                    data = path.read_bytes()
                except OSError:
                    continue
                lines = [ln for ln in data.split(b"\n") if ln.strip()]
                kept = list(lines)
                while kept and excess > 0:
                    oldest = kept.pop(0)
                    excess -= len(oldest) + 1
                    dropped += 1
                body = b"".join(ln + b"\n" for ln in kept)
                fd, tmp = tempfile.mkstemp(
                    dir=self._records_dir, prefix=f".gc-{shard:02x}-"
                )
                try:
                    os.write(fd, body)
                    os.fsync(fd)
                finally:
                    os.close(fd)
                os.replace(tmp, path)
                self._index.pop(shard, None)
        self.stats["gc_dropped"] += dropped
        return dropped

    # -- artifacts (numpy dicts) ---------------------------------------
    def _artifact_path(self, name: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in name)
        return self._artifacts_dir / f"{safe}.npz"

    def put_arrays(self, name: str, arrays: dict[str, np.ndarray]) -> bool:
        """Atomically persist a named dict of arrays; ``False`` if present."""
        path = self._artifact_path(name)
        if path.exists():
            return False
        fd, tmp = tempfile.mkstemp(dir=self._artifacts_dir, prefix=".art-")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stats["artifact_writes"] += 1
        return True

    def get_arrays(self, name: str) -> dict[str, np.ndarray] | None:
        """The named artifact as an eager dict, or ``None`` (missing/corrupt)."""
        path = self._artifact_path(name)
        try:
            with np.load(path) as bundle:
                arrays = {key: bundle[key] for key in bundle.files}
        except (OSError, ValueError, KeyError, EOFError):
            if path.exists():
                self.stats["corrupt"] += 1
            self.stats["artifact_misses"] += 1
            return None
        self.stats["artifact_hits"] += 1
        return arrays

    # -- reporting -----------------------------------------------------
    def summary(self) -> dict[str, object]:
        """JSON-safe stats snapshot (benchmarks, campaign summaries)."""
        return {"root": str(self.root), **self.stats}
