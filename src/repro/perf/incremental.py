"""Incremental cross-scenario solving: delta chains and solution repair.

A failure sweep solves C(M, k) instances that differ only in which
controllers are offline.  Solving them independently throws away the
similarity; this module exploits it without ever changing an answer:

:func:`hamming_chain`
    Orders scenarios into a greedy minimum-Hamming-distance chain, so
    consecutive solves differ in as few failed controllers as possible.
:func:`chain_segments`
    Splits a chain into contiguous segments, one per worker — each
    worker walks its segment sequentially, threading a
    :class:`~repro.fmssm.optimal.WarmChain` through the solves.
:func:`repair_solution`
    Repairs the previous scenario's solution into the next instance —
    drop assignments to now-failed controllers, remap orphaned switches
    to their nearest active controller, and re-saturate capacity with
    the vectorized grouped-selection kernel.  The result seeds the next
    exact solve (B&B incumbent / timeout fallback).

The repaired solution is a *seed*, not an answer: downstream it passes
through :meth:`~repro.perf.compile.CompiledFMSSM.embed_solution`, which
rejects anything violating the compiled form, so a repair that cannot be
made feasible (e.g. under ``r >= 1`` full recovery) simply yields no
seed and the solve proceeds exactly as an independent one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.fmssm.solution import RecoverySolution
from repro.pm.algorithm import grouped_capacity_select

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.failures import FailureScenario
    from repro.fmssm.instance import FMSSMInstance

__all__ = ["hamming_chain", "chain_segments", "repair_solution"]


def _failed_set(scenario: object) -> frozenset:
    """The failed-controller set of a scenario (or a bare set)."""
    failed = getattr(scenario, "failed", scenario)
    return frozenset(failed)


def hamming_chain(scenarios: Sequence["FailureScenario"]) -> list[int]:
    """Greedy nearest-neighbor ordering of scenarios by failure-set delta.

    Starts from index 0 (the sweep's first scenario) and repeatedly
    appends the unvisited scenario whose failed set has the smallest
    symmetric difference with the current one, breaking ties by original
    index — fully deterministic, so checkpoint resume replays the same
    chain.  O(n²) set comparisons; sweeps enumerate at most a few
    thousand scenarios, where this is microseconds per scenario.
    """
    n = len(scenarios)
    if n == 0:
        return []
    sets = [_failed_set(s) for s in scenarios]
    remaining = set(range(1, n))
    order = [0]
    current = sets[0]
    while remaining:
        best = min(remaining, key=lambda i: (len(current ^ sets[i]), i))
        remaining.remove(best)
        order.append(best)
        current = sets[best]
    return order


def chain_segments(order: Sequence[int], k: int) -> list[list[int]]:
    """Split a chain into ``k`` balanced contiguous segments.

    Segments preserve chain adjacency (each worker's warm chain stays
    warm); the first ``len(order) % k`` segments get one extra element.
    Empty segments are dropped, so fewer than ``k`` lists come back when
    the chain is short.
    """
    if k <= 0:
        raise ValueError(f"segment count must be positive: {k!r}")
    n = len(order)
    base, extra = divmod(n, k)
    segments: list[list[int]] = []
    start = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        segments.append(list(order[start : start + size]))
        start += size
    return segments


def repair_solution(
    instance: "FMSSMInstance",
    neighbor: RecoverySolution,
    enforce_delay: bool = True,
) -> RecoverySolution | None:
    """Repair ``neighbor`` (a different scenario's solution) into ``instance``.

    Keeps every switch→controller assignment that is still valid, remaps
    the rest to the nearest active controller, then re-selects SDN pairs
    under the capacity budget — neighbor-served pairs first (continuity),
    the remaining programmable pairs after, both in deterministic sorted
    order through :func:`~repro.pm.algorithm.grouped_capacity_select`.
    With ``enforce_delay`` the tail of the selection is dropped until the
    total propagation delay fits the ideal recovery delay ``G``.

    Returns ``None`` when the neighbor is infeasible or the instance has
    no programmable pairs — no seed is better than a meaningless one.
    """
    if not neighbor.feasible:
        return None
    arrays = instance.pair_arrays()
    if not instance.pairs:
        return None

    controller_set = set(instance.controllers)
    mapping = {}
    for switch in instance.switches:
        controller = neighbor.mapping.get(switch)
        if controller not in controller_set:
            controller = instance.nearest[switch]
        mapping[switch] = controller

    # Candidate scan order: the neighbor's surviving pairs first, then
    # everything else, each block in sorted pair order.
    pair_index = arrays.pair_index
    kept = sorted(
        pair_index[pair] for pair in neighbor.active_pairs() if pair in pair_index
    )
    kept_mask = np.zeros(len(instance.pairs), dtype=bool)
    kept_arr = np.asarray(kept, dtype=np.int64)
    kept_mask[kept_arr] = True
    rest = np.flatnonzero(~kept_mask)
    scan = np.concatenate([kept_arr, rest])

    controller_pos = {c: i for i, c in enumerate(instance.controllers)}
    ctrl_of_switch = np.fromiter(
        (controller_pos[mapping[s]] for s in instance.switches),
        dtype=np.int64,
        count=len(instance.switches),
    )
    capacity = np.fromiter(
        (instance.spare[c] for c in instance.controllers),
        dtype=np.int64,
        count=len(instance.controllers),
    )
    groups = ctrl_of_switch[arrays.switch_code[scan]]
    chosen = scan[grouped_capacity_select(groups, capacity)]

    if enforce_delay and chosen.size:
        delays = np.fromiter(
            (
                instance.delay[(instance.switches[code], mapping[instance.switches[code]])]
                for code in arrays.switch_code[chosen].tolist()
            ),
            dtype=np.float64,
            count=len(chosen),
        )
        total = float(delays.sum())
        keep = len(chosen)
        while keep > 0 and total > instance.ideal_delay_ms:
            keep -= 1
            total -= float(delays[keep])
        chosen = chosen[:keep]

    pairs = instance.pairs
    sdn_pairs = {pairs[k] for k in chosen.tolist()}
    return RecoverySolution(
        algorithm="chain-repair",
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        feasible=True,
        meta={"seed_from": neighbor.algorithm, "kept_pairs": int(kept_mask.sum())},
    )
