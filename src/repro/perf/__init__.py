"""Performance layer: shared coefficient tables and the parallel sweep.

Failure sweeps are embarrassingly parallel across scenarios × algorithms,
and every scenario of a sweep shares the same (topology, counter, flow
population) — so the programmability coefficients can be materialized
once and reused everywhere.  This package holds the two pieces that make
that cheap:

:class:`~repro.perf.coefficients.CoefficientTable`
    A picklable, fully materialized table of ``p`` / ``beta`` / ``p̄``
    with an inverted switch → programmable-flows index, built once per
    (topology, counter, flows) and shared by all scenarios of a sweep.

:mod:`repro.perf.sweep`
    The process-pool machinery behind
    :func:`repro.experiments.runner.run_failure_sweep_parallel`.

:mod:`repro.perf.compile`
    Direct sparse compilation of problem P′ — the fast exact-solver
    path behind ``solve_optimal(compile="sparse")``, with per-shape
    structural caching across the scenarios of a sweep.
"""

from repro.perf.coefficients import CoefficientTable
from repro.perf.compile import (
    CompiledFMSSM,
    FMSSMCompiler,
    compile_fmssm,
    default_compiler,
)
from repro.perf.sweep import SweepPlan, parallel_sweep

__all__ = [
    "CoefficientTable",
    "SweepPlan",
    "parallel_sweep",
    "CompiledFMSSM",
    "FMSSMCompiler",
    "compile_fmssm",
    "default_compiler",
]
