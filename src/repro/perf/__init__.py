"""Performance layer: shared coefficient tables and the parallel sweep.

Failure sweeps are embarrassingly parallel across scenarios × algorithms,
and every scenario of a sweep shares the same (topology, counter, flow
population) — so the programmability coefficients can be materialized
once and reused everywhere.  This package holds the two pieces that make
that cheap:

:class:`~repro.perf.coefficients.CoefficientTable`
    A picklable, fully materialized table of ``p`` / ``beta`` / ``p̄``
    with an inverted switch → programmable-flows index, built once per
    (topology, counter, flows) and shared by all scenarios of a sweep.

:mod:`repro.perf.sweep`
    The process-pool machinery behind
    :func:`repro.experiments.runner.run_failure_sweep_parallel`.

:mod:`repro.perf.compile`
    Direct sparse compilation of problem P′ — the fast exact-solver
    path behind ``solve_optimal(compile="sparse")``, with per-shape
    structural caching across the scenarios of a sweep.

:mod:`repro.perf.shm`
    Zero-copy shared-memory fan-out: the sweep plan's numpy buffers are
    parked in one segment every pool worker aliases read-only.

:mod:`repro.perf.incremental`
    Cross-scenario delta chaining: minimum-Hamming-distance scenario
    ordering and neighbor-solution repair for warm-started exact solves.

:mod:`repro.perf.kernels`
    NumPy-vectorized kernels for the four non-exact algorithms (PM, PG,
    RetroFlow, Nearest) over the :class:`~repro.perf.kernels.
    InstanceArrays` view — the default ``kernel="array"`` route, bit-
    identical to the dict-route reference implementations.

:mod:`repro.perf.executor`
    Persistent warm-worker pools: a :class:`~repro.perf.executor.
    SweepExecutor` keeps workers (and their decoded plans, contexts and
    compiled shapes) alive across sweeps, and :func:`~repro.perf.
    executor.run_campaign` streams many sweeps over one warm executor.

:mod:`repro.perf.store`
    Cross-run solve memoization: a disk-backed, content-addressed
    :class:`~repro.perf.store.SolveStore` shared by concurrent parent
    processes and successive runs — canonical instance fingerprints
    dedupe structurally equivalent scenarios to one solve, and store
    hits replay bit-identically to fresh solves.
"""

from repro.perf.coefficients import CoefficientArrays, CoefficientTable
from repro.perf.executor import (
    SweepExecutor,
    close_default_executor,
    get_default_executor,
    run_campaign,
)
from repro.perf.compile import (
    CompiledFMSSM,
    FMSSMCompiler,
    compile_fmssm,
    default_compiler,
)
from repro.perf.incremental import chain_segments, hamming_chain, repair_solution
from repro.perf.kernels import (
    DEFAULT_KERNEL,
    InstanceArrays,
    instance_arrays,
    prepare_instance,
    resolve_kernel,
    solve_nearest_array,
    solve_pg_array,
    solve_pm_array,
    solve_retroflow_array,
)
from repro.perf.shm import (
    FanoutStats,
    SegmentLease,
    SharedPayload,
    active_segments,
    dumps_shared,
    loads_shared,
    shm_available,
)
from repro.perf.store import (
    SolveStore,
    canonical_instance,
    instance_fingerprint,
    solve_key,
    topology_fingerprint,
)
from repro.perf.sweep import (
    ShmPlanData,
    SweepPlan,
    fanout_summary,
    parallel_sweep,
    store_summary,
)

__all__ = [
    "CoefficientTable",
    "CoefficientArrays",
    "DEFAULT_KERNEL",
    "InstanceArrays",
    "instance_arrays",
    "prepare_instance",
    "resolve_kernel",
    "solve_pm_array",
    "solve_pg_array",
    "solve_retroflow_array",
    "solve_nearest_array",
    "SweepPlan",
    "ShmPlanData",
    "parallel_sweep",
    "fanout_summary",
    "store_summary",
    "SolveStore",
    "canonical_instance",
    "instance_fingerprint",
    "solve_key",
    "topology_fingerprint",
    "SweepExecutor",
    "get_default_executor",
    "close_default_executor",
    "run_campaign",
    "CompiledFMSSM",
    "FMSSMCompiler",
    "compile_fmssm",
    "default_compiler",
    "hamming_chain",
    "chain_segments",
    "repair_solution",
    "SharedPayload",
    "SegmentLease",
    "FanoutStats",
    "dumps_shared",
    "loads_shared",
    "shm_available",
    "active_segments",
]
