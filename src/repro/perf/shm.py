"""Zero-copy shared-memory transport for sweep fan-out.

The parallel sweep ships one plan to every pool worker.  The pickle
route serializes the whole plan — several hundred kilobytes once the
coefficient table and flow population are included — and every worker
re-materializes its own private copy.  This module moves the bulk of
that payload out of band: the plan is pickled with protocol 5, every
numpy buffer it contains is diverted into a single
:mod:`multiprocessing.shared_memory` segment, and workers reconstruct
the plan from the small in-band remainder plus *read-only views into
the shared segment* — no per-worker copy of the big arrays.

:func:`dumps_shared` returns a :class:`SharedPayload` (small, picklable,
suitable as a pool-initializer argument) plus a :class:`SegmentLease`
the parent must release when the sweep ends.  :func:`loads_shared` is
its worker-side inverse.  When shared memory is unavailable — or the
payload carries no out-of-band buffers — the payload degrades to a
plain pickle transparently, so callers never need a platform switch.

Lifecycle guarantees (exercised by ``tests/test_perf_shm.py`` and the
chaos suites):

* every created segment is tracked in a parent-side registry
  (:func:`active_segments`) until its lease is released;
* :meth:`SegmentLease.release` is idempotent and safe after workers
  died mid-task (``kill-worker`` chaos) — the parent unlinks, the OS
  reclaims worker attachments with the processes;
* an ``atexit`` backstop unlinks anything a crashed sweep left behind,
  so killed runs do not leak ``/dev/shm`` entries between tests.

Worker attachments opt out of ``multiprocessing.resource_tracker``
tracking (``track=False`` on Python >= 3.13; a start-method-aware
unregister before that, see :func:`_untrack_attachment`): the creating
parent owns the segment's lifetime, and a worker-side tracker must
neither warn about nor unlink segments the parent manages.
"""

from __future__ import annotations

import atexit
import pickle
import time
from dataclasses import dataclass, field

__all__ = [
    "SharedPayload",
    "SegmentLease",
    "FanoutStats",
    "dumps_shared",
    "timed_dumps_shared",
    "loads_shared",
    "shm_available",
    "active_segments",
    "release_all",
]


@dataclass(frozen=True)
class SharedPayload:
    """A pickled object split into an in-band part and shared buffers.

    ``inband`` is the protocol-5 pickle stream with every buffer
    diverted out of band; ``segment`` names the shared-memory segment
    holding those buffers back to back, at ``offsets`` (start, length)
    in emission order.  ``segment=None`` means the payload is a plain
    self-contained pickle (the fallback route).
    """

    inband: bytes
    segment: str | None = None
    offsets: tuple[tuple[int, int], ...] = ()

    @property
    def inband_bytes(self) -> int:
        """Size of the per-worker serialized payload."""
        return len(self.inband)

    @property
    def shared_bytes(self) -> int:
        """Total bytes parked in the shared segment (0 on the fallback)."""
        return sum(length for _, length in self.offsets)


class SegmentLease:
    """Parent-side ownership of one shared-memory segment.

    The parent creates the segment, hands its name to workers, and must
    call :meth:`release` once the sweep is over — typically from a
    ``finally`` block so chaos kills and checkpoint aborts clean up too.
    """

    def __init__(self, shm: object) -> None:
        self._shm = shm
        self.name: str = shm.name
        _LEASES[self.name] = self

    def release(self) -> None:
        """Close and unlink the segment (idempotent)."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        _LEASES.pop(self.name, None)
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # already gone: fine
            pass


#: Parent-side registry of unreleased leases, keyed by segment name.
_LEASES: dict[str, SegmentLease] = {}

#: Worker-side attachments kept alive for the arrays aliasing them.
_ATTACHED: list[object] = []

#: Cached availability probe result.
_AVAILABLE: bool | None = None


def active_segments() -> tuple[str, ...]:
    """Names of segments this process created and has not yet released."""
    return tuple(sorted(_LEASES))


def release_all() -> None:
    """Release every outstanding lease (atexit backstop; idempotent)."""
    for lease in list(_LEASES.values()):
        lease.release()


atexit.register(release_all)


def _close_attachments() -> None:  # pragma: no cover - interpreter exit
    for shm in _ATTACHED:
        try:
            shm.close()
        except OSError:
            pass
    _ATTACHED.clear()


atexit.register(_close_attachments)


def shm_available() -> bool:
    """Whether this platform supports POSIX shared memory (cached probe)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


def _fallback_payload(obj: object) -> tuple[SharedPayload, None]:
    return (
        SharedPayload(inband=pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)),
        None,
    )


def dumps_shared(obj: object) -> tuple[SharedPayload, SegmentLease | None]:
    """Serialize ``obj`` with its buffers diverted into shared memory.

    Returns the payload and the parent's lease on the backing segment
    (``None`` when the fallback plain-pickle route was taken).  The
    caller owns the lease and must release it after the last worker has
    finished attaching — releasing only unlinks the name; workers that
    already attached keep their mappings until they exit.
    """
    if not shm_available():
        return _fallback_payload(obj)
    buffers: list[pickle.PickleBuffer] = []
    try:
        inband = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    except Exception:
        # Anything protocol 5 cannot handle falls back to the caller's
        # own error handling on the plain route.
        return _fallback_payload(obj)
    views = [buf.raw() for buf in buffers]
    total = sum(view.nbytes for view in views)
    if total == 0:
        return _fallback_payload(obj)

    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(create=True, size=total)
    except Exception:
        return _fallback_payload(obj)
    offsets: list[tuple[int, int]] = []
    cursor = 0
    for view in views:
        length = view.nbytes
        shm.buf[cursor : cursor + length] = view.cast("B")
        offsets.append((cursor, length))
        cursor += length
    lease = SegmentLease(shm)
    payload = SharedPayload(
        inband=inband, segment=shm.name, offsets=tuple(offsets)
    )
    return payload, lease


def _untrack_attachment(shm: object) -> None:
    """Undo the resource-tracker registration an attach performs (< 3.13).

    On spawn-start platforms every worker runs its own tracker daemon,
    which would unlink the parent's segment when the worker exits —
    unregistering prevents that.  Under fork the tracker daemon is
    *shared* with the creating parent, so unregistering here would strip
    the parent's own registration (and the next unregister would make
    the tracker print a KeyError); the registration is a set-membership
    no-op there, and the right move is to leave it alone.
    """
    try:
        import multiprocessing
        from multiprocessing import resource_tracker

        if multiprocessing.get_start_method(allow_none=True) != "fork":
            resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


def loads_shared(payload: SharedPayload) -> object:
    """Worker-side inverse of :func:`dumps_shared`.

    Arrays reconstructed from a shared segment are *read-only views*
    aliasing it — no copy is made, and accidental mutation from a worker
    raises instead of corrupting every sibling's data.  The attachment
    is kept open for the life of the process (the arrays alias it).
    """
    if payload.segment is None:
        return pickle.loads(payload.inband)

    from multiprocessing import shared_memory

    try:
        # Python >= 3.13: opt out of resource tracking on attach — the
        # creating parent owns the segment's lifetime.
        shm = shared_memory.SharedMemory(name=payload.segment, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=payload.segment)
        _untrack_attachment(shm)
    _ATTACHED.append(shm)
    base = memoryview(shm.buf)
    views = [
        base[start : start + length].toreadonly()
        for start, length in payload.offsets
    ]
    return pickle.loads(payload.inband, buffers=views)


@dataclass
class FanoutStats:
    """Observable cost of shipping one sweep plan to the workers.

    ``evictions`` holds the warm route's worst-worker cache-eviction
    counts per LRU layer (``context``/``plan``/``chaos_nonce``) — like
    ``worker_init_s``, the maximum across the pool, since any worker's
    eviction means a future re-decode.  Empty for cold routes.
    """

    transport: str
    payload_bytes: int
    shared_bytes: int = 0
    encode_s: float = 0.0
    worker_init_s: float = 0.0
    evictions: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form for result meta and bench records."""
        out = {
            "transport": self.transport,
            "payload_bytes": self.payload_bytes,
            "shared_bytes": self.shared_bytes,
            "encode_s": self.encode_s,
            "worker_init_s": self.worker_init_s,
        }
        if self.evictions:
            out["evictions"] = dict(self.evictions)
        return out


def timed_dumps_shared(obj: object) -> tuple[SharedPayload, SegmentLease | None, FanoutStats]:
    """:func:`dumps_shared` plus the stats the sweep summary reports."""
    start = time.perf_counter()
    payload, lease = dumps_shared(obj)
    stats = FanoutStats(
        transport="shm" if payload.segment is not None else "pickle",
        payload_bytes=payload.inband_bytes,
        shared_bytes=payload.shared_bytes,
        encode_s=time.perf_counter() - start,
    )
    return payload, lease, stats
