"""NumPy-vectorized kernels for the four non-exact recovery algorithms.

The dict-route implementations (``repro.pm.algorithm``,
``repro.baselines.*``) read the :class:`~repro.fmssm.instance.
FMSSMInstance` through per-pair dict lookups and per-pick ``sorted()``
calls — the right shape for auditing against the paper's pseudo-code,
but 10–30× slower than the arithmetic they perform.  This module holds
the production kernels: every hot loop is re-expressed over dense
position-indexed arrays (:class:`InstanceArrays`) so the per-solve cost
is a handful of numpy reductions plus short Python loops over switches,
not pairs.

Equivalence contract
--------------------
Each kernel is **bit-identical** to its dict-route twin — same
``mapping``, ``sdn_pairs``, ``pair_controller`` and per-flow
programmability on every instance, enforced by
``tests/test_perf_kernels.py``.  The tie-breaking rules that make this
hold (see DESIGN §10):

* ``instance.switches`` / ``instance.controllers`` /
  ``instance.recoverable_flows`` are sorted, and ``instance.pairs`` is
  lexicographically sorted — so *position* order equals *id* order, and
  a first-occurrence ``argmax``/``argmin`` over positions reproduces
  ``max()``/``min()`` with an id tie-break exactly;
* every descending sort uses ``np.argsort(-key, kind="stable")``, which
  preserves ascending position order among ties — the same order the
  dict routes' ``(-key, id)`` tuple sorts produce;
* ``delay_order`` rows are stable argsorts of the delay matrix, i.e.
  the ``(delay, controller_id)`` ascending order every dict route sorts
  controllers by;
* float accumulations that feed a comparison (the strict-PM delay
  budget) stay sequential Python loops so the rounding history matches
  the dict route addition for addition.

The dict routes are kept (``kernel="dict"``) as the cross-validation
reference; the solver entry points default to the array route.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.pm.algorithm import grouped_capacity_select
from repro.types import FLOWVISOR_PROCESSING_MS, ControllerId, FlowId, NodeId

__all__ = [
    "DEFAULT_KERNEL",
    "InstanceArrays",
    "adopt_instance_prep",
    "dict_kernel_reference",
    "export_instance_prep",
    "instance_arrays",
    "prepare_instance",
    "resolve_kernel",
    "solve_pm_array",
    "solve_pg_array",
    "solve_retroflow_array",
    "solve_nearest_array",
]

#: Kernel used when a solver's ``kernel=`` argument is left ``None``.
#: The dict route stays available as the equivalence reference.
DEFAULT_KERNEL = "array"

_KERNELS = ("array", "dict")

#: Depth of nested :func:`dict_kernel_reference` blocks (>0 silences the
#: dict-route deprecation warning — the cross-validation opt-out).
_DICT_REFERENCE_DEPTH = [0]


@contextmanager
def dict_kernel_reference():
    """Opt out of the ``kernel="dict"`` deprecation warning.

    The dict routes exist as the bit-exactness reference the array
    kernels are validated against (DESIGN §10); the cross-validation
    tests and benchmarks wrap their dict invocations in this context
    manager to say so explicitly.  Any *other* ``kernel="dict"`` use is
    presumed an accident — production code wants the array route — and
    draws a :class:`DeprecationWarning`.
    """
    _DICT_REFERENCE_DEPTH[0] += 1
    try:
        yield
    finally:
        _DICT_REFERENCE_DEPTH[0] -= 1


def resolve_kernel(kernel: str | None) -> str:
    """Validate a ``kernel=`` argument, defaulting to :data:`DEFAULT_KERNEL`."""
    if kernel is None:
        return DEFAULT_KERNEL
    if kernel not in _KERNELS:
        raise ValueError(f"kernel must be one of {_KERNELS}: {kernel!r}")
    if kernel == "dict" and not _DICT_REFERENCE_DEPTH[0]:
        warnings.warn(
            DeprecationWarning(
                'kernel="dict" is the cross-validation reference route, '
                "10-30x slower than the default array kernels; wrap the "
                "call in repro.perf.kernels.dict_kernel_reference() if "
                "the dict route is genuinely intended"
            ),
            stacklevel=3,
        )
    return kernel


@dataclass
class InstanceArrays:
    """Dense, position-indexed view of one :class:`FMSSMInstance`.

    Conceptually this is the per-scenario slice of the sweep-wide
    :class:`~repro.perf.coefficients.CoefficientArrays`: the ``pbar``
    column restricted to the scenario's offline pairs, joined with the
    scenario's delay matrix and spare-capacity vector.  It is built once
    per instance by :func:`instance_arrays` and cached on the instance,
    so all four kernels *and* the batched evaluator share one build.

    Positions: switches ``0..N-1`` in ``instance.switches`` order,
    controllers ``0..M-1`` in ``instance.controllers`` order, flows
    ``0..L-1`` in ``instance.flows`` insertion order, pairs ``0..P-1``
    in ``instance.pairs`` (lexicographic) order.  All of the first two
    and the pair order are sorted by id, which is what makes
    first-occurrence argmax/argmin tie-breaking equal id tie-breaking.
    """

    #: Public id tuples (references into the instance).
    switches: tuple[NodeId, ...]
    controllers: tuple[ControllerId, ...]
    flow_ids: tuple[FlowId, ...]
    #: Position lookups (switch_pos/pair_index shared with PairArrays).
    switch_pos: dict[NodeId, int]
    controller_pos: dict[ControllerId, int]
    flow_pos: dict[FlowId, int]
    pair_index: dict[tuple[NodeId, FlowId], int]
    #: Spare capacity A_j per controller position (int64[M]).
    spare: np.ndarray
    #: gamma_i per switch position (int64[N]).
    gamma: np.ndarray
    #: Delay matrix D_ij (float64[N, M]).
    delay: np.ndarray
    #: Per-switch controller positions in (delay, id) ascending order
    #: (int64[N, M]); column 0 is the nearest controller.
    delay_order: np.ndarray
    #: Per-pair switch / flow positions and p̄ (int64[P] each).
    pair_switch: np.ndarray
    pair_flow: np.ndarray
    pair_pbar: np.ndarray
    #: CSR over pairs grouped by switch: pairs of switch position ``s``
    #: are ``switch_indptr[s]:switch_indptr[s+1]`` (pairs are
    #: switch-major because ``instance.pairs`` sorts lexicographically).
    switch_indptr: np.ndarray
    #: Pair indices grouped by flow position, within each flow in
    #: (-p̄, switch) order — PG's per-flow greedy order (int64[P]).
    flow_sorted: np.ndarray
    flow_indptr: np.ndarray
    #: Per-flow maximum programmability (int64[L]).
    flow_max_pro: np.ndarray
    #: Flow positions of ``instance.recoverable_flows`` — ascending
    #: flow-id order, *not* necessarily ascending position (int64[R]).
    recoverable_pos: np.ndarray
    #: All pair indices in (-p̄, pair) order — the saturation scans'
    #: shared ordering (int64[P]).
    pbar_desc: np.ndarray
    #: Lazy per-kernel extras (PG's padded prefix-sum matrix).
    cache: dict[str, object] = field(default_factory=dict, repr=False)

    @property
    def n_pairs(self) -> int:
        return int(self.pair_switch.size)


def instance_arrays(instance: FMSSMInstance) -> InstanceArrays:
    """The cached :class:`InstanceArrays` view of ``instance``.

    First call builds the arrays (reusing the instance's
    ``pair_arrays()`` columns); later calls — from other kernels, the
    evaluator, or repeat solves on the same instance — return the same
    object.  Mirrors the ``pair_arrays`` caching pattern: the instance
    is immutable, so the view never goes stale.
    """
    cached = instance.__dict__.get("_instance_arrays")
    if cached is None:
        pa = instance.pair_arrays()
        switches = instance.switches
        controllers = instance.controllers
        flow_ids = tuple(instance.flows)
        n = len(switches)
        m = len(controllers)
        n_pairs = len(instance.pairs)
        flow_pos = {f: i for i, f in enumerate(flow_ids)}
        controller_pos = {c: j for j, c in enumerate(controllers)}

        prep = instance.__dict__.pop("_instance_prep", None)
        if prep is not None and (
            prep["delay"].shape != (n, m)
            or len(prep["flow_sorted"]) != n_pairs
            or len(prep["flow_indptr"]) != len(flow_ids) + 1
        ):
            prep = None  # foreign/stale seed: rebuild from scratch

        if prep is not None:
            delay = prep["delay"]
        else:
            delay = np.fromiter(
                (instance.delay[(s, c)] for s in switches for c in controllers),
                dtype=np.float64,
                count=n * m,
            ).reshape(n, m)
        pair_flow = np.fromiter(
            (flow_pos[f] for _, f in instance.pairs), dtype=np.int64, count=n_pairs
        )
        pair_pbar = pa.pbar
        pair_switch = pa.switch_code
        if prep is not None:
            flow_sorted = prep["flow_sorted"]
            flow_indptr = prep["flow_indptr"]
            flow_max_pro = prep["flow_max_pro"]
        else:
            # Flow-major pair grouping, within a flow by (-p̄, switch): the
            # trailing np.arange key keeps ascending pair index (= ascending
            # switch id, pairs being lexicographic) among equal p̄.
            flow_sorted = np.lexsort((np.arange(n_pairs), -pair_pbar, pair_flow))
            flow_indptr = np.searchsorted(
                pair_flow[flow_sorted], np.arange(len(flow_ids) + 1)
            )
            flow_max_pro = (
                np.bincount(pair_flow, weights=pair_pbar, minlength=len(flow_ids))
                .astype(np.int64)
                if n_pairs
                else np.zeros(len(flow_ids), dtype=np.int64)
            )
        cached = InstanceArrays(
            switches=switches,
            controllers=controllers,
            flow_ids=flow_ids,
            switch_pos=pa.switch_pos,
            controller_pos=controller_pos,
            flow_pos=flow_pos,
            pair_index=pa.pair_index,
            spare=np.fromiter(
                (instance.spare[c] for c in controllers), dtype=np.int64, count=m
            ),
            gamma=np.fromiter(
                (instance.gamma[s] for s in switches), dtype=np.int64, count=n
            ),
            delay=delay,
            delay_order=(
                prep["delay_order"]
                if prep is not None
                else np.argsort(delay, axis=1, kind="stable")
            ),
            pair_switch=pair_switch,
            pair_flow=pair_flow,
            pair_pbar=pair_pbar,
            switch_indptr=np.searchsorted(pair_switch, np.arange(n + 1)),
            flow_sorted=flow_sorted,
            flow_indptr=flow_indptr,
            flow_max_pro=flow_max_pro,
            recoverable_pos=np.fromiter(
                (flow_pos[f] for f in instance.recoverable_flows),
                dtype=np.int64,
                count=len(instance.recoverable_flows),
            ),
            pbar_desc=(
                prep["pbar_desc"]
                if prep is not None
                else np.argsort(-pair_pbar, kind="stable")
            ),
        )
        instance.__dict__["_instance_arrays"] = cached
    return cached


#: Derived columns of :class:`InstanceArrays` worth persisting: pure
#: functions of canonical instance content (positions, not labels), so
#: any instance with the same content fingerprint can adopt them.
_PREP_KEYS = (
    "delay", "delay_order", "flow_sorted", "flow_indptr", "flow_max_pro",
    "pbar_desc",
)


def export_instance_prep(instance: FMSSMInstance) -> dict[str, np.ndarray] | None:
    """The persistable derived arrays of a built instance view.

    Returns ``None`` when the view was never built (nothing to save).
    Used by the cross-run store (:mod:`repro.perf.store`) to skip the
    sort/argsort work on later processes via :func:`adopt_instance_prep`.
    """
    arrays = instance.__dict__.get("_instance_arrays")
    if arrays is None:
        return None
    return {key: np.asarray(getattr(arrays, key)) for key in _PREP_KEYS}


def adopt_instance_prep(
    instance: FMSSMInstance, prep: dict[str, np.ndarray]
) -> None:
    """Seed a not-yet-built instance view with persisted derived arrays.

    A no-op once the view exists; shape-inconsistent seeds are discarded
    at build time, so adopting a foreign artifact can never corrupt the
    arrays — worst case the sorts are recomputed.
    """
    if "_instance_arrays" in instance.__dict__:
        return
    if not all(key in prep for key in _PREP_KEYS):
        return
    instance.__dict__["_instance_prep"] = {
        key: np.asarray(prep[key]) for key in _PREP_KEYS
    }


def prepare_instance(instance: FMSSMInstance) -> InstanceArrays:
    """Build the array view and the sequential-scan caches eagerly.

    The view is *scenario data*, not algorithm work: sweeps and
    ``run_scenario`` call this right after grounding an instance so the
    one-time materialization (delay matrix, CSR indexes, list views) is
    charged to instance preparation, shared by all four kernels and the
    batched evaluator — instead of landing in whichever solver happens
    to run first in a worker process.
    """
    arrays = instance_arrays(instance)
    _seq_prep(arrays)
    return arrays


# ----------------------------------------------------------------------
# PM — Algorithm 1 over arrays
# ----------------------------------------------------------------------
def _seq_prep(arrays: InstanceArrays) -> tuple:
    """Plain-list views for the sequential scan kernels (cached).

    PM's phase-1 picks (and the switch-level greedies) are inherently
    sequential over WAN-small populations, where per-call numpy
    dispatch costs more than the arithmetic — so their inner loops run
    on position-indexed Python lists, materialized here once per
    instance: per-pair switch/flow/p̄ columns, the switch CSR bounds,
    each flow's pair-switch adjacency (for the incremental level
    counts), the delay-ordered controller rows, the delay matrix, and
    per-switch ``(pair, flow, p̄)`` triples for PM's candidate scan.
    """
    cached = arrays.cache.get("seq_lists")
    if cached is None:
        flow_indptr = arrays.flow_indptr.tolist()
        switches_by_flow = arrays.pair_switch[arrays.flow_sorted].tolist()
        ps_list = arrays.pair_switch.tolist()
        pf_list = arrays.pair_flow.tolist()
        pbar_list = arrays.pair_pbar.tolist()
        indptr = arrays.switch_indptr.tolist()
        triples = list(zip(range(arrays.n_pairs), pf_list, pbar_list))
        cached = (
            ps_list,
            pf_list,
            pbar_list,
            indptr,
            [
                switches_by_flow[flow_indptr[i] : flow_indptr[i + 1]]
                for i in range(len(arrays.flow_ids))
            ],
            arrays.delay_order.tolist(),
            arrays.gamma.tolist(),
            arrays.delay.tolist(),
            [
                triples[indptr[s] : indptr[s + 1]]
                for s in range(len(arrays.switches))
            ],
        )
        arrays.cache["seq_lists"] = cached
    return cached


def solve_pm_array(
    instance: FMSSMInstance,
    phase2_order: str = "paper",
    enforce_delay: bool = False,
    phase2: bool = True,
) -> RecoverySolution:
    """Array kernel for ProgrammabilityMedic (Algorithm 1).

    Phase 1 keeps the pick loop (its picks are sequential by nature)
    but swaps the dict route's hashed state for position-indexed lists
    and replaces the per-pick level recount with an *incremental*
    count: ``counts[s]`` tracks the pairs of switch ``s`` whose flow
    sits at the current level ``sigma``, decremented along each
    activated flow's pair-switch adjacency, and rebuilt by one masked
    ``bincount`` only when ``sigma`` advances at a pass boundary (flows
    never re-enter a level — h only grows).  Phase 2 without the delay
    bound is the same grouped capacity selection the dict route
    vectorizes; the strict variants stay sequential loops because the
    cumulative delay budget is order- and rounding-history-dependent.
    ``phase2=False`` skips the saturation phase entirely (the ablation
    variant), matching the dict route's ``ProgrammabilityMedic(...,
    phase2=False)``.
    """
    if phase2_order not in ("paper", "greedy"):
        raise ValueError(f"phase2_order must be 'paper' or 'greedy': {phase2_order!r}")
    start = time.perf_counter()
    arrays = instance_arrays(instance)
    n = len(arrays.switches)
    m = len(arrays.controllers)
    n_pairs = arrays.n_pairs
    pair_switch = arrays.pair_switch
    pair_flow = arrays.pair_flow
    recoverable = arrays.recoverable_pos
    (
        ps_list,
        _pf_list,
        _pbar_list,
        indptr,
        flow_adj,
        rows,
        gamma,
        delay_list,
        sw_triples,
    ) = _seq_prep(arrays)

    h = [0] * len(arrays.flow_ids)
    active = [False] * n_pairs
    activated: list[int] = []
    avail = arrays.spare.tolist()
    ctrl_of = [-1] * n
    untested = [True] * n
    remaining = n
    sigma = 0
    test_count = 0
    total_iterations = instance.total_iterations
    budget = instance.ideal_delay_ms + 1e-9
    total_delay = 0.0
    # counts[s] — pairs of switch s whose flow sits at level sigma
    # (including already-active pairs, like the dict route's buckets).
    counts0 = arrays.cache.get("pm_counts0")
    if counts0 is None:
        counts0 = (
            np.bincount(pair_switch, minlength=n).tolist() if n_pairs else [0] * n
        )
        arrays.cache["pm_counts0"] = counts0
    counts = list(counts0)

    while test_count < total_iterations:
        # Lines 5-15: the untested switch with the most level-sigma
        # pairs; strict > keeps the first maximum = lowest position =
        # lowest switch id.
        best = -1
        best_count = 0
        for s in range(n):
            if untested[s]:
                count = counts[s]
                if count > best_count:
                    best_count = count
                    best = s
        if best < 0:
            remaining = 0
        else:
            s = best
            c = ctrl_of[s]
            if c < 0:
                # Lines 17-28: nearest controller that fits the whole
                # switch, else the one with the most spare resource
                # (ties toward the lower controller id).
                g = gamma[s]
                for candidate in rows[s]:
                    if avail[candidate] >= g:
                        c = candidate
                        break
                else:
                    c = max(range(m), key=lambda j: (avail[j], -j))
                ctrl_of[s] = c
            untested[s] = False
            remaining -= 1
            # Lines 31-36: flip candidate pairs at s in flow-id order.
            # h only grows within a pass and sigma is the pass-start
            # minimum, so h == sigma ⟺ h <= sigma here.
            budget_left = avail[c]
            if enforce_delay:
                delay_sc = delay_list[s][c]
                for k, flow, pbar in sw_triples[s]:
                    level = h[flow]
                    if level > sigma:
                        continue
                    if active[k]:
                        continue
                    if budget_left <= 0:
                        break
                    if total_delay + delay_sc > budget:
                        continue
                    total_delay += delay_sc
                    budget_left -= 1
                    h[flow] = level + pbar
                    active[k] = True
                    activated.append(k)
                    # The flow leaves level sigma: every switch pairing
                    # with it loses one level-sigma pair.
                    for paired in flow_adj[flow]:
                        counts[paired] -= 1
            else:
                for k, flow, pbar in sw_triples[s]:
                    level = h[flow]
                    if level > sigma:
                        continue
                    if active[k]:
                        continue
                    if budget_left <= 0:
                        break
                    budget_left -= 1
                    h[flow] = level + pbar
                    active[k] = True
                    activated.append(k)
                    for paired in flow_adj[flow]:
                        counts[paired] -= 1
            avail[c] = budget_left
        if remaining == 0:
            untested = [True] * n
            remaining = n
            test_count += 1
            if recoverable.size:
                h_np = np.array(h, dtype=np.int64)
                new_sigma = int(h_np[recoverable].min())
                if new_sigma != sigma:
                    # Rebuild the level counts at the new water line —
                    # the only O(P) step, once per sigma advance.
                    sigma = new_sigma
                    counts = np.bincount(
                        pair_switch[h_np[pair_flow] == sigma], minlength=n
                    ).tolist()

    # Phase 2 (lines 42-50): saturate leftover capacity on mapped switches.
    if phase2 and n_pairs:
        if enforce_delay:
            if phase2_order == "greedy":
                order = arrays.pbar_desc.tolist()
            else:
                order = range(n_pairs)
            for k in order:
                if active[k]:
                    continue
                c = ctrl_of[ps_list[k]]
                if c < 0:
                    continue
                if avail[c] <= 0:
                    continue
                pair_delay = delay_list[ps_list[k]][c]
                if total_delay + pair_delay > budget:
                    continue
                total_delay += pair_delay
                avail[c] -= 1
                active[k] = True
                activated.append(k)
        else:
            active_np = np.array(active, dtype=bool)
            ctrl = np.array(ctrl_of, dtype=np.int64)[pair_switch]
            open_mask = (~active_np) & (ctrl >= 0)
            if phase2_order == "greedy":
                order = arrays.pbar_desc
                scan = order[open_mask[order]]
            else:
                scan = np.flatnonzero(open_mask)
            if scan.size:
                capacity = np.array(avail, dtype=np.int64)
                chosen = scan[grouped_capacity_select(ctrl[scan], capacity)]
                activated.extend(chosen.tolist())

    pairs = instance.pairs
    mapping = {
        arrays.switches[i]: arrays.controllers[c]
        for i, c in enumerate(ctrl_of)
        if c >= 0
    }
    sdn_pairs = {pairs[k] for k in activated}
    meta: dict[str, object] = {
        "phase2_order": phase2_order,
        "total_iterations": total_iterations,
        "kernel": "array",
    }
    if not phase2:
        meta["phase2"] = False
    return RecoverySolution(
        algorithm="pm",
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        solve_time_s=time.perf_counter() - start,
        feasible=True,
        meta=meta,
    )


# ----------------------------------------------------------------------
# PG — flow-level recovery over arrays
# ----------------------------------------------------------------------
def _pg_level_prep(arrays: InstanceArrays) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Padded per-recoverable-flow prefix sums of descending p̄.

    Row ``i`` holds the running totals of recoverable flow ``i``'s pairs
    in (-p̄, switch) order, right-padded with the final total — so the
    fewest pairs reaching ``level`` is ``(row >= level).argmax() + 1``
    for any reachable ``level >= 1``.  Cached on the arrays: the binary
    search probes it O(log max_level) times.
    """
    cached = arrays.cache.get("pg_levels")
    if cached is None:
        rec = arrays.recoverable_pos
        starts = arrays.flow_indptr[rec]
        lens = arrays.flow_indptr[rec + 1] - starts
        width = int(lens.max()) if lens.size else 0
        col = np.arange(width)
        # Clamp pad columns onto each row's last real pair; their p̄ is
        # zeroed below so the cumsum plateaus at the flow's max_pro.
        idx2d = starts[:, None] + np.minimum(col[None, :], (lens - 1)[:, None])
        valid = col[None, :] < lens[:, None]
        values = np.where(valid, arrays.pair_pbar[arrays.flow_sorted[idx2d]], 0)
        cached = (idx2d, lens, values.cumsum(axis=1))
        arrays.cache["pg_levels"] = cached
    return cached


def solve_pg_array(instance: FMSSMInstance) -> RecoverySolution:
    """Array kernel for ProgrammabilityGuardian.

    The water-level binary search runs on the padded prefix-sum matrix
    (one ``>=`` + ``argmax`` per probe instead of per-flow ``sorted()``
    greedy scans), the saturation pass reuses the instance-wide
    ``pbar_desc`` order, and the regret-ordered assignment is an
    argsort over the per-switch delay spread with an all-nearest fast
    path — the sequential scan only runs when some nearest controller
    would overflow.
    """
    start = time.perf_counter()
    arrays = instance_arrays(instance)
    n_pairs = arrays.n_pairs
    budget = int(arrays.spare.sum())
    rec = arrays.recoverable_pos

    chosen = np.zeros(n_pairs, dtype=bool)
    if budget >= rec.size and rec.size:
        # Full recovery possible: maximize the least programmability by
        # binary search over the water level.
        idx2d, lens, cum = _pg_level_prep(arrays)
        max_level = int(arrays.flow_max_pro[rec].min())
        lo, hi = 0, max_level
        best_counts: np.ndarray | None = None
        while lo < hi:
            mid = (lo + hi + 1) // 2
            # mid <= max_level <= every recoverable flow's max_pro, so
            # each row reaches mid and argmax finds a real column.
            counts = (cum >= mid).argmax(axis=1) + 1
            if int(counts.sum()) <= budget:
                lo = mid
                best_counts = counts
            else:
                hi = mid - 1
        if best_counts is not None:
            mask = np.arange(cum.shape[1])[None, :] < best_counts[:, None]
            chosen[arrays.flow_sorted[idx2d[mask]]] = True
    elif rec.size:
        # Budget below one unit per flow: recover the flows whose single
        # best pair buys the most, ties toward the lower flow id (rec is
        # in ascending flow-id order and the argsort is stable).
        first_pair = arrays.flow_sorted[arrays.flow_indptr[rec]]
        best_pbar = arrays.pair_pbar[first_pair]
        ranked = np.argsort(-best_pbar, kind="stable")[:budget]
        chosen[first_pair[ranked]] = True

    # Saturate leftover budget with the highest-p̄ remaining pairs.
    leftover = budget - int(chosen.sum())
    if leftover > 0 and n_pairs:
        desc = arrays.pbar_desc
        remaining = desc[~chosen[desc]]
        chosen[remaining[:leftover]] = True

    # Regret-ordered nearest-capacity assignment.
    pair_controller: dict[tuple[NodeId, FlowId], ControllerId] = {}
    picked = np.flatnonzero(chosen)
    if picked.size:
        spread = arrays.delay.max(axis=1) - arrays.delay.min(axis=1)
        # picked ascends in pair order; the stable sort keeps that order
        # among equal spreads — the (-regret, pair) tuple key.
        order = picked[np.argsort(-spread[arrays.pair_switch[picked]], kind="stable")]
        nearest = arrays.delay_order[:, 0]
        want = nearest[arrays.pair_switch[order]]
        load = np.bincount(want, minlength=len(arrays.controllers))
        pairs = instance.pairs
        controllers = arrays.controllers
        if bool(np.all(load <= arrays.spare)):
            # Every pair fits on its nearest controller, so the greedy
            # scan would assign exactly that — order-independently.
            pair_controller = {
                pairs[k]: controllers[c]
                for k, c in zip(order.tolist(), want.tolist())
            }
        else:
            available = arrays.spare.tolist()
            rows = arrays.delay_order.tolist()
            switch_of = arrays.pair_switch[order].tolist()
            for k, s in zip(order.tolist(), switch_of):
                for c in rows[s]:
                    if available[c] > 0:
                        available[c] -= 1
                        pair_controller[pairs[k]] = controllers[c]
                        break
                else:  # pragma: no cover - chosen is capped at the budget
                    raise AssertionError("PG budget accounting violated")

    return RecoverySolution(
        algorithm="pg",
        mapping={},
        sdn_pairs=set(pair_controller),
        pair_controller=pair_controller,
        extra_overhead_ms=FLOWVISOR_PROCESSING_MS,
        solve_time_s=time.perf_counter() - start,
        feasible=True,
        meta={"budget": budget, "middle_layer": "flowvisor", "kernel": "array"},
    )


# ----------------------------------------------------------------------
# RetroFlow / Nearest — switch-level greedies over arrays
# ----------------------------------------------------------------------
def solve_retroflow_array(instance: FMSSMInstance) -> RecoverySolution:
    """Array kernel for the greedy RetroFlow baseline.

    Switch values come from one weighted bincount, the processing order
    from one stable argsort, and the per-switch controller scan walks a
    precomputed ``delay_order`` row — O(N·M) Python steps total instead
    of N sorts over M controllers.
    """
    start = time.perf_counter()
    arrays = instance_arrays(instance)
    n = len(arrays.switches)
    _, _, _, indptr, _, rows, gamma, _, _ = _seq_prep(arrays)
    value = (
        np.bincount(arrays.pair_switch, weights=arrays.pair_pbar, minlength=n)
        .astype(np.int64)
        if arrays.n_pairs
        else np.zeros(n, dtype=np.int64)
    )
    order = np.argsort(-value, kind="stable")

    available = arrays.spare.tolist()
    load = [0] * len(arrays.controllers)
    mapped: list[tuple[int, int]] = []
    for s in order.tolist():
        g = gamma[s]
        for c in rows[s]:
            if available[c] >= g:
                available[c] -= g
                load[c] += g
                mapped.append((s, c))
                break

    switches = arrays.switches
    controllers = arrays.controllers
    mapping = {switches[s]: controllers[c] for s, c in sorted(mapped)}
    pairs = instance.pairs
    sdn_pairs = {
        pairs[k]
        for s, _ in mapped
        for k in range(indptr[s], indptr[s + 1])
    }
    return RecoverySolution(
        algorithm="retroflow",
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        load_override={controllers[c]: load[c] for c in range(len(controllers))},
        solve_time_s=time.perf_counter() - start,
        feasible=True,
        meta={"variant": "greedy", "kernel": "array"},
    )


def solve_nearest_array(instance: FMSSMInstance) -> RecoverySolution:
    """Array kernel for nearest-controller whole-switch remapping.

    The nearest controller is column 0 of ``delay_order`` — a pure
    argmin over the delay matrix with the same lower-id tie-break as
    :meth:`~repro.control.delay.DelayModel.nearest_controller`.
    """
    start = time.perf_counter()
    arrays = instance_arrays(instance)
    _, _, _, indptr, _, rows, gamma, _, _ = _seq_prep(arrays)
    nearest = arrays.cache.get("nearest_col")
    if nearest is None:
        nearest = arrays.delay_order[:, 0].tolist()
        arrays.cache["nearest_col"] = nearest
    available = arrays.spare.tolist()
    load = [0] * len(arrays.controllers)
    mapped: list[tuple[int, int]] = []
    for s, c in enumerate(nearest):
        g = gamma[s]
        if available[c] >= g:
            available[c] -= g
            load[c] += g
            mapped.append((s, c))

    switches = arrays.switches
    controllers = arrays.controllers
    pairs = instance.pairs
    return RecoverySolution(
        algorithm="nearest",
        mapping={switches[s]: controllers[c] for s, c in mapped},
        sdn_pairs={
            pairs[k]
            for s, _ in mapped
            for k in range(indptr[s], indptr[s + 1])
        },
        load_override={controllers[c]: load[c] for c in range(len(controllers))},
        solve_time_s=time.perf_counter() - start,
        feasible=True,
        meta={"kernel": "array"},
    )
