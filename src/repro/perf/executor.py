"""Persistent warm-worker sweep executor with cross-sweep artifact caching.

Every :func:`~repro.perf.sweep.parallel_sweep` call historically paid
the full fan-out bill — spawn a :class:`~concurrent.futures.
ProcessPoolExecutor`, ship the plan, have every worker decode it — even
though figure generation, successive-failure runs and the ablation
drivers issue many sweeps over the *same* topology back to back.  On
the bench that bill is ~1.6 s per sweep against a ~0.02 s pure-solve
floor.  This module amortizes it:

:class:`SweepExecutor`
    A context-manager that keeps one process pool alive across sweeps
    (health-checked, transparently respawned after a
    ``BrokenProcessPool``) and caches each context's encoded payload —
    including the :class:`~repro.perf.shm.SegmentLease` on its
    shared-memory segment — so later sweeps over the same context ship
    nothing but a small per-sweep header.

Worker-side caches
    Warm tasks carry a :class:`WarmHeader` naming the sweep's plan key
    (checkpoint fingerprint + executor generation).  A worker that has
    seen the key before skips decoding entirely; otherwise it rebuilds
    the plan from two LRU-cached layers — the heavy context (decoded
    once per *generation*, then shared by every sweep over that
    context, together with all the instances, ``InstanceArrays`` and
    hop-distance state the context caches) and the light per-sweep
    parameters.  Compiled ``(N, M, P)`` sparse templates ride the
    header once and land in the worker's process-wide
    :func:`~repro.perf.compile.default_compiler`, which persists across
    sweeps by construction.

Invalidation
    Generations are assigned per (executor, context object, coefficient
    table): passing a *new* context — or re-materializing a context's
    table — yields a fresh generation, so stale worker caches can never
    serve it.  In-place mutation of a context that leaves its ``_table``
    object untouched is not detected; build a new context (they are
    cheap) or a fresh executor for that.

Lifecycle
    :meth:`SweepExecutor.close` shuts the pool down **before** releasing
    the cached segment leases — a task still queued on a live worker
    must be able to attach to its segment, so unlinking strictly follows
    worker exit.  Workers that already attached keep their mappings
    regardless (POSIX unlink semantics).  A module-level default
    executor (:func:`get_default_executor`) is closed by ``atexit``.

:func:`run_campaign` runs many sweeps over one context on a warm
executor, greedily ordering them by failure-set similarity so
consecutive sweeps maximize incremental (:class:`~repro.fmssm.optimal.
WarmChain`) and cache reuse, and streams each sweep's results as it
completes.  ``checkpoint_dir=`` adds a crash-only write-ahead journal
(:class:`~repro.resilience.checkpoint.CampaignJournal`) for bit-exact
resume after a hard kill, and ``supervisor=`` threads a
:class:`~repro.resilience.supervisor.SweepSupervisor` (hung-task
preemption via :meth:`SweepExecutor.preempt`, poison-scenario
quarantine, circuit breakers) through every sweep.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import pickle
import threading
import time
from collections import OrderedDict
from collections.abc import Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.perf.shm import (
    SegmentLease,
    SharedPayload,
    dumps_shared,
    loads_shared,
    shm_available,
)
from repro.resilience import chaos

__all__ = [
    "SweepExecutor",
    "WarmHeader",
    "get_default_executor",
    "close_default_executor",
    "run_campaign",
    "campaign_summary",
]


# ----------------------------------------------------------------------
# Parent side: the executor and its context-payload cache
# ----------------------------------------------------------------------
@dataclass
class _ContextEntry:
    """One encoded context, cached for the executor's lifetime.

    Pins a strong reference to the context (so its ``id()`` can never be
    recycled while the entry lives) and to the coefficient table it was
    encoded from — the staleness guard.  Owns the shared-memory lease
    until the entry is evicted or the executor closes.
    """

    context: object
    table: object
    generation: int
    prefer_shm: bool
    payload: SharedPayload
    lease: SegmentLease | None
    encode_s: float

    def release(self) -> None:
        if self.lease is not None:
            self.lease.release()
            self.lease = None


@dataclass(frozen=True)
class WarmHeader:
    """The per-task prefix of a warm submission (small, picklable).

    ``plan_key`` identifies the fully built plan in the worker's cache;
    on a hit nothing below it is touched.  ``context_key`` identifies
    the heavy context layer (shared by every sweep of one generation),
    ``context_payload`` lets a cache-cold worker rebuild it, and
    ``sweep_blob`` pickles the light per-sweep parameters.
    """

    plan_key: str
    context_key: tuple[int, int]
    context_payload: SharedPayload
    sweep_blob: bytes


@dataclass(frozen=True)
class _SweepParams:
    """The per-sweep half of a warm plan (everything but the context)."""

    scenarios: tuple
    optimal_time_limit_s: float
    optimal_compile: str
    ladder: object
    validate: bool
    chaos_plan: object
    shapes: dict = field(default_factory=dict)
    lp_batch: "int | None" = None


class SweepExecutor:
    """A reusable process pool + payload cache for many sweeps.

    Use as a context manager (or call :meth:`close` explicitly)::

        with SweepExecutor(max_workers=8) as executor:
            first = parallel_sweep(context, scenarios, algos, executor=executor)
            again = parallel_sweep(context, scenarios, algos, executor=executor)

    The second sweep reuses the warm workers, the parent-side encoded
    context, and the workers' decoded plan — its cost approaches the
    pure solve time.  Results are bit-identical to fresh-pool and serial
    sweeps (the equivalence tests assert it).

    A sweep that breaks the pool mid-flight keeps its completed results
    and finishes serially, exactly like the fresh-pool route; the
    executor marks itself broken and the *next* sweep respawns the pool
    transparently.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        max_workers: int | None = None,
        max_cached_contexts: int = 4,
        store: "SolveStore | None" = None,  # noqa: F821
    ):
        self.max_workers = max_workers or os.cpu_count() or 1
        self.max_cached_contexts = max(1, max_cached_contexts)
        #: Optional cross-run :class:`~repro.perf.store.SolveStore`:
        #: every sweep submitted to this executor memoizes through it
        #: unless the sweep passes its own ``store=`` explicitly.
        self.store = store
        #: Distinguishes this executor's cache keys from any other's
        #: (worker processes can outlive an executor only within one
        #: parent, so a process-local counter suffices).
        self.id = next(SweepExecutor._ids)
        self._pool: ProcessPoolExecutor | None = None
        self._broken = False
        self._closed = False
        # Keyed by (context id, prefer_shm): one context may be cached
        # for both transports at once (half-open probe rounds).
        self._contexts: OrderedDict[tuple[int, bool], _ContextEntry] = OrderedDict()
        self._generations = itertools.count(1)
        self._chaos_nonces = itertools.count(1)
        #: Observability counters (sweeps, encode hits/misses, respawns,
        #: supervisor preemptions).
        self.stats: dict[str, int] = {
            "sweeps": 0,
            "encode_hits": 0,
            "encode_misses": 0,
            "respawns": 0,
            "preempts": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the pool down, then release every cached segment lease.

        The ordering is the contract: a queued warm task attaches to its
        context's segment lazily, so the segment name must stay linked
        until every worker has exited (``shutdown(wait=True)``).  Only
        then are the leases released.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        while self._contexts:
            _, entry = self._contexts.popitem()
            entry.release()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("SweepExecutor is closed")

    # -- pool health ---------------------------------------------------
    def pool(self) -> ProcessPoolExecutor:
        """The live pool, (re)spawned on first use or after a break."""
        self._require_open()
        if self._pool is not None and self._broken:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._pool is None:
            respawn = self._broken
            if respawn:
                # A host that cannot fork replacements is itself a fault
                # the supervisor must survive — injectable here.
                chaos.check("executor.respawn")
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._broken = False
            if respawn:
                self.stats["respawns"] += 1
        return self._pool

    def mark_broken(self) -> None:
        """Flag the pool for respawn on the next :meth:`pool` call."""
        self._broken = True

    def preempt(self) -> int:
        """Hard-kill the live pool (hung-worker preemption); returns the
        number of worker processes signalled.

        Unlike :meth:`mark_broken` — which lets in-flight work drain —
        this terminates the workers outright, so a task wedged inside a
        solver cannot stall the sweep past its deadline.  The pool is
        torn down and flagged broken; the next :meth:`pool` call
        respawns it.  Queued futures fail with ``BrokenProcessPool``;
        the supervised runner discards and requeues them.  Cached
        context payloads (and their segment leases) are untouched, so
        the respawned pool re-warms from the same artifacts.
        """
        self._require_open()
        if self._pool is None:
            return 0
        processes = list(getattr(self._pool, "_processes", {}).values())
        for process in processes:
            process.terminate()
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._pool = None
        self._broken = True
        self.stats["preempts"] += 1
        return len(processes)

    # -- context encoding ----------------------------------------------
    def encode_context(self, context: object, prefer_shm: bool = True) -> _ContextEntry:
        """The cached encoded payload of ``context`` (encode on miss).

        A hit requires the same context object with the same
        materialized table, encoded for the same transport preference;
        a changed table re-encodes under a fresh generation, releasing
        the stale entry's lease.  The two transport preferences cache
        *separately* — a supervisor probing the shm route holds shm and
        pickle headers for one context at once, so encoding the pickle
        fallback must not release the shm entry's segment out from
        under in-flight futures.  Raises whatever the encode raises
        (unpicklable contexts) — callers fall back to serial execution.
        """
        self._require_open()
        key = (id(context), bool(prefer_shm))
        table = getattr(context, "_table", None)
        entry = self._contexts.get(key)
        if (
            entry is not None
            and entry.context is context
            and entry.table is table
            and entry.prefer_shm == prefer_shm
        ):
            self._contexts.move_to_end(key)
            self.stats["encode_hits"] += 1
            return entry
        if entry is not None:
            self._contexts.pop(key).release()
        entry = self._encode(context, prefer_shm)
        self.stats["encode_misses"] += 1
        self._contexts[key] = entry
        while len(self._contexts) > self.max_cached_contexts:
            _, evicted = self._contexts.popitem(last=False)
            evicted.release()
        return entry

    def _encode(self, context: object, prefer_shm: bool) -> _ContextEntry:
        start = time.perf_counter()
        payload = lease = None
        if prefer_shm and shm_available():
            try:
                data = _slim_context(context)
            except Exception:
                # Duck-typed contexts without an array form take the
                # raw-pickle route below, like the cold pickle transport.
                data = None
            if data is not None:
                payload, lease = dumps_shared(data)
        if payload is None:
            payload = SharedPayload(
                inband=pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
            )
        return _ContextEntry(
            context=context,
            table=getattr(context, "_table", None),
            generation=next(self._generations),
            prefer_shm=prefer_shm,
            payload=payload,
            lease=lease,
            encode_s=time.perf_counter() - start,
        )

    def plan_key(self, entry: _ContextEntry, fingerprint: str, sweep_blob: bytes,
                 chaotic: bool = False) -> str:
        """The worker-cache key of one sweep's fully built plan.

        Combines the context generation, the checkpoint fingerprint and
        a digest of the serialized sweep parameters (which covers the
        ladder, validation flag and exact scenario contents beyond the
        names the fingerprint hashes).  Chaotic sweeps get a nonce: a
        fresh worker-side ``chaos.install`` per sweep keeps the fault
        counters starting from zero, matching a fresh pool.
        """
        digest = hashlib.sha256(sweep_blob).hexdigest()[:16]
        key = f"x{self.id}g{entry.generation}:{fingerprint}:{digest}"
        if chaotic:
            key += f":c{next(self._chaos_nonces)}"
        return key


def _slim_context(context: object):
    """``context`` stripped to its array form (no programmability model).

    Reuses :class:`~repro.perf.sweep.ShmPlanData` with an empty scenario
    list — its ``rebuild_context`` does exactly the reconstruction warm
    workers need, and its numpy buffers are what the shm segment parks.
    """
    from repro.perf.coefficients import CoefficientArrays
    from repro.perf.sweep import ShmPlanData

    table = context.materialize_table()
    return ShmPlanData(
        topology=context.topology,
        plane=context.plane,
        delay_model=context.delay_model,
        arrays=CoefficientArrays.from_table(table),
        scenarios=(),
    )


# ----------------------------------------------------------------------
# Worker side: layered LRU caches and the warm task bodies
# ----------------------------------------------------------------------
#: Decoded contexts by (executor id, generation) — the heavy layer.
#: A context entry accretes value as it is used: grounded instances,
#: their InstanceArrays and list views all cache inside it, so a second
#: sweep over the same generation skips instance preparation too.
_CONTEXTS: OrderedDict[tuple[int, int], object] = OrderedDict()
_MAX_CONTEXTS = 4

#: Fully built SweepPlans by plan key — the light layer.
_PLANS: OrderedDict[str, object] = OrderedDict()
_MAX_PLANS = 8

#: Plan key whose chaos plan is currently installed (or None).
_CHAOS_KEY: list[str | None] = [None]

#: Lifetime eviction counts of this worker's layered caches — the
#: telemetry that tells a campaign its working set outgrew the LRUs
#: (every eviction is a future re-decode).  Snapshotted onto each warm
#: task's result row; the parent folds per-layer maxima into
#: ``FanoutStats.evictions``.
_EVICTIONS: dict[str, int] = {"context": 0, "plan": 0, "chaos_nonce": 0}


def worker_cache_stats() -> dict[str, dict[str, int]]:
    """This worker's cache telemetry (rides each warm result row)."""
    return {"evictions": dict(_EVICTIONS)}


def _sync_chaos(plan_key: str, chaos_plan) -> None:
    """Track the *current* sweep's chaos plan: install it, or clear a
    previous sweep's faults so they cannot leak forward.

    Runs **before** the context/plan decode on cache-cold paths, so the
    ``executor.decode_context``/``executor.plan_build`` sites fire under
    the incoming sweep's plan.  The single-slot key is sticky across a
    failed decode: a requeued task under the same plan key keeps its
    counters, exactly like a retried call in one process should.
    """
    if _CHAOS_KEY[0] == plan_key:
        return
    if _CHAOS_KEY[0] is not None:
        _EVICTIONS["chaos_nonce"] += 1
    if chaos_plan is not None:
        chaos.install(chaos_plan)
    else:
        chaos.uninstall()
    _CHAOS_KEY[0] = plan_key


def _warm_plan(header: WarmHeader):
    """The worker's plan for ``header``, decoding as little as possible."""
    from repro.perf.sweep import SweepPlan

    plan = _PLANS.get(header.plan_key)
    if plan is None:
        # The light per-sweep blob decodes first so the sweep's chaos
        # plan is live before the heavy layers are touched — the decode
        # sites below must be injectable on a fresh worker.
        params: _SweepParams = pickle.loads(header.sweep_blob)
        _sync_chaos(header.plan_key, params.chaos_plan)
        context = _CONTEXTS.get(header.context_key)
        if context is None:
            chaos.check("executor.decode_context")
            decoded = loads_shared(header.context_payload)
            rebuild = getattr(decoded, "rebuild_context", None)
            context = rebuild() if rebuild is not None else decoded
            _CONTEXTS[header.context_key] = context
            while len(_CONTEXTS) > _MAX_CONTEXTS:
                _CONTEXTS.popitem(last=False)
                _EVICTIONS["context"] += 1
        else:
            _CONTEXTS.move_to_end(header.context_key)
        chaos.check("executor.plan_build")
        plan = SweepPlan(
            context,
            params.scenarios,
            params.optimal_time_limit_s,
            params.optimal_compile,
            params.ladder,
            params.validate,
            params.chaos_plan,
            lp_batch=params.lp_batch,
        )
        if params.shapes:
            from repro.perf.compile import default_compiler

            default_compiler().adopt_shapes(params.shapes)
        _PLANS[header.plan_key] = plan
        while len(_PLANS) > _MAX_PLANS:
            _PLANS.popitem(last=False)
            _EVICTIONS["plan"] += 1
    else:
        _PLANS.move_to_end(header.plan_key)
        _sync_chaos(header.plan_key, plan.chaos_plan)
    return plan


def _warm_run_task(header: WarmHeader, task: tuple[int, str]):
    """Warm-pool twin of :func:`repro.perf.sweep._run_task`."""
    from repro.perf.sweep import _task_rows

    return _task_rows(_warm_plan(header), task) + (worker_cache_stats(),)


def _warm_run_chunk(header: WarmHeader, tasks: Sequence[tuple[int, str]]):
    """Several tasks under one header decode (heuristic-only sweeps)."""
    from repro.perf.sweep import _task_rows

    plan = _warm_plan(header)
    rows = [_task_rows(plan, task) for task in tasks]
    stats = worker_cache_stats()
    return [row + (stats,) for row in rows]


def _warm_run_batch(header: WarmHeader, tasks: Sequence[tuple[int, str]]):
    """Warm-pool twin of :func:`repro.perf.sweep._run_batch_chunk`.

    The worker accumulates its chunk's compiled ``optimal`` forms into
    block-diagonal LP batches (flushing at the plan's ``lp_batch`` size
    and at the chunk boundary) before calling HiGHS.
    """
    from repro.perf.sweep import _batched_rows

    rows = _batched_rows(_warm_plan(header), tasks)
    stats = worker_cache_stats()
    return [row + (stats,) for row in rows]


def _warm_run_chain(header: WarmHeader, segment):
    """Warm-pool twin of :func:`repro.perf.sweep._run_chain_task`."""
    from repro.perf.sweep import _chain_rows

    rows = _chain_rows(_warm_plan(header), segment)
    stats = worker_cache_stats()
    return [row + (stats,) for row in rows]


# ----------------------------------------------------------------------
# Default executor singleton
# ----------------------------------------------------------------------
_DEFAULT: SweepExecutor | None = None
_DEFAULT_LOCK = threading.Lock()


def get_default_executor(max_workers: int | None = None) -> SweepExecutor:
    """The process-wide shared executor (created on first use).

    ``max_workers`` only applies when the call creates the executor; a
    live default keeps its original size.  Closed automatically at
    interpreter exit, or explicitly via :func:`close_default_executor`.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None or _DEFAULT.closed:
            _DEFAULT = SweepExecutor(max_workers=max_workers)
        return _DEFAULT


def close_default_executor() -> None:
    """Close and drop the default executor (idempotent)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.close()
            _DEFAULT = None


atexit.register(close_default_executor)


# ----------------------------------------------------------------------
# Campaigns: many sweeps over one warm executor
# ----------------------------------------------------------------------
def run_campaign(
    context: object,
    sweeps: Sequence[Sequence[object]],
    algorithms: Sequence[str],
    *,
    executor: SweepExecutor | None = None,
    incremental: bool = True,
    reorder: bool = True,
    checkpoint_dir: object = None,
    supervisor: object = None,
    **sweep_kwargs: object,
) -> Iterator[tuple[int, list]]:
    """Run several sweeps over one context, streaming results.

    Yields ``(sweep_index, results)`` pairs as each sweep completes,
    where ``sweep_index`` is the sweep's position in the caller's
    ``sweeps`` sequence.  Execution order is chosen greedily by
    failure-set similarity (minimum symmetric difference between
    consecutive sweeps' failed-controller unions) so the warm workers'
    caches, compiled shapes and per-segment ``WarmChain`` seeds carry
    maximal overlap from one sweep into the next; ``reorder=False``
    keeps caller order.  Each individual sweep's results are
    bit-identical to a standalone ``parallel_sweep`` over the same
    scenarios.

    ``checkpoint_dir`` makes the campaign crash-only restartable: a
    :class:`~repro.resilience.checkpoint.CampaignJournal` at
    ``<dir>/campaign.jsonl`` commits one fsynced line per completed
    sweep, and each in-flight sweep checkpoints to
    ``<dir>/sweep-<index>.json``.  Rerunning after a hard kill replays
    committed sweeps from the journal bit-identically (no re-solving;
    evaluations are recomputed deterministically), resumes the
    interrupted sweep from its own checkpoint, and compacts the journal
    when the campaign completes.

    ``supervisor`` threads a :class:`~repro.resilience.supervisor.
    SweepSupervisor` through every sweep — hung-task preemption,
    poison-scenario quarantine and circuit breakers all persist across
    the campaign's sweeps (see :mod:`repro.resilience.supervisor`).

    ``executor=None`` uses :func:`get_default_executor` (left open for
    later campaigns); additional keyword arguments — ``lp_batch=`` for
    block-diagonal LP batching included — pass through to
    :func:`~repro.perf.sweep.parallel_sweep`.  A cross-run
    :class:`~repro.perf.store.SolveStore` (``store=`` here or attached
    to the executor) memoizes every sweep of the campaign; the store's
    size-bounded GC runs once when the campaign completes.
    """
    from repro.perf.incremental import hamming_chain
    from repro.perf.sweep import parallel_sweep
    from repro.resilience.checkpoint import result_from_json, result_to_json

    sweeps = [tuple(s) for s in sweeps]
    if executor is None:
        executor = get_default_executor()

    journal = None
    restored: dict[int, dict] = {}
    fingerprints: list[str] = []
    if checkpoint_dir is not None:
        from pathlib import Path

        from repro.resilience.checkpoint import (
            CampaignJournal,
            campaign_fingerprint,
            sweep_fingerprint,
        )

        directory = Path(checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        time_limit = float(sweep_kwargs.get("optimal_time_limit_s", 300.0))
        compile_route = str(sweep_kwargs.get("optimal_compile", "sparse"))
        fingerprints = [
            sweep_fingerprint(
                [s.name for s in sweep], algorithms, time_limit, compile_route
            )
            for sweep in sweeps
        ]
        journal = CampaignJournal(
            directory / "campaign.jsonl", campaign_fingerprint(fingerprints)
        )
        restored = journal.load()

    if reorder:
        signatures = [
            frozenset().union(*(frozenset(s.failed) for s in sweep))
            if sweep
            else frozenset()
            for sweep in sweeps
        ]
        order = hamming_chain(signatures)
    else:
        order = list(range(len(sweeps)))
    for index in order:
        if journal is not None:
            entry = restored.get(index)
            if entry is not None and entry.get("fingerprint") == fingerprints[index]:
                results = [
                    result_from_json(context, scenario, payload)
                    for scenario, payload in zip(sweeps[index], entry["results"])
                ]
                for result in results:
                    if result.degradation is None:
                        from repro.resilience.degradation import DegradationReport

                        result.degradation = DegradationReport()
                    result.degradation.record(
                        "campaign", "restore", f"restored from {journal.path}"
                    )
                yield index, results
                continue
        kwargs = dict(sweep_kwargs)
        if journal is not None:
            kwargs.setdefault("checkpoint_path", directory / f"sweep-{index}.json")
        results = parallel_sweep(
            context,
            sweeps[index],
            algorithms,
            executor=executor,
            incremental=incremental,
            supervisor=supervisor,
            **kwargs,
        )
        if journal is not None:
            journal.append(
                index, fingerprints[index], [result_to_json(r) for r in results]
            )
        yield index, results
    if journal is not None:
        # Kept (compacted) rather than deleted: rerunning the finished
        # campaign replays every sweep from the journal for free.
        journal.compact()
    store = sweep_kwargs.get("store") or (
        executor.store if executor is not None else None
    )
    if store is not None:
        store.gc()


def campaign_summary(
    collected: "Sequence[tuple[int, Sequence[object]]] | dict[int, Sequence[object]]",
    supervisor: object = None,
) -> dict[str, object]:
    """Aggregate accounting of a campaign's collected results.

    ``collected`` is the ``(index, results)`` stream of
    :func:`run_campaign` (drained into a list or dict).  Folds together
    per-sweep degradation counts, the worst-worker cache-eviction
    telemetry (``FanoutStats.evictions``), and — when a ``supervisor``
    is passed — its full :meth:`~repro.resilience.supervisor.
    SweepSupervisor.summary`.
    """
    pairs = collected.items() if isinstance(collected, dict) else collected
    summary: dict[str, object] = {
        "sweeps": 0,
        "scenarios": 0,
        "degraded": 0,
        "preempted": 0,
        "quarantined": 0,
        "restored": 0,
        "store_hits": 0,
        "store_misses": 0,
        "store_dedup": 0,
        "evictions": {},
    }
    evictions: dict[str, int] = summary["evictions"]  # type: ignore[assignment]
    for _, results in pairs:
        summary["sweeps"] += 1
        for result in results:
            summary["scenarios"] += 1
            stamp = getattr(result, "meta", {}).get("store")
            if stamp is not None:
                summary["store_hits"] += len(stamp.get("hits", ()))
                summary["store_misses"] += len(stamp.get("misses", ()))
                if stamp.get("dedup_of"):
                    summary["store_dedup"] += 1
            degradation = getattr(result, "degradation", None)
            events = () if degradation is None else degradation.events
            if degradation is not None and degradation.degraded:
                summary["degraded"] += 1
            if any(e.action == "preempted" for e in events):
                summary["preempted"] += 1
            if any(e.action == "restore" for e in events):
                summary["restored"] += 1
            meta = getattr(result, "meta", {})
            if meta.get("supervisor", {}).get("quarantined"):
                summary["quarantined"] += 1
            for layer, count in (
                meta.get("fanout", {}).get("evictions", {}) or {}
            ).items():
                if count > evictions.get(layer, 0):
                    evictions[layer] = count
    if supervisor is not None:
        summary["supervisor"] = supervisor.summary()
    return summary
