"""Materialized programmability coefficients, shared across a sweep.

:class:`~repro.routing.programmability.ProgrammabilityModel` computes the
paper's ``p`` / ``beta`` / ``p̄`` on demand through the path counter, and
its aggregate queries (``flows_programmable_at``, ``max_programmability``)
scan the flow population.  That is the right shape for one-off queries,
but a failure sweep grounds C(M, k) instances over the *same* topology,
counter and flows — every scenario re-asks the same questions.

A :class:`CoefficientTable` materializes every coefficient exactly once:

* ``p`` for every (transit switch, flow) pair,
* ``p̄`` for every programmable pair (``p >= 2``),
* the inverted index ``switch → programmable flows`` (the paper's line-7
  set, O(1) per lookup instead of an O(|flows|) scan),
* per-flow ``max_programmability``.

The table is a plain-dict value object: picklable, so a parallel sweep
ships it to worker processes once, and immutable by convention — it never
touches the counter again after construction.  It is a drop-in source of
coefficients for :func:`repro.fmssm.build.build_instance`, which only
needs ``pbar(flow, switch)``.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.exceptions import FlowError
from repro.flows.flow import Flow
from repro.types import FlowId, NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.path_count import PathCounter
    from repro.routing.programmability import ProgrammabilityModel

__all__ = ["CoefficientTable"]


def _flow_id(flow: Flow | FlowId) -> FlowId:
    """Accept either a :class:`Flow` or its ``(src, dst)`` id."""
    return flow.flow_id if isinstance(flow, Flow) else flow


class CoefficientTable:
    """Fully materialized ``p`` / ``beta`` / ``p̄`` coefficients.

    Build via :meth:`from_counter` or :meth:`from_model`; the constructor
    takes the already-materialized dicts and is mostly an implementation
    detail.  All query methods accept a :class:`Flow` or a flow id.
    """

    def __init__(
        self,
        flows: dict[FlowId, Flow],
        p: dict[tuple[NodeId, FlowId], int],
        pbar: dict[tuple[NodeId, FlowId], int],
        programmable_at: dict[NodeId, tuple[FlowId, ...]],
        max_pro: dict[FlowId, int],
    ) -> None:
        self._flows = flows
        self._p = p
        self._pbar = pbar
        self._programmable_at = programmable_at
        self._max_pro = max_pro

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_counter(cls, counter: PathCounter, flows: Iterable[Flow]) -> CoefficientTable:
        """Materialize every coefficient for ``flows`` under ``counter``."""
        flow_map: dict[FlowId, Flow] = {}
        p: dict[tuple[NodeId, FlowId], int] = {}
        pbar: dict[tuple[NodeId, FlowId], int] = {}
        programmable_at: dict[NodeId, list[FlowId]] = {}
        max_pro: dict[FlowId, int] = {}
        for flow in flows:
            if flow.flow_id in flow_map:
                raise FlowError(f"duplicate flow id {flow.flow_id!r}")
            flow_map[flow.flow_id] = flow
            total = 0
            for switch in flow.transit_switches:
                value = counter.count(switch, flow.dst)
                if value <= 0:
                    continue
                p[(switch, flow.flow_id)] = value
                if value >= 2:
                    pbar[(switch, flow.flow_id)] = value
                    programmable_at.setdefault(switch, []).append(flow.flow_id)
                    total += value
            max_pro[flow.flow_id] = total
        return cls(
            flows=flow_map,
            p=p,
            pbar=pbar,
            programmable_at={s: tuple(v) for s, v in programmable_at.items()},
            max_pro=max_pro,
        )

    @classmethod
    def from_model(cls, model: ProgrammabilityModel) -> CoefficientTable:
        """Materialize a :class:`ProgrammabilityModel`'s coefficients."""
        return cls.from_counter(model.counter, model.flows)

    # ------------------------------------------------------------------
    # Flow access
    # ------------------------------------------------------------------
    @property
    def flows(self) -> tuple[Flow, ...]:
        """All flows, in insertion order."""
        return tuple(self._flows.values())

    def flow(self, flow_id: FlowId) -> Flow:
        """Look up a flow by its ``(src, dst)`` id."""
        try:
            return self._flows[flow_id]
        except KeyError:
            raise FlowError(f"unknown flow id {flow_id!r}") from None

    @property
    def n_pairs(self) -> int:
        """Number of programmable (switch, flow) pairs in the table."""
        return len(self._pbar)

    # ------------------------------------------------------------------
    # Paper coefficients (mirror ProgrammabilityModel exactly)
    # ------------------------------------------------------------------
    def p(self, flow: Flow | FlowId, switch: NodeId) -> int:
        """``p_i^l`` — forwarding choices at ``switch`` toward the dst."""
        return self._p.get((switch, _flow_id(flow)), 0)

    def beta(self, flow: Flow | FlowId, switch: NodeId) -> int:
        """``beta_i^l`` — 1 iff the flow transits ``switch`` with ≥ 2 paths."""
        return 1 if (switch, _flow_id(flow)) in self._pbar else 0

    def pbar(self, flow: Flow | FlowId, switch: NodeId) -> int:
        """``p̄_i^l = beta_i^l * p_i^l``."""
        return self._pbar.get((switch, _flow_id(flow)), 0)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def programmable_switches(self, flow: Flow | FlowId) -> tuple[NodeId, ...]:
        """Transit switches of ``flow`` where ``beta == 1``, in path order."""
        resolved = self._flows[_flow_id(flow)]
        return tuple(
            s for s in resolved.transit_switches if (s, resolved.flow_id) in self._pbar
        )

    def max_programmability(self, flow: Flow | FlowId) -> int:
        """Upper bound on ``pro^l``: every programmable switch in SDN mode."""
        return self._max_pro.get(_flow_id(flow), 0)

    def flows_programmable_at(self, switch: NodeId) -> tuple[Flow, ...]:
        """Flows with ``beta == 1`` at ``switch``, via the inverted index."""
        return tuple(self._flows[f] for f in self._programmable_at.get(switch, ()))
