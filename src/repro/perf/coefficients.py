"""Materialized programmability coefficients, shared across a sweep.

:class:`~repro.routing.programmability.ProgrammabilityModel` computes the
paper's ``p`` / ``beta`` / ``p̄`` on demand through the path counter, and
its aggregate queries (``flows_programmable_at``, ``max_programmability``)
scan the flow population.  That is the right shape for one-off queries,
but a failure sweep grounds C(M, k) instances over the *same* topology,
counter and flows — every scenario re-asks the same questions.

A :class:`CoefficientTable` materializes every coefficient exactly once:

* ``p`` for every (transit switch, flow) pair,
* ``p̄`` for every programmable pair (``p >= 2``),
* the inverted index ``switch → programmable flows`` (the paper's line-7
  set, O(1) per lookup instead of an O(|flows|) scan),
* per-flow ``max_programmability``.

The table is a plain-dict value object: picklable, so a parallel sweep
ships it to worker processes once, and immutable by convention — it never
touches the counter again after construction.  It is a drop-in source of
coefficients for :func:`repro.fmssm.build.build_instance`, which only
needs ``pbar(flow, switch)``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import FlowError
from repro.flows.flow import Flow
from repro.types import FlowId, NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.routing.path_count import PathCounter
    from repro.routing.programmability import ProgrammabilityModel

__all__ = ["CoefficientTable", "CoefficientArrays"]


def _flow_id(flow: Flow | FlowId) -> FlowId:
    """Accept either a :class:`Flow` or its ``(src, dst)`` id."""
    return flow.flow_id if isinstance(flow, Flow) else flow


class CoefficientTable:
    """Fully materialized ``p`` / ``beta`` / ``p̄`` coefficients.

    Build via :meth:`from_counter` or :meth:`from_model`; the constructor
    takes the already-materialized dicts and is mostly an implementation
    detail.  All query methods accept a :class:`Flow` or a flow id.
    """

    def __init__(
        self,
        flows: dict[FlowId, Flow],
        p: dict[tuple[NodeId, FlowId], int],
        pbar: dict[tuple[NodeId, FlowId], int],
        programmable_at: dict[NodeId, tuple[FlowId, ...]],
        max_pro: dict[FlowId, int],
    ) -> None:
        self._flows = flows
        self._p = p
        self._pbar = pbar
        self._programmable_at = programmable_at
        self._max_pro = max_pro
        #: Per-switch cache of the Flow tuples ``flows_programmable_at``
        #: hands out — PM-style loops ask for the same switch repeatedly.
        self._fpa_cache: dict[NodeId, tuple[Flow, ...]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_counter(cls, counter: PathCounter, flows: Iterable[Flow]) -> CoefficientTable:
        """Materialize every coefficient for ``flows`` under ``counter``."""
        flow_map: dict[FlowId, Flow] = {}
        p: dict[tuple[NodeId, FlowId], int] = {}
        pbar: dict[tuple[NodeId, FlowId], int] = {}
        programmable_at: dict[NodeId, list[FlowId]] = {}
        max_pro: dict[FlowId, int] = {}
        for flow in flows:
            if flow.flow_id in flow_map:
                raise FlowError(f"duplicate flow id {flow.flow_id!r}")
            flow_map[flow.flow_id] = flow
            total = 0
            for switch in flow.transit_switches:
                value = counter.count(switch, flow.dst)
                if value <= 0:
                    continue
                p[(switch, flow.flow_id)] = value
                if value >= 2:
                    pbar[(switch, flow.flow_id)] = value
                    programmable_at.setdefault(switch, []).append(flow.flow_id)
                    total += value
            max_pro[flow.flow_id] = total
        return cls(
            flows=flow_map,
            p=p,
            pbar=pbar,
            programmable_at={s: tuple(v) for s, v in programmable_at.items()},
            max_pro=max_pro,
        )

    @classmethod
    def from_model(cls, model: ProgrammabilityModel) -> CoefficientTable:
        """Materialize a :class:`ProgrammabilityModel`'s coefficients."""
        return cls.from_counter(model.counter, model.flows)

    # ------------------------------------------------------------------
    # Flow access
    # ------------------------------------------------------------------
    @property
    def flows(self) -> tuple[Flow, ...]:
        """All flows, in insertion order."""
        return tuple(self._flows.values())

    def flow(self, flow_id: FlowId) -> Flow:
        """Look up a flow by its ``(src, dst)`` id."""
        try:
            return self._flows[flow_id]
        except KeyError:
            raise FlowError(f"unknown flow id {flow_id!r}") from None

    @property
    def n_pairs(self) -> int:
        """Number of programmable (switch, flow) pairs in the table."""
        return len(self._pbar)

    # ------------------------------------------------------------------
    # Paper coefficients (mirror ProgrammabilityModel exactly)
    # ------------------------------------------------------------------
    def p(self, flow: Flow | FlowId, switch: NodeId) -> int:
        """``p_i^l`` — forwarding choices at ``switch`` toward the dst."""
        return self._p.get((switch, _flow_id(flow)), 0)

    def beta(self, flow: Flow | FlowId, switch: NodeId) -> int:
        """``beta_i^l`` — 1 iff the flow transits ``switch`` with ≥ 2 paths."""
        return 1 if (switch, _flow_id(flow)) in self._pbar else 0

    def pbar(self, flow: Flow | FlowId, switch: NodeId) -> int:
        """``p̄_i^l = beta_i^l * p_i^l``."""
        return self._pbar.get((switch, _flow_id(flow)), 0)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def programmable_switches(self, flow: Flow | FlowId) -> tuple[NodeId, ...]:
        """Transit switches of ``flow`` where ``beta == 1``, in path order."""
        resolved = self._flows[_flow_id(flow)]
        return tuple(
            s for s in resolved.transit_switches if (s, resolved.flow_id) in self._pbar
        )

    def max_programmability(self, flow: Flow | FlowId) -> int:
        """Upper bound on ``pro^l``: every programmable switch in SDN mode."""
        return self._max_pro.get(_flow_id(flow), 0)

    def flows_programmable_at(self, switch: NodeId) -> tuple[Flow, ...]:
        """Flows with ``beta == 1`` at ``switch``, via the inverted index.

        The tuple is built once per switch and cached — the table is
        immutable by convention, so repeated queries (PM's per-switch
        recovery loop, the sweep's shape precomputation) return the same
        object without re-walking the index.
        """
        cached = self._fpa_cache.get(switch)
        if cached is None:
            cached = tuple(
                self._flows[f] for f in self._programmable_at.get(switch, ())
            )
            self._fpa_cache[switch] = cached
        return cached


@dataclass(frozen=True)
class CoefficientArrays:
    """A :class:`CoefficientTable` flattened into dense numpy columns.

    The table's dicts pickle as hundreds of kilobytes of tuple keys; the
    same information fits in a handful of int64/float64 arrays, which
    pickle protocol 5 ships *out of band* — the shared-memory transport
    (:mod:`repro.perf.shm`) parks them in one segment every pool worker
    aliases zero-copy.  :meth:`to_table` rebuilds a table whose dicts
    compare equal to the original, entry for entry and in the original
    ``from_counter`` scan order (flow-major, path order), so grounding
    from a rebuilt table is bit-identical to grounding from the source.

    Only integer node ids are representable; :meth:`from_table` raises
    ``TypeError`` for anything else and the caller falls back to the
    pickle route.

    Layout: flows are indexed ``0..L-1`` in table order, with ``src`` /
    ``dst`` / ``demand`` per flow and paths concatenated in ``path_data``
    delimited by ``path_indptr``.  ``p`` entries (value > 0) are stored
    flow-major in ``p_switch`` / ``p_value`` delimited by ``p_indptr`` —
    the ``p̄`` subset, inverted index and per-flow maxima are all
    recomputed from them exactly as ``from_counter`` does.
    """

    src: "np.ndarray"
    dst: "np.ndarray"
    demand: "np.ndarray"
    path_data: "np.ndarray"
    path_indptr: "np.ndarray"
    p_switch: "np.ndarray"
    p_value: "np.ndarray"
    p_indptr: "np.ndarray"

    @classmethod
    def from_table(cls, table: CoefficientTable) -> CoefficientArrays:
        """Flatten ``table`` into columns (integer node ids only)."""
        import numpy as np

        flows = list(table._flows.values())
        src: list[int] = []
        dst: list[int] = []
        demand: list[float] = []
        path_data: list[int] = []
        path_indptr: list[int] = [0]
        p_switch: list[int] = []
        p_value: list[int] = []
        p_indptr: list[int] = [0]
        p = table._p
        for flow in flows:
            for node in flow.path:
                if not isinstance(node, int) or isinstance(node, bool):
                    raise TypeError(
                        f"CoefficientArrays requires integer node ids, got "
                        f"{node!r} in flow {flow.flow_id!r}"
                    )
            src.append(flow.src)
            dst.append(flow.dst)
            demand.append(float(flow.demand))
            path_data.extend(flow.path)
            path_indptr.append(len(path_data))
            fid = flow.flow_id
            for switch in flow.transit_switches:
                value = p.get((switch, fid))
                if value is None:
                    continue
                p_switch.append(switch)
                p_value.append(value)
            p_indptr.append(len(p_switch))
        return cls(
            src=np.asarray(src, dtype=np.int64),
            dst=np.asarray(dst, dtype=np.int64),
            demand=np.asarray(demand, dtype=np.float64),
            path_data=np.asarray(path_data, dtype=np.int64),
            path_indptr=np.asarray(path_indptr, dtype=np.int64),
            p_switch=np.asarray(p_switch, dtype=np.int64),
            p_value=np.asarray(p_value, dtype=np.int64),
            p_indptr=np.asarray(p_indptr, dtype=np.int64),
        )

    def to_table(self) -> CoefficientTable:
        """Rebuild the table, replaying ``from_counter``'s exact scan."""
        src = self.src.tolist()
        dst = self.dst.tolist()
        demand = self.demand.tolist()
        path_data = self.path_data.tolist()
        path_indptr = self.path_indptr.tolist()
        p_switch = self.p_switch.tolist()
        p_value = self.p_value.tolist()
        p_indptr = self.p_indptr.tolist()

        flow_map: dict[FlowId, Flow] = {}
        p: dict[tuple[NodeId, FlowId], int] = {}
        pbar: dict[tuple[NodeId, FlowId], int] = {}
        programmable_at: dict[NodeId, list[FlowId]] = {}
        max_pro: dict[FlowId, int] = {}
        for i in range(len(src)):
            path = tuple(path_data[path_indptr[i] : path_indptr[i + 1]])
            flow = Flow(src=src[i], dst=dst[i], path=path, demand=demand[i])
            fid = flow.flow_id
            flow_map[fid] = flow
            total = 0
            for j in range(p_indptr[i], p_indptr[i + 1]):
                switch, value = p_switch[j], p_value[j]
                p[(switch, fid)] = value
                if value >= 2:
                    pbar[(switch, fid)] = value
                    programmable_at.setdefault(switch, []).append(fid)
                    total += value
            max_pro[fid] = total
        return CoefficientTable(
            flows=flow_map,
            p=p,
            pbar=pbar,
            programmable_at={s: tuple(v) for s, v in programmable_at.items()},
            max_pro=max_pro,
        )
