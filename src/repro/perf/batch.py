"""Block-diagonal batched LP solving: one HiGHS call per scenario batch.

After PR 9 the dominant per-scenario cost of an exact sweep is no longer
pivoting but fixed ``linprog`` call overhead (~1.7 ms per invocation on
this machine, against ~0.3 ms of actual simplex work for a reduced
40-node block).  This module amortizes that overhead by stacking the LP
relaxations of K compiled scenarios into one sparse block-diagonal form
and solving them with a *single* :func:`~repro.lp.highs.solve_form_relaxation`
call.

The batched route must stay **bit-identical** to the scenario-at-a-time
route, so only the part of the pipeline that cannot change the answer is
batched: the PM-seeded LP-bound *certificate* (see
:func:`repro.fmssm.optimal._solve_optimal_sparse`).  Per member:

1. compile the scenario — dropping spare-zero controllers, whose
   ``x``/``w`` columns provably cannot change the LP optimum (DESIGN
   §14) — and embed the PM seed;
2. try the closed-form combinatorial pre-certificate (identical to the
   individual route, no LP needed);
3. otherwise stack the member's reduced block into the batch.

The stacked form is ``scipy.sparse.block_diag`` of the member CSR
blocks with concatenated bounds and a per-block *scaled* objective
(``c_k / max|c_k|``): scaling keeps the blocks on comparable magnitudes
for the simplex pricing, and because the objective is separable and the
constraints are block-diagonal, any optimal point of the stack restricts
to an optimal point of every block — scaling by a positive constant per
block cannot create cross-talk.  Each member's slice is then checked
with its **own unscaled** objective against the member's certificate
tolerance.

A member whose certificate fires returns the PM seed — the *same* point
the individual route returns, with the same ``meta`` — so accepted
members are bit-identical by construction.  Every other member (no PM
seed, no safe tolerance, slice fails the feasibility guard, certificate
miss, batch-level solver error or injected fault) **falls back to**
:func:`repro.fmssm.optimal.solve_optimal` individually, which *is* the
scenario-at-a-time route.  Batched results therefore cannot diverge
from unbatched ones; the only thing batching changes is how many
``linprog`` calls a sweep pays for.

Fault injection: the stacked solve is guarded by the ``batch.solve``
chaos site — a ``raise-*`` fault degrades **only the batch's member
scenarios** (each falls back individually, with the fault recorded in
``meta["batch"]``), and a ``corrupt-solution`` fault on the stacked
vector is caught per slice by the feasibility guard, again degrading
only the corrupted members.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.optimal import (
    WarmChain,
    _canonical_objective,
    _certificate_tolerance,
    _combinatorial_bound,
    _validated,
    solve_optimal,
)
from repro.fmssm.solution import RecoverySolution
from repro.lp.highs import solve_form_relaxation
from repro.lp.solution import SolveStatus
from repro.lp.standard_form import StandardForm
from repro.pm.algorithm import solve_pm
from repro.resilience import chaos

__all__ = ["solve_optimal_batch", "BATCH_LP_OPTIONS"]

#: ``linprog`` settings for the stacked solve.  Presolve off + dual
#: simplex with Dantzig pricing wins on the small spare-zero-reduced
#: blocks the batch route stacks (measured ~2.5x vs the default on a
#: 70-block batch); the default method stays in place for full-size
#: single-scenario relaxations, where presolve pays for itself.
BATCH_LP_OPTIONS = {
    "presolve": False,
    "simplex_dual_edge_weight_strategy": "dantzig",
}
_BATCH_LP_METHOD = "highs-ds"

#: Mean per-block nonzeros above which the tuned settings stop winning
#: (measured: ~2x faster below on spare-zero-reduced blocks, ~2x slower
#: on full 17k-nnz ATT blocks) and the stacked solve uses the default
#: ``linprog`` configuration instead.
_TUNED_BLOCK_NNZ = 1500


def _stack_lp_settings(form: StandardForm, blocks: int) -> tuple[str, dict | None]:
    """``(method, options)`` for the stacked solve, sized to the blocks."""
    if form.a_ub.nnz <= _TUNED_BLOCK_NNZ * blocks:
        return _BATCH_LP_METHOD, BATCH_LP_OPTIONS
    return "highs", None


@dataclass
class _Member:
    """Per-scenario state while a batch is in flight."""

    index: int
    instance: FMSSMInstance
    compiled: object = None
    seed_x: np.ndarray | None = None
    seed_obj: float = 0.0
    cert_tol: float | None = None
    reduced: bool = False
    prep_s: float = 0.0
    #: "precert" | "stack" | "fallback" once decided.
    route: str = ""
    fallback_reason: str | None = None
    scale: float = 1.0
    offset: int = 0
    solution: RecoverySolution | None = None
    batch_meta: dict = field(default_factory=dict)


def _spare_positive_subset(instance: FMSSMInstance):
    """Controllers worth keeping in the reduced block, or ``None``.

    Dropping spare-zero controllers preserves the LP optimum exactly
    (their capacity rows force the dropped ``w`` to zero and unmapping
    the dropped ``x`` only loosens Eq. 2 — DESIGN §14 gives both
    directions).  Returns ``None`` when the reduction is vacuous (no
    controller or every controller has spare), so the full form is
    compiled and the template cache is not fragmented for nothing.
    """
    kept = tuple(c for c in instance.controllers if instance.spare[c] > 0)
    if not kept or len(kept) == len(instance.controllers):
        return None
    return kept


def _stack_forms(members: Sequence[_Member]) -> StandardForm:
    """One block-diagonal form from the members' compiled blocks.

    The objective concatenates each block's ``c_k`` scaled by
    ``1 / max|c_k|`` (``c[r] = -1`` always, so the scale is well
    defined).  Blocks share no variables and no rows, so the stacked
    optimum restricts to a per-block optimum regardless of the positive
    scales — each member's slice is evaluated with its own unscaled
    objective afterwards.
    """
    c_parts, lb_parts, ub_parts, b_parts, blocks = [], [], [], [], []
    offset = 0
    for member in members:
        form = member.compiled.form
        member.offset = offset
        offset += form.n_vars
        member.scale = 1.0 / float(np.max(np.abs(form.c)))
        c_parts.append(form.c * member.scale)
        lb_parts.append(form.lb)
        ub_parts.append(form.ub)
        b_parts.append(form.b_ub)
        blocks.append(form.a_ub)
    n_vars = offset
    return StandardForm(
        c=np.concatenate(c_parts),
        a_ub=sparse.block_diag(blocks, format="csr"),
        b_ub=np.concatenate(b_parts),
        a_eq=sparse.csr_matrix((0, n_vars)),
        b_eq=np.zeros(0),
        lb=np.concatenate(lb_parts),
        ub=np.concatenate(ub_parts),
        integrality=np.ones(n_vars),
        maximize=True,
        objective_constant=-0.0,
        var_names=(),
    )


def _accept(
    member: _Member,
    solver: str,
    elapsed: float,
    warm_chain: WarmChain | None,
) -> RecoverySolution:
    """Finalize a certificate-accepted member with the PM seed.

    Mirrors the accept path of ``_solve_optimal_sparse`` field for
    field: same mapping/pairs (extracted from the seed), same ``meta``
    keys and values — plus the batch provenance under ``meta["batch"]``.
    """
    mapping, sdn_pairs = member.compiled.extract(member.seed_x)
    solution = RecoverySolution(
        algorithm="optimal",
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        solve_time_s=elapsed,
        feasible=True,
        meta={
            "status": "optimal",
            "solver": solver,
            "gap": 0.0,
            "compile": "sparse",
            "certificate": True,
            "solver_objective": member.seed_obj,
        },
    )
    solution.meta["objective"] = _canonical_objective(member.instance, solution)
    solution.meta["batch"] = dict(member.batch_meta)
    if warm_chain is not None and member.route == "precert":
        warm_chain.bump("precertificates")
    return solution


def solve_optimal_batch(
    instances: Sequence[FMSSMInstance],
    solver: str = "highs",
    time_limit_s: float | None = 600.0,
    require_full_recovery: bool = True,
    enforce_delay: bool = True,
    compiler: object = None,
    raise_on_timeout: bool = False,
    validate: bool = True,
    warm_chain: WarmChain | None = None,
) -> list[RecoverySolution]:
    """Solve the ``optimal`` route for every instance, batching the LPs.

    Returns one :class:`RecoverySolution` per instance, in order, each
    bit-identical to what :func:`repro.fmssm.optimal.solve_optimal`
    (sparse route, PM warm start) returns for that instance — see the
    module docstring for why the equivalence is by construction.  Every
    solution carries ``meta["batch"]`` provenance::

        {"size": <stacked members>, "index": <slice position>,
         "route": "stack" | "precert" | "fallback",
         "certificate": bool, ...}

    Parameters mirror :func:`solve_optimal`; ``warm_chain`` is advanced
    in member order (accepted members feed the chain exactly like the
    serial route, fallback members consume it for B&B incumbents).
    """
    members = [_Member(index=i, instance=inst) for i, inst in enumerate(instances)]
    stacked: list[_Member] = []

    for member in members:
        start = time.perf_counter()
        instance = member.instance
        subset = _spare_positive_subset(instance)
        member.reduced = subset is not None
        # Imported lazily to match optimal.py's cycle-avoidance pattern.
        from repro.perf.compile import compile_fmssm

        member.compiled = compile_fmssm(
            instance,
            require_full_recovery=require_full_recovery,
            enforce_delay=enforce_delay,
            compiler=compiler,
            controller_subset=subset,
        )
        pm = solve_pm(instance, enforce_delay=enforce_delay)
        member.seed_x = member.compiled.embed_solution(pm)
        member.cert_tol = _certificate_tolerance(instance)
        if member.seed_x is None:
            member.route = "fallback"
            member.fallback_reason = "no-seed"
        elif member.cert_tol is None:
            member.route = "fallback"
            member.fallback_reason = "no-certificate-tolerance"
        else:
            member.seed_obj = member.compiled.objective_value(member.seed_x)
            if member.seed_obj >= _combinatorial_bound(instance) - member.cert_tol:
                member.route = "precert"
            else:
                member.route = "stack"
                stacked.append(member)
        member.prep_s = time.perf_counter() - start

    # ------------------------------------------------------------------
    # One LP call for every stacked member.
    # ------------------------------------------------------------------
    solve_share = 0.0
    batch_solver = "highs-lp"
    if stacked:
        stack_start = time.perf_counter()
        fault: str | None = None
        x = None
        try:
            chaos.check("batch.solve")
            stacked_form = _stack_forms(stacked)
            method, options = _stack_lp_settings(stacked_form, len(stacked))
            relaxation = solve_form_relaxation(
                stacked_form,
                basis=None if warm_chain is None else warm_chain.basis,
                method=method,
                options=options,
            )
            if warm_chain is not None:
                warm_chain.basis = relaxation.basis
            batch_solver = relaxation.solver
            if relaxation.status is SolveStatus.OPTIMAL and relaxation.x is not None:
                x = chaos.transform("batch.solve", np.asarray(relaxation.x))
            else:
                fault = f"batch-status:{relaxation.status.value}"
        except Exception as exc:  # noqa: BLE001 — a batch failure must
            # degrade only its members, never the whole sweep.
            fault = f"batch-error:{type(exc).__name__}"
        solve_share = (time.perf_counter() - stack_start) / len(stacked)

        for position, member in enumerate(stacked):
            member.batch_meta = {
                "size": len(stacked),
                "index": position,
            }
            if member.reduced:
                member.batch_meta["reduced"] = [
                    int(member.compiled.form.a_ub.shape[0]),
                    int(member.compiled.form.n_vars),
                ]
            if fault is not None:
                member.route = "fallback"
                member.fallback_reason = fault
                continue
            sl = x[member.offset : member.offset + member.compiled.form.n_vars]
            if not member.compiled.is_feasible_point(sl):
                member.route = "fallback"
                member.fallback_reason = "slice-infeasible"
                continue
            # The member's own unscaled objective of its slice: with a
            # block-diagonal form and a separable objective, this *is*
            # the member's LP-relaxation bound (DESIGN §14).
            block_obj = member.compiled.form.objective_value(
                float(member.compiled.form.c @ sl)
            )
            member.batch_meta["block_objective"] = block_obj
            member.batch_meta["scale"] = member.scale
            if member.seed_obj >= block_obj - member.cert_tol:
                member.batch_meta["certificate"] = True
                member.batch_meta["route"] = "stack"
            else:
                member.route = "fallback"
                member.fallback_reason = "certificate-miss"

    # ------------------------------------------------------------------
    # Finalize in member order so the warm chain advances exactly like
    # the serial scenario-at-a-time route.
    # ------------------------------------------------------------------
    for member in members:
        if member.route == "precert":
            member.batch_meta = {
                "size": len(stacked),
                "route": "precert",
                "certificate": True,
            }
            solution = _accept(member, "precert", member.prep_s, warm_chain)
        elif member.route == "stack":
            solution = _accept(
                member, batch_solver, member.prep_s + solve_share, warm_chain
            )
        else:
            solution = solve_optimal(
                member.instance,
                solver=solver,
                time_limit_s=time_limit_s,
                require_full_recovery=require_full_recovery,
                enforce_delay=enforce_delay,
                compile="sparse",
                warm_start="pm",
                compiler=compiler,
                raise_on_timeout=raise_on_timeout,
                validate=validate,
                warm_chain=warm_chain,
            )
            solution.meta["batch"] = {
                **member.batch_meta,
                "route": "fallback",
                "certificate": bool(solution.meta.get("certificate")),
                "reason": member.fallback_reason,
            }
            member.solution = solution
            continue
        if validate:
            _validated(member.instance, solution, enforce_delay, require_full_recovery)
        if warm_chain is not None:
            warm_chain.advance(solution)
        member.solution = solution

    return [member.solution for member in members]
