"""Synthetic WAN topology generators.

The paper evaluates on the ATT backbone only, but a reusable library needs
topologies of varying size and density for scalability studies and
ablations.  Every generator here places nodes at synthetic geographic
coordinates inside a continental-US-like bounding box so the Haversine
delay machinery applies uniformly.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.exceptions import TopologyError
from repro.geo import GeoPoint, haversine_m
from repro.topology.graph import Topology

__all__ = [
    "US_BOUNDING_BOX",
    "random_us_points",
    "ring_topology",
    "grid_topology",
    "waxman_topology",
    "star_topology",
]

#: (min_lat, max_lat, min_lon, max_lon) roughly covering the contiguous US.
US_BOUNDING_BOX: tuple[float, float, float, float] = (25.0, 49.0, -124.0, -67.0)


def random_us_points(n: int, rng: random.Random) -> list[GeoPoint]:
    """Draw ``n`` uniform points inside :data:`US_BOUNDING_BOX`."""
    if n <= 0:
        raise ValueError(f"n must be positive: {n!r}")
    lat_lo, lat_hi, lon_lo, lon_hi = US_BOUNDING_BOX
    return [
        GeoPoint(rng.uniform(lat_lo, lat_hi), rng.uniform(lon_lo, lon_hi))
        for _ in range(n)
    ]


def _build(name: str, points: Sequence[GeoPoint], edges: set[tuple[int, int]]) -> Topology:
    nodes = {i: (f"{name}-{i}", p) for i, p in enumerate(points)}
    return Topology(name, nodes, sorted(edges))


def ring_topology(n: int, chords: int = 0, seed: int = 0) -> Topology:
    """A ring of ``n`` nodes with ``chords`` extra random chords.

    Rings are the minimal 2-connected WAN shape; chords raise path
    diversity (and hence programmability).
    """
    if n < 3:
        raise TopologyError(f"a ring needs at least 3 nodes, got {n}")
    rng = random.Random(seed)
    points = random_us_points(n, rng)
    edges = {(i, (i + 1) % n) for i in range(n)}
    edges = {(min(u, v), max(u, v)) for u, v in edges}
    attempts = 0
    max_chords = n * (n - 1) // 2 - n
    if chords > max_chords:
        raise TopologyError(f"cannot add {chords} chords to a {n}-ring (max {max_chords})")
    while len(edges) < n + chords:
        u, v = rng.sample(range(n), 2)
        edges.add((min(u, v), max(u, v)))
        attempts += 1
        if attempts > 100 * (n + chords):
            raise TopologyError("chord sampling did not converge")
    return _build(f"ring{n}", points, edges)


def grid_topology(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` grid laid out over the US bounding box."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"grid needs at least 2 nodes: {rows}x{cols}")
    lat_lo, lat_hi, lon_lo, lon_hi = US_BOUNDING_BOX
    points = []
    for r in range(rows):
        for c in range(cols):
            lat = lat_lo + (lat_hi - lat_lo) * (r / max(rows - 1, 1))
            lon = lon_lo + (lon_hi - lon_lo) * (c / max(cols - 1, 1))
            points.append(GeoPoint(lat, lon))
    edges: set[tuple[int, int]] = set()
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                edges.add((i, i + 1))
            if r + 1 < rows:
                edges.add((i, i + cols))
    return _build(f"grid{rows}x{cols}", points, edges)


def waxman_topology(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.25,
    seed: int = 0,
) -> Topology:
    """A Waxman random graph over a geographic spanning-tree backbone.

    Edge probability between nodes ``u, v`` is
    ``alpha * exp(-d(u, v) / (beta * L))`` where ``L`` is the largest
    pairwise distance — the classic WAN-like generator.  To guarantee
    connectivity (plain Waxman draws are frequently disconnected at WAN
    densities), a Euclidean minimum spanning tree over the sampled points
    is always included, mirroring how real backbones grow from a core.
    """
    if n < 2:
        raise TopologyError(f"waxman needs at least 2 nodes, got {n}")
    if not (0 < alpha <= 1) or beta <= 0:
        raise TopologyError(f"invalid waxman parameters alpha={alpha}, beta={beta}")
    rng = random.Random(seed)
    points = random_us_points(n, rng)
    dist = [[haversine_m(points[u], points[v]) for v in range(n)] for u in range(n)]
    scale = max(max(row) for row in dist)

    # Prim's MST over the complete distance graph: the connected backbone.
    edges: set[tuple[int, int]] = set()
    in_tree = {0}
    while len(in_tree) < n:
        best: tuple[float, int, int] | None = None
        for u in in_tree:
            for v in range(n):
                if v in in_tree:
                    continue
                candidate = (dist[u][v], u, v)
                if best is None or candidate < best:
                    best = candidate
        assert best is not None
        _, u, v = best
        edges.add((min(u, v), max(u, v)))
        in_tree.add(v)

    # Waxman extra edges on top of the backbone.
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) in edges:
                continue
            p = alpha * math.exp(-dist[u][v] / (beta * scale))
            if rng.random() < p:
                edges.add((u, v))
    return _build(f"waxman{n}", points, edges)


def star_topology(n_leaves: int, seed: int = 0) -> Topology:
    """A hub-and-spoke topology: node 0 is the hub.

    Degenerate (1-connected) — useful to exercise the ``programmability
    == 0`` edge cases, since leaf switches have a single path everywhere.
    """
    if n_leaves < 2:
        raise TopologyError(f"star needs at least 2 leaves, got {n_leaves}")
    rng = random.Random(seed)
    points = random_us_points(n_leaves + 1, rng)
    edges = {(0, i) for i in range(1, n_leaves + 1)}
    return _build(f"star{n_leaves}", points, edges)
