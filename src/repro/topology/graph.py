"""The :class:`Topology` model — a geographic WAN graph.

A topology is an undirected, connected graph whose nodes are SDN switches
placed at real geographic coordinates and whose edges are WAN links.  Edge
lengths are great-circle (Haversine) distances and edge delays follow from
the fibre propagation speed, exactly as in Section VI-A of the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.exceptions import TopologyError
from repro.geo import GeoPoint, haversine_m, pairwise_distance_matrix
from repro.types import MS_PER_S, PROPAGATION_SPEED_M_PER_S, Edge, NodeId

__all__ = ["NodeInfo", "Topology"]


@dataclass(frozen=True, slots=True)
class NodeInfo:
    """Static description of one topology node."""

    node: NodeId
    label: str
    geo: GeoPoint


class Topology:
    """An SD-WAN data-plane topology.

    Parameters
    ----------
    name:
        Human-readable topology name (e.g. ``"ATT"``).
    nodes:
        Mapping from node id to :class:`NodeInfo` (or ``(label, GeoPoint)``
        pairs, which are promoted).
    edges:
        Iterable of undirected node-id pairs.  Self-loops and duplicate
        edges are rejected.
    propagation_speed_m_per_s:
        Speed used to convert link distance to delay.

    The graph must be connected: the paper's recovery problem assumes every
    offline switch is reachable and every flow has a forwarding path.
    """

    def __init__(
        self,
        name: str,
        nodes: Mapping[NodeId, NodeInfo | tuple[str, GeoPoint]],
        edges: Iterable[Edge],
        propagation_speed_m_per_s: float = PROPAGATION_SPEED_M_PER_S,
    ) -> None:
        if propagation_speed_m_per_s <= 0:
            raise TopologyError(
                f"propagation speed must be positive: {propagation_speed_m_per_s!r}"
            )
        self._name = str(name)
        self._speed = float(propagation_speed_m_per_s)
        self._nodes: dict[NodeId, NodeInfo] = {}
        for node_id, info in nodes.items():
            if not isinstance(info, NodeInfo):
                label, geo = info
                info = NodeInfo(node=node_id, label=label, geo=geo)
            elif info.node != node_id:
                raise TopologyError(
                    f"NodeInfo id {info.node!r} disagrees with key {node_id!r}"
                )
            self._nodes[node_id] = info

        graph = nx.Graph()
        graph.add_nodes_from(self._nodes)
        for u, v in edges:
            if u == v:
                raise TopologyError(f"self-loop on node {u!r}")
            if u not in self._nodes or v not in self._nodes:
                raise TopologyError(f"edge ({u!r}, {v!r}) references unknown node")
            if graph.has_edge(u, v):
                raise TopologyError(f"duplicate edge ({u!r}, {v!r})")
            dist = haversine_m(self._nodes[u].geo, self._nodes[v].geo)
            delay = dist / self._speed * MS_PER_S
            graph.add_edge(u, v, distance_m=dist, delay_ms=delay)
        if graph.number_of_nodes() == 0:
            raise TopologyError("topology has no nodes")
        if not nx.is_connected(graph):
            parts = sorted(len(c) for c in nx.connected_components(graph))
            raise TopologyError(
                f"topology {self._name!r} is not connected "
                f"(component sizes: {parts})"
            )
        self._graph = graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Topology name."""
        return self._name

    @property
    def graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph` (treat as read-only)."""
        return self._graph

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """Node ids in sorted order."""
        return tuple(sorted(self._graph.nodes))

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._graph.number_of_nodes()

    @property
    def n_links(self) -> int:
        """Number of undirected links."""
        return self._graph.number_of_edges()

    @property
    def n_directed_links(self) -> int:
        """Number of directed links (twice the undirected count).

        Topology Zoo and the paper count links directionally; the ATT
        topology is described as "25 nodes and 112 links" = 56 undirected.
        """
        return 2 * self.n_links

    @property
    def propagation_speed_m_per_s(self) -> float:
        """Fibre propagation speed used for link delays."""
        return self._speed

    def edges(self) -> tuple[Edge, ...]:
        """All undirected edges as sorted ``(min, max)`` pairs."""
        return tuple(sorted((min(u, v), max(u, v)) for u, v in self._graph.edges))

    def info(self, node: NodeId) -> NodeInfo:
        """Return the :class:`NodeInfo` for ``node``."""
        try:
            return self._nodes[node]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def label(self, node: NodeId) -> str:
        """Human-readable label of ``node``."""
        return self.info(node).label

    def geo(self, node: NodeId) -> GeoPoint:
        """Geographic position of ``node``."""
        return self.info(node).geo

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the undirected link ``(u, v)`` exists."""
        return self._graph.has_edge(u, v)

    def neighbors(self, node: NodeId) -> tuple[NodeId, ...]:
        """Sorted neighbor ids of ``node``."""
        if node not in self._graph:
            raise TopologyError(f"unknown node {node!r}")
        return tuple(sorted(self._graph.neighbors(node)))

    def degree(self, node: NodeId) -> int:
        """Number of links incident to ``node``."""
        if node not in self._graph:
            raise TopologyError(f"unknown node {node!r}")
        return self._graph.degree[node]

    # ------------------------------------------------------------------
    # Distances and delays
    # ------------------------------------------------------------------
    def link_distance_m(self, u: NodeId, v: NodeId) -> float:
        """Great-circle length of link ``(u, v)`` in metres."""
        self._require_edge(u, v)
        return self._graph.edges[u, v]["distance_m"]

    def link_delay_ms(self, u: NodeId, v: NodeId) -> float:
        """One-way propagation delay of link ``(u, v)`` in milliseconds."""
        self._require_edge(u, v)
        return self._graph.edges[u, v]["delay_ms"]

    def geo_distance_m(self, u: NodeId, v: NodeId) -> float:
        """Direct great-circle distance between two nodes (not via links)."""
        return haversine_m(self.geo(u), self.geo(v))

    def geo_delay_ms(self, u: NodeId, v: NodeId) -> float:
        """Direct propagation delay between two nodes in milliseconds.

        This is the paper's ``D_ij``: "the distance divided by the
        propagation speed" (Section VI-A), i.e. straight-line, not routed.
        """
        return self.geo_distance_m(u, v) / self._speed * MS_PER_S

    def geo_distance_matrix(self) -> np.ndarray:
        """Direct distances (metres) between all node pairs, sorted order."""
        points = [self.geo(n) for n in self.nodes]
        return pairwise_distance_matrix(points)

    def geo_delay_matrix_ms(self) -> np.ndarray:
        """Direct propagation delays (ms) between all node pairs."""
        return self.geo_distance_matrix() / self._speed * MS_PER_S

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_edge(self, u: NodeId, v: NodeId) -> None:
        if not self._graph.has_edge(u, v):
            raise TopologyError(f"no link between {u!r} and {v!r}")

    def __contains__(self, node: object) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return self.n_nodes

    def __repr__(self) -> str:
        return (
            f"Topology(name={self._name!r}, nodes={self.n_nodes}, "
            f"links={self.n_links})"
        )
