"""Topology models, the embedded ATT backbone, parsers, and generators."""

from repro.topology.att import (
    ATT_CONTROLLER_SITES,
    ATT_DEFAULT_CAPACITY,
    ATT_DOMAINS,
    ATT_EDGES,
    ATT_NODES,
    att_topology,
)
from repro.topology.generators import (
    grid_topology,
    ring_topology,
    star_topology,
    waxman_topology,
)
from repro.topology.gml_writer import save_gml, to_gml
from repro.topology.graph import NodeInfo, Topology
from repro.topology.partition import (
    balanced_partition,
    nearest_site_partition,
    validate_partition,
)
from repro.topology.zoo import load_zoo_topology, loads_zoo_topology, parse_gml

__all__ = [
    "Topology",
    "NodeInfo",
    "att_topology",
    "ATT_NODES",
    "ATT_EDGES",
    "ATT_CONTROLLER_SITES",
    "ATT_DOMAINS",
    "ATT_DEFAULT_CAPACITY",
    "load_zoo_topology",
    "to_gml",
    "save_gml",
    "loads_zoo_topology",
    "parse_gml",
    "ring_topology",
    "grid_topology",
    "waxman_topology",
    "star_topology",
    "nearest_site_partition",
    "balanced_partition",
    "validate_partition",
]
