"""Embedded reconstruction of the Topology Zoo ATT backbone.

The paper evaluates on "a typical backbone topology ATT from Topology Zoo
... a national primary topology of US [that] consists of 25 nodes and 112
links" (Section VI-A).  Topology Zoo counts links directionally, so the
graph below has 25 nodes and 56 undirected links (112 directed).

We cannot fetch the original ``.gml`` file offline, so this module embeds a
reconstruction: 25 AT&T points of presence at real US city coordinates,
wired as a realistic continental backbone.  Node 13 (Dallas — AT&T's home
city) is the highest-degree hub, mirroring the paper's Table III where
switch 13 carries by far the most flows (213).  The controller placement
and the domain partition reproduce Table III exactly:

====== ==========================================
C_2    switches 2, 3, 9, 16         (Southwest)
C_5    switches 4, 5, 8, 14         (Mountain)
C_6    switches 0, 1, 6, 7          (West coast)
C_13   switches 10, 11, 12, 13      (Texas)
C_20   switches 15, 19, 20          (Midwest)
C_22   switches 17, 18, 21—24       (East)
====== ==========================================
"""

from __future__ import annotations

from repro.geo import GeoPoint
from repro.topology.graph import Topology
from repro.types import ControllerId, Edge, NodeId

__all__ = [
    "ATT_NODES",
    "ATT_EDGES",
    "ATT_CONTROLLER_SITES",
    "ATT_DOMAINS",
    "ATT_DEFAULT_CAPACITY",
    "att_topology",
]

#: Node id -> (city label, latitude, longitude).
ATT_NODES: dict[NodeId, tuple[str, float, float]] = {
    0: ("Seattle", 47.6062, -122.3321),
    1: ("Portland", 45.5152, -122.6784),
    2: ("Los Angeles", 34.0522, -118.2437),
    3: ("San Diego", 32.7157, -117.1611),
    4: ("Salt Lake City", 40.7608, -111.8910),
    5: ("Denver", 39.7392, -104.9903),
    6: ("San Francisco", 37.7749, -122.4194),
    7: ("San Jose", 37.3382, -121.8863),
    8: ("Albuquerque", 35.0844, -106.6504),
    9: ("Las Vegas", 36.1699, -115.1398),
    10: ("Houston", 29.7604, -95.3698),
    11: ("San Antonio", 29.4241, -98.4936),
    12: ("Austin", 30.2672, -97.7431),
    13: ("Dallas", 32.7767, -96.7970),
    14: ("El Paso", 31.7619, -106.4850),
    15: ("Kansas City", 39.0997, -94.5786),
    16: ("Phoenix", 33.4484, -112.0740),
    17: ("Atlanta", 33.7490, -84.3880),
    18: ("Orlando", 28.5383, -81.3792),
    19: ("St. Louis", 38.6270, -90.1994),
    20: ("Chicago", 41.8781, -87.6298),
    21: ("Washington DC", 38.9072, -77.0369),
    22: ("New York", 40.7128, -74.0060),
    23: ("Philadelphia", 39.9526, -75.1652),
    24: ("Boston", 42.3601, -71.0589),
}

#: 56 undirected links (112 directed, matching the paper's count).
ATT_EDGES: tuple[Edge, ...] = (
    # Pacific Northwest / West coast
    (0, 1),    # Seattle - Portland
    (0, 4),    # Seattle - Salt Lake City
    (0, 20),   # Seattle - Chicago (long haul)
    (0, 6),    # Seattle - San Francisco
    (1, 6),    # Portland - San Francisco
    (1, 4),    # Portland - Salt Lake City
    (6, 7),    # San Francisco - San Jose
    (6, 2),    # San Francisco - Los Angeles
    (6, 5),    # San Francisco - Denver (long haul)
    (6, 20),   # San Francisco - Chicago (long haul)
    (7, 2),    # San Jose - Los Angeles
    (7, 9),    # San Jose - Las Vegas
    # Southwest
    (2, 3),    # Los Angeles - San Diego
    (2, 9),    # Los Angeles - Las Vegas
    (2, 16),   # Los Angeles - Phoenix
    (2, 13),   # Los Angeles - Dallas (long haul)
    (3, 16),   # San Diego - Phoenix
    (9, 16),   # Las Vegas - Phoenix
    (9, 4),    # Las Vegas - Salt Lake City
    (16, 8),   # Phoenix - Albuquerque
    (16, 14),  # Phoenix - El Paso
    # Mountain
    (4, 5),    # Salt Lake City - Denver
    (5, 8),    # Denver - Albuquerque
    (5, 15),   # Denver - Kansas City
    (5, 13),   # Denver - Dallas
    (5, 20),   # Denver - Chicago
    (8, 14),   # Albuquerque - El Paso
    (8, 13),   # Albuquerque - Dallas
    # Texas
    (14, 11),  # El Paso - San Antonio
    (14, 13),  # El Paso - Dallas
    (11, 12),  # San Antonio - Austin
    (11, 10),  # San Antonio - Houston
    (12, 13),  # Austin - Dallas
    (12, 10),  # Austin - Houston
    (10, 13),  # Houston - Dallas
    (10, 17),  # Houston - Atlanta
    (10, 18),  # Houston - Orlando (gulf route)
    (13, 15),  # Dallas - Kansas City
    (13, 19),  # Dallas - St. Louis
    (13, 17),  # Dallas - Atlanta
    # Midwest
    (15, 19),  # Kansas City - St. Louis
    (15, 20),  # Kansas City - Chicago
    (19, 20),  # St. Louis - Chicago
    (19, 17),  # St. Louis - Atlanta
    (19, 21),  # St. Louis - Washington DC
    (20, 22),  # Chicago - New York
    (20, 24),  # Chicago - Boston
    (20, 21),  # Chicago - Washington DC
    # East / Southeast
    (17, 21),  # Atlanta - Washington DC
    (17, 18),  # Atlanta - Orlando
    (17, 22),  # Atlanta - New York
    (18, 21),  # Orlando - Washington DC
    (21, 23),  # Washington DC - Philadelphia
    (21, 22),  # Washington DC - New York
    (23, 22),  # Philadelphia - New York
    (22, 24),  # New York - Boston
)

#: Controller ids and co-located switch nodes (Table III header row).
ATT_CONTROLLER_SITES: tuple[ControllerId, ...] = (2, 5, 6, 13, 20, 22)

#: Controller id -> switches in its domain (Table III).
ATT_DOMAINS: dict[ControllerId, tuple[NodeId, ...]] = {
    2: (2, 3, 9, 16),
    5: (4, 5, 8, 14),
    6: (0, 1, 6, 7),
    13: (10, 11, 12, 13),
    20: (15, 19, 20),
    22: (17, 18, 21, 22, 23, 24),
}

#: "the processing ability of each controller is 500" (Section VI-A).
ATT_DEFAULT_CAPACITY: int = 500


def att_topology() -> Topology:
    """Build the embedded ATT backbone topology.

    >>> topo = att_topology()
    >>> topo.n_nodes, topo.n_directed_links
    (25, 112)
    """
    nodes = {
        node: (label, GeoPoint(lat, lon))
        for node, (label, lat, lon) in ATT_NODES.items()
    }
    return Topology("ATT", nodes, ATT_EDGES)
