"""Domain partitioning: assigning switches to controller sites.

The paper's ATT scenario fixes the partition (Table III).  For other
topologies, this module derives a partition from controller site choices:
every switch joins the domain of its geographically nearest controller
site, with an optional balancing pass that caps domain sizes.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.exceptions import TopologyError
from repro.topology.graph import Topology
from repro.types import ControllerId, NodeId

__all__ = ["nearest_site_partition", "balanced_partition", "validate_partition"]


def validate_partition(
    topology: Topology,
    domains: Mapping[ControllerId, Sequence[NodeId]],
) -> None:
    """Check that ``domains`` is a partition of the topology's nodes.

    Every node must appear in exactly one domain; every referenced node
    must exist.  Raises :class:`TopologyError` otherwise.
    """
    seen: dict[NodeId, ControllerId] = {}
    for controller, members in domains.items():
        if not members:
            raise TopologyError(f"controller {controller!r} has an empty domain")
        for node in members:
            if node not in topology:
                raise TopologyError(
                    f"domain of controller {controller!r} references unknown node {node!r}"
                )
            if node in seen:
                raise TopologyError(
                    f"node {node!r} appears in domains of controllers "
                    f"{seen[node]!r} and {controller!r}"
                )
            seen[node] = controller
    missing = set(topology.nodes) - set(seen)
    if missing:
        raise TopologyError(f"nodes not covered by any domain: {sorted(missing)}")


def nearest_site_partition(
    topology: Topology,
    sites: Sequence[NodeId],
) -> dict[ControllerId, tuple[NodeId, ...]]:
    """Assign each switch to the nearest controller site (geodesic).

    ``sites`` are node ids where controllers are co-located; the controller
    id equals its site node id, following the paper's convention.  Ties
    break toward the lower site id for determinism.
    """
    if not sites:
        raise TopologyError("at least one controller site is required")
    if len(set(sites)) != len(sites):
        raise TopologyError(f"duplicate controller sites: {list(sites)}")
    for site in sites:
        if site not in topology:
            raise TopologyError(f"controller site {site!r} is not a topology node")

    domains: dict[ControllerId, list[NodeId]] = {site: [] for site in sites}
    for node in topology.nodes:
        best = min(sites, key=lambda s: (topology.geo_delay_ms(node, s), s))
        domains[best].append(node)
    result = {c: tuple(sorted(members)) for c, members in domains.items()}
    for controller, members in result.items():
        if not members:
            raise TopologyError(
                f"controller site {controller!r} attracted no switches; "
                "choose better-spread sites"
            )
    validate_partition(topology, result)
    return result


def balanced_partition(
    topology: Topology,
    sites: Sequence[NodeId],
    max_domain_size: int | None = None,
) -> dict[ControllerId, tuple[NodeId, ...]]:
    """Nearest-site partition with a cap on domain size.

    Switches are processed in increasing order of distance to their best
    site; when a domain is full, the switch falls to its next-nearest site
    with room.  With ``max_domain_size=None`` the cap is
    ``ceil(n_nodes / n_sites) + 1``.
    """
    if not sites:
        raise TopologyError("at least one controller site is required")
    n_sites = len(set(sites))
    if n_sites != len(sites):
        raise TopologyError(f"duplicate controller sites: {list(sites)}")
    cap = max_domain_size
    if cap is None:
        cap = -(-topology.n_nodes // n_sites) + 1  # ceil + 1 slack
    if cap * n_sites < topology.n_nodes:
        raise TopologyError(
            f"max_domain_size={cap} cannot hold {topology.n_nodes} nodes "
            f"across {n_sites} sites"
        )

    # Order nodes by how strongly they prefer their best site, so tightly
    # bound switches claim their slots first.
    def preference(node: NodeId) -> float:
        return min(topology.geo_delay_ms(node, s) for s in sites)

    domains: dict[ControllerId, list[NodeId]] = {site: [] for site in sites}
    for node in sorted(topology.nodes, key=preference):
        ordered = sorted(sites, key=lambda s: (topology.geo_delay_ms(node, s), s))
        placed = False
        for site in ordered:
            if len(domains[site]) < cap:
                domains[site].append(node)
                placed = True
                break
        if not placed:  # pragma: no cover - guarded by the cap check above
            raise TopologyError(f"could not place node {node!r}")
    result = {c: tuple(sorted(members)) for c, members in domains.items()}
    for controller, members in result.items():
        if not members:
            raise TopologyError(
                f"controller site {controller!r} received no switches under "
                f"cap {cap}; loosen max_domain_size"
            )
    validate_partition(topology, result)
    return result
