"""Parser for Topology Zoo GML files.

The Internet Topology Zoo (Knight et al., reference [18] of the paper)
distributes topologies as GML files whose nodes carry ``Latitude`` /
``Longitude`` attributes.  This module implements a small, dependency-free
GML reader sufficient for those files and converts them into
:class:`~repro.topology.graph.Topology` objects.

Only the GML subset used by Topology Zoo is supported: nested ``key [
... ]`` records, quoted strings, integers and floats.  Nodes lacking
coordinates are either dropped (with their edges) or rejected, depending on
``on_missing_geo``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exceptions import ParseError
from repro.geo import GeoPoint
from repro.topology.graph import Topology

__all__ = ["GmlRecord", "parse_gml", "load_zoo_topology", "loads_zoo_topology"]

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<comment>\#[^\n]*)
      | (?P<open>\[)
      | (?P<close>\])
      | (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<number>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
      | (?P<key>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)


@dataclass
class GmlRecord:
    """A nested GML record: ordered multi-map from key to values."""

    items: list[tuple[str, Any]] = field(default_factory=list)

    def get(self, key: str, default: Any = None) -> Any:
        """First value stored under ``key``, or ``default``."""
        for k, v in self.items:
            if k == key:
                return v
        return default

    def get_all(self, key: str) -> list[Any]:
        """All values stored under ``key``, in order."""
        return [v for k, v in self.items if k == key]

    def __contains__(self, key: object) -> bool:
        return any(k == key for k, _ in self.items)


def _tokenize(text: str) -> list[tuple[str, Any]]:
    tokens: list[tuple[str, Any]] = []
    pos = 0
    while pos < len(text):
        if text[pos:].isspace():
            break
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos : pos + 30]
            raise ParseError(f"unexpected GML input at offset {pos}: {remainder!r}")
        pos = match.end()
        if match.lastgroup == "comment" or match.lastgroup is None:
            continue
        kind = match.lastgroup
        raw = match.group(kind)
        if kind == "string":
            value: Any = raw[1:-1].replace('\\"', '"').replace("\\\\", "\\")
            tokens.append(("value", value))
        elif kind == "number":
            value = float(raw) if any(c in raw for c in ".eE") else int(raw)
            tokens.append(("value", value))
        elif kind == "key":
            tokens.append(("key", raw))
        elif kind == "open":
            tokens.append(("open", "["))
        elif kind == "close":
            tokens.append(("close", "]"))
    return tokens


def _parse_record(tokens: list[tuple[str, Any]], pos: int) -> tuple[GmlRecord, int]:
    record = GmlRecord()
    while pos < len(tokens):
        kind, value = tokens[pos]
        if kind == "close":
            return record, pos + 1
        if kind != "key":
            raise ParseError(f"expected key at token {pos}, got {kind} {value!r}")
        key = value
        pos += 1
        if pos >= len(tokens):
            raise ParseError(f"dangling key {key!r} at end of input")
        kind, value = tokens[pos]
        if kind == "open":
            child, pos = _parse_record(tokens, pos + 1)
            record.items.append((key, child))
        elif kind == "value":
            record.items.append((key, value))
            pos += 1
        else:
            raise ParseError(f"expected value or '[' after key {key!r}")
    return record, pos


def parse_gml(text: str) -> GmlRecord:
    """Parse GML text into a nested :class:`GmlRecord`."""
    tokens = _tokenize(text)
    record, pos = _parse_record(tokens, 0)
    if pos != len(tokens):
        raise ParseError(f"trailing tokens after position {pos}")
    return record


def loads_zoo_topology(
    text: str,
    name: str | None = None,
    on_missing_geo: str = "drop",
) -> Topology:
    """Build a :class:`Topology` from Topology Zoo GML text.

    Parameters
    ----------
    text:
        GML file contents.
    name:
        Override the topology name (defaults to the GML ``label`` /
        ``Network`` attribute, or ``"zoo"``).
    on_missing_geo:
        ``"drop"`` removes nodes without coordinates together with their
        incident edges; ``"error"`` raises :class:`ParseError`.
    """
    if on_missing_geo not in ("drop", "error"):
        raise ValueError(f"on_missing_geo must be 'drop' or 'error': {on_missing_geo!r}")
    root = parse_gml(text)
    graph = root.get("graph")
    if not isinstance(graph, GmlRecord):
        raise ParseError("GML input has no 'graph [ ... ]' record")

    topo_name = name or graph.get("Network") or graph.get("label") or "zoo"

    nodes: dict[int, tuple[str, GeoPoint]] = {}
    dropped: set[int] = set()
    for node in graph.get_all("node"):
        if not isinstance(node, GmlRecord):
            raise ParseError("malformed 'node' record")
        node_id = node.get("id")
        if not isinstance(node_id, int):
            raise ParseError(f"node id must be an integer, got {node_id!r}")
        lat = node.get("Latitude")
        lon = node.get("Longitude")
        if lat is None or lon is None:
            if on_missing_geo == "error":
                raise ParseError(f"node {node_id} lacks Latitude/Longitude")
            dropped.add(node_id)
            continue
        label = str(node.get("label", f"n{node_id}"))
        nodes[node_id] = (label, GeoPoint(float(lat), float(lon)))

    edges: set[tuple[int, int]] = set()
    for edge in graph.get_all("edge"):
        if not isinstance(edge, GmlRecord):
            raise ParseError("malformed 'edge' record")
        source, target = edge.get("source"), edge.get("target")
        if not isinstance(source, int) or not isinstance(target, int):
            raise ParseError(f"edge endpoints must be integers: {source!r}, {target!r}")
        if source in dropped or target in dropped:
            continue
        if source == target:
            continue  # Topology Zoo files occasionally contain self-loops.
        if source not in nodes or target not in nodes:
            raise ParseError(f"edge ({source}, {target}) references unknown node")
        edges.add((min(source, target), max(source, target)))

    return Topology(str(topo_name), nodes, sorted(edges))


def load_zoo_topology(
    path: str | Path,
    name: str | None = None,
    on_missing_geo: str = "drop",
) -> Topology:
    """Load a Topology Zoo ``.gml`` file from disk."""
    text = Path(path).read_text(encoding="utf-8")
    return loads_zoo_topology(text, name=name, on_missing_geo=on_missing_geo)
