"""Write topologies back out as Topology Zoo-style GML.

Round-tripping through :mod:`repro.topology.zoo` lets users exchange
topologies (including the embedded ATT reconstruction) with any tool
that reads Topology Zoo files.
"""

from __future__ import annotations

from pathlib import Path

from repro.topology.graph import Topology

__all__ = ["to_gml", "save_gml"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_gml(topology: Topology) -> str:
    """Serialize a topology to GML text (Topology Zoo attribute names)."""
    lines = [
        "graph [",
        f'  Network "{_escape(topology.name)}"',
        "  directed 0",
    ]
    for node in topology.nodes:
        info = topology.info(node)
        lines.extend(
            [
                "  node [",
                f"    id {node}",
                f'    label "{_escape(info.label)}"',
                f"    Latitude {info.geo.latitude!r}",
                f"    Longitude {info.geo.longitude!r}",
                "  ]",
            ]
        )
    for u, v in topology.edges():
        lines.extend(
            [
                "  edge [",
                f"    source {u}",
                f"    target {v}",
                "  ]",
            ]
        )
    lines.append("]")
    return "\n".join(lines) + "\n"


def save_gml(topology: Topology, path: str | Path) -> None:
    """Write the topology to ``path`` as GML."""
    Path(path).write_text(to_gml(topology), encoding="utf-8")
