"""Shared type aliases and small value objects used across the package.

The SD-WAN model in the paper is indexed three ways:

* **switches** ``s_i`` — data-plane nodes; we identify them by an integer
  :data:`NodeId` (the Topology Zoo node id);
* **controllers** ``C_j`` — control-plane entities; we identify them by a
  :data:`ControllerId`, which by convention equals the :data:`NodeId` the
  controller is co-located with (the paper names controllers after nodes,
  e.g. controller 13 sits at switch 13);
* **flows** ``f^l`` — identified by a :data:`FlowId`, the ordered
  ``(src, dst)`` node pair, since the default workload has exactly one flow
  per ordered pair.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "NodeId",
    "ControllerId",
    "FlowId",
    "Edge",
    "Path",
    "Seconds",
    "Milliseconds",
    "MS_PER_S",
    "PROPAGATION_SPEED_M_PER_S",
    "FLOWVISOR_PROCESSING_MS",
]

NodeId = int
ControllerId = int
FlowId = Tuple[int, int]
Edge = Tuple[int, int]
Path = Tuple[int, ...]
Seconds = float
Milliseconds = float

MS_PER_S: float = 1000.0

#: Signal propagation speed in fibre used by the paper (Section VI-A),
#: two thirds of the speed of light.
PROPAGATION_SPEED_M_PER_S: float = 2.0e8

#: Average FlowVisor middle-layer processing time per request in
#: milliseconds (Sherwood et al., cited by the paper for the PG baseline).
FLOWVISOR_PROCESSING_MS: float = 0.48
