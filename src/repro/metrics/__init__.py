"""Metric helpers: distribution summaries and fairness indices."""

from repro.metrics.fairness import balance_report, jain_fairness_index
from repro.metrics.summary import FiveNumberSummary, summarize

__all__ = [
    "FiveNumberSummary",
    "summarize",
    "jain_fairness_index",
    "balance_report",
]
