"""Fairness metrics for programmability distributions.

The paper's second design consideration is *balanced* path
programmability: "we should treat each offline flow equally by
recovering each offline flow with the similar programmability".  Jain's
fairness index quantifies exactly that — 1.0 when every flow has the
same programmability, approaching ``1/n`` when one flow holds it all —
so recovery algorithms can be compared on balance, not just totals.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["jain_fairness_index", "balance_report"]


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Returns 1.0 for an empty or all-zero input (nothing to be unfair
    about).  Negative values are rejected.
    """
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError(f"fairness is defined for non-negative values: {values!r}")
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares == 0.0:
        return 1.0
    return total * total / (len(values) * squares)


def balance_report(values: Sequence[float]) -> dict[str, float]:
    """Fairness summary of a programmability distribution.

    Returns Jain's index plus the min/max ratio (0 when any flow is
    unrecovered — the imbalance RetroFlow exhibits).
    """
    fairness = jain_fairness_index(values)
    if not values or max(values) == 0:
        return {"jain": fairness, "min_max_ratio": 1.0 if not values else 0.0}
    return {
        "jain": fairness,
        "min_max_ratio": min(values) / max(values),
    }
