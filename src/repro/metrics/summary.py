"""Distribution summaries used to reproduce the paper's box plots.

Figures 4(a), 5(a) and 6(a) of the paper are box plots of per-flow path
programmability; we reproduce them numerically as five-number summaries
(min, Q1, median, Q3, max) plus mean.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["FiveNumberSummary", "summarize"]


@dataclass(frozen=True, slots=True)
class FiveNumberSummary:
    """Box-plot statistics of one distribution."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    def as_row(self) -> tuple[float, float, float, float, float]:
        """(min, Q1, median, Q3, max) for table rendering."""
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)

    def __str__(self) -> str:
        return (
            f"min={self.minimum:g} q1={self.q1:g} med={self.median:g} "
            f"q3={self.q3:g} max={self.maximum:g} mean={self.mean:.2f} "
            f"(n={self.count})"
        )


def summarize(values: Sequence[float]) -> FiveNumberSummary:
    """Five-number summary of ``values`` (empty input yields zeros)."""
    if not values:
        return FiveNumberSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(values, dtype=float)
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return FiveNumberSummary(
        count=len(arr),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
    )
