"""ProgrammabilityMedic (PM) — ICDCS 2021 reproduction.

Predictable path programmability recovery under multiple controller
failures in SD-WANs: the FMSSM problem, the PM heuristic (Algorithm 1),
the Optimal/RetroFlow/PG baselines, and the full simulation substrate
(geographic topologies, flows, hybrid SDN/legacy data plane, control
plane, MILP layer).

Quickstart
----------
>>> from repro import default_att_context, FailureScenario, solve_pm, evaluate_solution
>>> context = default_att_context()
>>> instance = context.instance(FailureScenario(frozenset({13, 20})))
>>> evaluation = evaluate_solution(instance, solve_pm(instance))
>>> evaluation.least_programmability >= 2
True
"""

from repro.baselines import (
    get_algorithm,
    list_algorithms,
    register_algorithm,
    solve_nearest,
    solve_pg,
    solve_retroflow,
    solve_retroflow_ip,
)
from repro.control import (
    ControlPlane,
    Controller,
    ControllerState,
    DelayModel,
    FailureScenario,
    enumerate_failure_scenarios,
    ideal_recovery_delay,
    successive_scenarios,
)
from repro.dataplane import NetworkDataPlane, Packet, SwitchMode
from repro.exceptions import ReproError
from repro.experiments import (
    ExperimentContext,
    custom_context,
    default_att_context,
    fig4_data,
    fig5_data,
    fig6_data,
    fig7_data,
    headline_ratios,
    run_failure_sweep,
    run_failure_sweep_parallel,
    run_scenario,
    table3_data,
)
from repro.perf import CoefficientTable
from repro.flows import Flow, all_pairs_flows, gravity_demands, switch_flow_counts
from repro.fmssm import (
    FMSSMInstance,
    RecoveryEvaluation,
    RecoverySolution,
    build_fmssm_model,
    build_instance,
    evaluate_batch,
    evaluate_solution,
    solve_optimal,
    solve_two_stage,
    verify_solution,
)
from repro.pm import ProgrammabilityMedic, solve_pm
from repro.simulation import (
    Simulator,
    TimelineParameters,
    TimelineReport,
    simulate_recovery_timeline,
)
from repro.te import (
    TrafficEngineer,
    betweenness_capacities,
    controllable_nodes,
    max_link_utilization,
    programmable_switches,
    uniform_capacities,
)
from repro.routing import (
    LoopFreeAlternateCounter,
    ProgrammabilityModel,
    k_shortest_paths,
    make_counter,
)
from repro.topology import (
    Topology,
    att_topology,
    grid_topology,
    load_zoo_topology,
    ring_topology,
    waxman_topology,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    # topology
    "Topology",
    "att_topology",
    "ring_topology",
    "grid_topology",
    "waxman_topology",
    "load_zoo_topology",
    # flows & routing
    "Flow",
    "all_pairs_flows",
    "gravity_demands",
    "switch_flow_counts",
    "k_shortest_paths",
    "make_counter",
    "LoopFreeAlternateCounter",
    "ProgrammabilityModel",
    # control plane
    "Controller",
    "ControllerState",
    "ControlPlane",
    "FailureScenario",
    "enumerate_failure_scenarios",
    "successive_scenarios",
    "DelayModel",
    "ideal_recovery_delay",
    # data plane
    "Packet",
    "SwitchMode",
    "NetworkDataPlane",
    # FMSSM & algorithms
    "FMSSMInstance",
    "build_instance",
    "build_fmssm_model",
    "RecoverySolution",
    "RecoveryEvaluation",
    "evaluate_solution",
    "evaluate_batch",
    "verify_solution",
    "solve_optimal",
    "solve_two_stage",
    "solve_pm",
    "ProgrammabilityMedic",
    "solve_retroflow",
    "solve_retroflow_ip",
    "solve_pg",
    "solve_nearest",
    "get_algorithm",
    "register_algorithm",
    "list_algorithms",
    # simulation
    "Simulator",
    "TimelineParameters",
    "TimelineReport",
    "simulate_recovery_timeline",
    # traffic engineering
    "TrafficEngineer",
    "uniform_capacities",
    "betweenness_capacities",
    "max_link_utilization",
    "programmable_switches",
    "controllable_nodes",
    # experiments
    "ExperimentContext",
    "default_att_context",
    "custom_context",
    "run_scenario",
    "run_failure_sweep",
    "run_failure_sweep_parallel",
    "CoefficientTable",
    "fig4_data",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "headline_ratios",
    "table3_data",
]
