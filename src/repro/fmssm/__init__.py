"""FMSSM problem: instance data, IP formulation, evaluation, Optimal solver."""

from repro.fmssm.build import build_instance, default_lambda
from repro.fmssm.evaluation import (
    RecoveryEvaluation,
    evaluate_batch,
    evaluate_solution,
    verify_solution,
)
from repro.fmssm.formulation import FMSSMVariables, build_fmssm_model
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.optimal import extract_solution, solve_optimal
from repro.fmssm.solution import RecoverySolution
from repro.fmssm.two_stage import solve_two_stage

__all__ = [
    "FMSSMInstance",
    "build_instance",
    "default_lambda",
    "build_fmssm_model",
    "FMSSMVariables",
    "RecoverySolution",
    "RecoveryEvaluation",
    "evaluate_solution",
    "evaluate_batch",
    "verify_solution",
    "solve_optimal",
    "solve_two_stage",
    "extract_solution",
]
