"""The Optimal baseline: solve problem P′ exactly.

The paper solves P′ with Gurobi; we use HiGHS through
:func:`scipy.optimize.milp` (or the library's own branch-and-bound for
small instances).  With ``require_full_recovery=True`` — our reading of
the paper's "constraint of not interrupting active controllers' normal
operations" under which "optimization solver may not always generate a
feasible solution" — tight three-failure instances become genuinely
infeasible and Optimal reports no result, matching Fig. 6.
"""

from __future__ import annotations

import time

from repro.exceptions import SolverError
from repro.fmssm.formulation import FMSSMVariables, build_fmssm_model
from repro.fmssm.instance import FMSSMInstance
from repro.fmssm.solution import RecoverySolution
from repro.lp import SolveResult, SolveStatus, solve

__all__ = ["solve_optimal", "extract_solution"]

_BINARY_THRESHOLD = 0.5


def extract_solution(
    instance: FMSSMInstance,
    handles: FMSSMVariables,
    result: SolveResult,
    algorithm: str = "optimal",
) -> RecoverySolution:
    """Convert a solver incumbent into a :class:`RecoverySolution`.

    Pairs are activated from the ``w`` variables so that capacity/delay
    accounting matches the solver's own; the switch mapping comes from
    ``x``.  A ``y = 1`` with no mapped controller stays inactive, exactly
    as in the formulation.
    """
    if not result.is_feasible:
        raise SolverError(f"cannot extract from status {result.status.value}")
    mapping = {
        switch: controller
        for (switch, controller), var in handles.x.items()
        if result.values.get(var.name, 0.0) > _BINARY_THRESHOLD
    }
    sdn_pairs = {
        (switch, flow_id)
        for (switch, controller, flow_id), var in handles.w.items()
        if result.values.get(var.name, 0.0) > _BINARY_THRESHOLD
    }
    return RecoverySolution(
        algorithm=algorithm,
        mapping=mapping,
        sdn_pairs=sdn_pairs,
        solve_time_s=result.wall_time_s,
        feasible=True,
        meta={
            "status": result.status.value,
            "objective": result.objective,
            "solver": result.solver,
            "gap": result.gap,
        },
    )


def solve_optimal(
    instance: FMSSMInstance,
    solver: str = "highs",
    time_limit_s: float | None = 600.0,
    require_full_recovery: bool = True,
    enforce_delay: bool = True,
) -> RecoverySolution:
    """Solve P′ to optimality and return the recovery solution.

    Returns an *infeasible* :class:`RecoverySolution` (empty, with
    ``feasible=False``) when the problem admits no solution under the
    full-recovery requirement or the solver times out without an
    incumbent — the cases the paper reports as "Optimal has no result".
    """
    start = time.perf_counter()
    model, handles = build_fmssm_model(
        instance,
        require_full_recovery=require_full_recovery,
        enforce_delay=enforce_delay,
    )
    result = solve(model, solver=solver, time_limit_s=time_limit_s)
    elapsed = time.perf_counter() - start

    if not result.is_feasible:
        return RecoverySolution(
            algorithm="optimal",
            feasible=False,
            solve_time_s=elapsed,
            meta={"status": result.status.value, "solver": result.solver},
        )
    solution = extract_solution(instance, handles, result)
    solution.solve_time_s = elapsed
    return solution
